//! End-to-end proof that the `ised` service path is the library path:
//! for registry workloads, the daemon's selection and Verilog must be
//! **byte-identical** to calling the drivers and the RTL emitter
//! in-process, with the repeated request served from the context cache.
//! Plus: the text-IR parser under fire — arbitrary mutations of valid
//! programs (and raw noise) must produce structured errors, never
//! panics.

use isegen::core::{Generator, IseConfig};
use isegen::ir::{text, LatencyModel};
use isegen::rtl::AfuLibrary;
use isegen::serve::json::{self, Json};
use isegen::serve::{Server, ServerConfig};
use isegen::workloads::workload_by_name;
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn quiet_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            verbose: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn raw(&mut self, line: &str) -> Json {
        writeln!(self.stream, "{line}").expect("send");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("receive");
        json::parse(response.trim()).expect("response is one JSON line")
    }

    fn request(&mut self, payload: Json) -> Json {
        let response = self.raw(&payload.to_string());
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "unexpected error response: {response}"
        );
        response
    }
}

/// Drives one workload through submit → select → select → rtl and
/// checks every byte against the in-process pipeline.
fn verify_workload(client: &mut Client, name: &str) {
    let spec = workload_by_name(name).expect("registry workload");
    let app = spec.application();
    let ir = text::write_application(&app);
    let model = LatencyModel::paper_default();
    let expected = Generator::new(IseConfig::paper_default()).run(&app, &model);
    let expected_afu = AfuLibrary::from_selection(&app, &model, &expected).expect("library AFU");

    let submit = client.request(Json::obj([
        ("op", "submit".into()),
        ("ir", ir.as_str().into()),
    ]));
    assert_eq!(submit.get("name").and_then(Json::as_str), Some(spec.name));
    let hash = submit
        .get("app")
        .and_then(Json::as_str)
        .expect("hash")
        .to_string();

    let select = client.request(Json::obj([
        ("op", "select".into()),
        ("app", hash.as_str().into()),
    ]));
    assert_eq!(
        select
            .get("speedup")
            .and_then(Json::as_f64)
            .map(f64::to_bits),
        Some(expected.speedup().to_bits()),
        "{name}: speedup must be bit-identical to the library path"
    );
    assert_eq!(
        select.get("ises").and_then(Json::as_array).map(<[_]>::len),
        Some(expected.ises.len()),
        "{name}: ISE count"
    );
    assert_eq!(
        select.get("saved_cycles").and_then(Json::as_u64),
        Some(expected.saved_cycles),
        "{name}: saved cycles"
    );
    assert_eq!(select.get("cache").and_then(Json::as_str), Some("miss"));

    // The identical request again: served from the selection memo, with
    // an identical payload.
    let again = client.request(Json::obj([
        ("op", "select".into()),
        ("app", hash.as_str().into()),
    ]));
    assert_eq!(
        again.get("cache").and_then(Json::as_str),
        Some("hit"),
        "{name}"
    );
    assert_eq!(
        again.get("ises"),
        select.get("ises"),
        "{name}: memo must not drift"
    );

    let rtl = client.request(Json::obj([
        ("op", "rtl".into()),
        ("app", hash.as_str().into()),
    ]));
    assert_eq!(
        rtl.get("verilog").and_then(Json::as_str),
        Some(expected_afu.emit_verilog().as_str()),
        "{name}: Verilog must be byte-identical to the library path"
    );
    assert_eq!(
        rtl.get("instructions")
            .and_then(Json::as_array)
            .map(<[_]>::len),
        Some(expected_afu.instructions().len())
    );

    // The verify op: three-way differential oracle over the daemon,
    // served from the selection memo (select/rtl above warmed it).
    let verify = client.request(Json::obj([
        ("op", "verify".into()),
        ("app", hash.as_str().into()),
        ("vectors", 16u64.into()),
        ("seed", 42u64.into()),
    ]));
    assert_eq!(
        verify.get("passed").and_then(Json::as_bool),
        Some(true),
        "{name}: emitted Verilog diverged: {verify}"
    );
    assert_eq!(verify.get("mismatches").and_then(Json::as_u64), Some(0));
    assert_eq!(
        verify.get("vectors_per_ise").and_then(Json::as_u64),
        Some(16)
    );
    assert_eq!(verify.get("cache").and_then(Json::as_str), Some("hit"));
    let reports = verify.get("ises").and_then(Json::as_array).expect("ises");
    assert_eq!(reports.len(), expected.ises.len(), "{name}");
    for r in reports {
        assert_eq!(r.get("mismatches").and_then(Json::as_u64), Some(0));
        assert_eq!(r.get("vectors").and_then(Json::as_u64), Some(16));
        let coverage = r
            .get("output_bits_covered")
            .and_then(Json::as_array)
            .expect("coverage array");
        assert!(!coverage.is_empty(), "{name}: an ISE with no outputs");
        for bits in coverage {
            let b = bits.as_u64().expect("coverage is numeric");
            assert!(b <= 32, "{name}: coverage over 32 bits");
        }
    }
}

#[test]
fn daemon_matches_library_path_and_serves_from_cache() {
    let server = quiet_server();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let mut client = Client::connect(&server);
        for name in ["fir00", "aes"] {
            verify_workload(&mut client, name);
        }

        // A second client submitting the same program hits the context
        // cache instead of rebuilding transitive closures.
        let mut other = Client::connect(&server);
        let aes_ir = text::write_application(&workload_by_name("aes").unwrap().application());
        let resubmit = other.request(Json::obj([
            ("op", "submit".into()),
            ("ir", aes_ir.as_str().into()),
        ]));
        assert_eq!(resubmit.get("cached").and_then(Json::as_bool), Some(true));

        let stats = client.request(Json::obj([("op", "stats".into())]));
        let hits = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
        assert!(
            hits("context_hits") > 0,
            "context cache was never hit: {stats}"
        );
        assert!(
            hits("selection_hits") > 0,
            "selection memo was never hit: {stats}"
        );
        assert_eq!(hits("entries"), 2, "fir00 + aes cached once each");
        assert_eq!(hits("errors"), 0, "no error responses in the happy path");
        assert_eq!(hits("verifications"), 2, "one verify per workload");
        assert!(
            hits("verified_vectors") >= 32,
            "16 vectors × ≥1 ISE × 2 workloads: {stats}"
        );
        // The computed selections must have reported their K-L search
        // counters: portfolio trajectories ran, arenas were pooled, and
        // the precision invalidation never flushed the gain cache.
        let search = stats.get("search").expect("search stats object");
        let skey = |k: &str| search.get(k).and_then(Json::as_u64).unwrap_or(0);
        assert!(skey("trajectories") > 0, "no trajectories counted: {stats}");
        assert!(skey("commits") > 0, "no commits counted: {stats}");
        assert!(
            skey("arena_reuses") > 0,
            "arena pool was never reused: {stats}"
        );
        assert_eq!(
            skey("full_invalidations"),
            0,
            "a commit flushed the gain cache: {stats}"
        );
        // Under the lazy-queue selector the cache's job is to make gain
        // evaluations *rare*, not to serve a giant stream of them: only
        // popped candidates and dirty re-keys ever probe. The scan-era
        // "mostly cached" ratio no longer applies, so assert the
        // stronger form — total probes per commit stays bounded (the
        // full scan did ~1000/commit on these workloads).
        let probes = skey("fresh_probes") + skey("cached_probes");
        assert!(
            probes < skey("commits").max(1) * 100,
            "the serve path must avoid per-commit probe storms: {stats}"
        );

        client.request(Json::obj([("op", "shutdown".into())]));
        handle
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    });
}

#[test]
fn portfolio_config_is_byte_identical_through_the_daemon() {
    // Two fresh daemons, same program: one selects with the default
    // sequential config, the other with a threaded driver + portfolio
    // floor. Identical selection bytes — the thread budget is a latency
    // knob, never a result knob (which is also why it is excluded from
    // the selection memo key).
    let ir = text::write_application(&workload_by_name("fir00").unwrap().application());
    let run = |config: Option<&str>| -> (Json, Json) {
        let server = quiet_server();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| server.run());
            let mut client = Client::connect(&server);
            let payload = match config {
                Some(cfg) => format!(
                    r#"{{"op":"select","ir":{},"config":{cfg}}}"#,
                    Json::from(ir.as_str())
                ),
                None => format!(r#"{{"op":"select","ir":{}}}"#, Json::from(ir.as_str())),
            };
            let response = client.raw(&payload);
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "select failed: {response}"
            );
            let out = (
                response.get("ises").cloned().expect("ises"),
                response.get("speedup").cloned().expect("speedup"),
            );
            client.request(Json::obj([("op", "shutdown".into())]));
            handle
                .join()
                .expect("server thread")
                .expect("clean shutdown");
            out
        })
    };
    let sequential = run(None);
    for cfg in [
        r#"{"threads":4}"#,
        r#"{"portfolio_threads":4}"#,
        r#"{"threads":2,"portfolio_threads":3}"#,
    ] {
        assert_eq!(
            run(Some(cfg)),
            sequential,
            "config {cfg} changed the selection"
        );
    }
}

#[test]
fn hostile_requests_get_structured_errors_not_dead_connections() {
    let server = quiet_server();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let mut client = Client::connect(&server);
        // Every abuse below must yield ok:false with a kind — on the
        // SAME connection, proving no worker thread died.
        let abuses = [
            ("not json at all", "parse"),
            (r#"{"no_op":1}"#, "protocol"),
            (r#"{"op":"warp"}"#, "protocol"),
            (r#"{"op":"select"}"#, "protocol"),
            (r#"{"op":"select","app":"zz"}"#, "protocol"),
            (r#"{"op":"select","app":"0123456789abcdef"}"#, "not_found"),
            (
                r#"{"op":"submit","ir":"app a\nblock b\n  x = frob\nend\n"}"#,
                "ir",
            ),
            (
                r#"{"op":"submit","ir":"app a\nblock b\n  x = in\n  y = add x\nend\n"}"#,
                "ir",
            ),
            (
                r#"{"op":"select","ir":"app a\nblock b\n  x = in\n  y = add x x\nend\n","config":{"io":[0,1]}}"#,
                "protocol",
            ),
            (r#"{"op":"rtl","ir":"truncated"#, "parse"),
            // verify-specific abuse: bad vector counts, bad seeds,
            // unknown apps — all structured errors.
            (r#"{"op":"verify"}"#, "protocol"),
            (r#"{"op":"verify","app":"0123456789abcdef"}"#, "not_found"),
            (
                r#"{"op":"verify","ir":"app a\nblock b\n  x = in\n  y = add x x\nend\n","vectors":0}"#,
                "protocol",
            ),
            (
                r#"{"op":"verify","ir":"app a\nblock b\n  x = in\n  y = add x x\nend\n","vectors":1000000000}"#,
                "protocol",
            ),
            (
                r#"{"op":"verify","ir":"app a\nblock b\n  x = in\n  y = add x x\nend\n","seed":"tuesday"}"#,
                "protocol",
            ),
        ];
        for (line, kind) in abuses {
            let response = client.raw(line);
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(false),
                "{line} must fail"
            );
            assert_eq!(
                response.get("kind").and_then(Json::as_str),
                Some(kind),
                "{line} → {response}"
            );
        }
        // NaN weights: the request must *succeed* — the library is
        // NaN-proof end to end (kl.rs sorts with total_cmp now).
        let nan = client.raw(
            r#"{"op":"select","ir":"app a\nblock b freq 5\n  x = in\n  y = in\n  m = mul x y\n  s = add m x\nend\n","config":{"weights":{"merit":1e400,"affinity":-1e400}}}"#,
        );
        assert_eq!(
            nan.get("ok").and_then(Json::as_bool),
            Some(true),
            "non-finite weights must not kill the request: {nan}"
        );
        // And the connection still works.
        let pong = client.raw(r#"{"op":"ping"}"#);
        assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));
        client.request(Json::obj([("op", "shutdown".into())]));
        handle
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    });
}

#[test]
fn length_prefixed_framing_round_trips_through_the_daemon() {
    use std::io::Read as _;

    let server = quiet_server();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.run());
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        fn prefixed(
            stream: &mut TcpStream,
            reader: &mut BufReader<TcpStream>,
            payload: &str,
        ) -> Json {
            let mut frame = format!("#{}\n", payload.len()).into_bytes();
            frame.extend_from_slice(payload.as_bytes());
            frame.push(b'\n');
            stream.write_all(&frame).expect("send prefixed frame");
            let mut header = String::new();
            reader.read_line(&mut header).expect("read header");
            let len: usize = header
                .trim()
                .strip_prefix('#')
                .expect("response uses the request's framing")
                .parse()
                .expect("decimal length");
            let mut body = vec![0u8; len + 1];
            reader.read_exact(&mut body).expect("read body");
            assert_eq!(body.pop(), Some(b'\n'));
            json::parse(&String::from_utf8_lossy(&body)).expect("payload is JSON")
        }

        // A multi-line payload the legacy line protocol cannot carry.
        let pong = prefixed(&mut stream, &mut reader, "{\n  \"op\": \"ping\"\n}");
        assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));

        let ir = text::write_application(&workload_by_name("fir00").unwrap().application());
        let select = prefixed(
            &mut stream,
            &mut reader,
            &Json::obj([("op", "select".into()), ("ir", ir.as_str().into())]).to_string(),
        );
        assert_eq!(select.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(select.get("cache").and_then(Json::as_str), Some("miss"));

        // Legacy framing interleaves on the same connection and sees the
        // same cache.
        writeln!(
            stream,
            "{}",
            Json::obj([("op", "select".into()), ("ir", ir.as_str().into())])
        )
        .expect("send line request");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read line response");
        let again = json::parse(line.trim()).expect("line response is JSON");
        assert_eq!(again.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(again.get("ises"), select.get("ises"));

        let bye = prefixed(&mut stream, &mut reader, r#"{"op":"shutdown"}"#);
        assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
        handle
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    });
}

// ---- text-IR fuzzing ----------------------------------------------------

/// Tiny deterministic generator for mutation fuzzing (no shrinking
/// needed: the property is "does not panic", and a failure seed
/// reproduces exactly).
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn mutate(text: &str, rng: &mut XorShift) -> String {
    let mut bytes = text.as_bytes().to_vec();
    for _ in 0..=rng.below(8) {
        if bytes.is_empty() {
            break;
        }
        match rng.below(5) {
            0 => {
                // truncate
                bytes.truncate(rng.below(bytes.len() + 1));
            }
            1 => {
                // delete a byte
                let i = rng.below(bytes.len());
                bytes.remove(i);
            }
            2 => {
                // overwrite with an interesting byte
                let i = rng.below(bytes.len());
                bytes[i] = *b"\"\\\n =#x0\xff".get(rng.below(9)).expect("in range");
            }
            3 => {
                // insert a random printable-ish byte
                let i = rng.below(bytes.len() + 1);
                bytes.insert(i, (rng.next() % 96 + 32) as u8);
            }
            _ => {
                // duplicate a slice (repeated lines, nested headers)
                let a = rng.below(bytes.len());
                let b = (a + rng.below(64)).min(bytes.len());
                let slice = bytes[a..b].to_vec();
                bytes.extend_from_slice(&slice);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    /// Mutated real programs: parse must return (never panic), and when
    /// it accepts the mutant, the canonical form must round-trip stably.
    #[test]
    fn ir_parser_survives_mutations(seed in any::<u64>()) {
        let base = text::write_application(&workload_by_name("fir00").unwrap().application());
        let mut rng = XorShift(seed);
        let mutant = mutate(&base, &mut rng);
        if let Ok(app) = text::parse_application(&mutant) {
            let canonical = text::write_application(&app);
            let reparsed = text::parse_application(&canonical)
                .expect("canonical text of an accepted program must parse");
            prop_assert_eq!(canonical, text::write_application(&reparsed));
        }
    }

    /// Raw noise: arbitrary short byte soup through the parser.
    #[test]
    fn ir_parser_survives_noise(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let noise = String::from_utf8_lossy(&bytes).into_owned();
        let _ = text::parse_application(&noise);
    }
}
