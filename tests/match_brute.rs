//! Cross-checks the VF2-style matcher against brute-force enumeration on
//! small graphs: every disjoint instance set it returns must be maximal
//! and correct, and single-instance existence must agree with an
//! exhaustive subset search.

use isegen::graph::{NodeId, NodeSet};
use isegen::ir::BasicBlock;
use isegen::matching::{find_disjoint_instances, Pattern};
use isegen::workloads::{random_application, RandomWorkloadConfig};
use proptest::prelude::*;

/// Exhaustively checks whether `candidate` (a node set of the right
/// size) is an induced, operand-position-preserving embedding of
/// `pattern`'s source `cut` — by trying every bijection implied by the
/// matcher's semantics. Small sizes only.
fn is_embedding_brute(block: &BasicBlock, cut: &[NodeId], candidate: &[NodeId]) -> bool {
    if cut.len() != candidate.len() {
        return false;
    }
    // try every permutation of candidate against cut order
    fn permutations(v: &[NodeId]) -> Vec<Vec<NodeId>> {
        if v.len() <= 1 {
            return vec![v.to_vec()];
        }
        let mut out = Vec::new();
        for i in 0..v.len() {
            let mut rest = v.to_vec();
            let x = rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }
    let dag = block.dag();
    let in_cut = |set: &[NodeId], x: NodeId| set.iter().position(|&v| v == x);
    'perm: for perm in permutations(candidate) {
        for (i, &cv) in cut.iter().enumerate() {
            let iv = perm[i];
            if block.opcode(cv) != block.opcode(iv) {
                continue 'perm;
            }
            let cp = dag.preds(cv);
            let ip = dag.preds(iv);
            if cp.len() != ip.len() {
                continue 'perm;
            }
            for (k, &p) in cp.iter().enumerate() {
                match in_cut(cut, p) {
                    Some(j) => {
                        // internal edge must map to the paired node
                        if ip[k] != perm[j] {
                            continue 'perm;
                        }
                    }
                    None => {
                        // external operand must stay external
                        if in_cut(&perm, ip[k]).is_some() {
                            continue 'perm;
                        }
                    }
                }
            }
        }
        return true;
    }
    false
}

/// Brute-force search: does ANY embedding of `cut` exist among nodes
/// disjoint from `excluded`? Enumerates all size-k subsets (k ≤ 3,
/// blocks ≤ 18 ops keep this tractable).
fn exists_embedding_brute(block: &BasicBlock, cut: &[NodeId], excluded: &NodeSet) -> bool {
    let nodes: Vec<NodeId> = block
        .dag()
        .node_ids()
        .filter(|&v| !excluded.contains(v))
        .collect();
    let k = cut.len();
    let mut idx = vec![0usize; k];
    fn rec(
        block: &BasicBlock,
        cut: &[NodeId],
        nodes: &[NodeId],
        chosen: &mut Vec<NodeId>,
        start: usize,
    ) -> bool {
        if chosen.len() == cut.len() {
            return is_embedding_brute(block, cut, chosen);
        }
        for i in start..nodes.len() {
            chosen.push(nodes[i]);
            if rec(block, cut, nodes, chosen, i + 1) {
                return true;
            }
            chosen.pop();
        }
        false
    }
    let _ = &mut idx;
    rec(block, cut, &nodes, &mut Vec::new(), 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// After the matcher's greedy disjoint pass, no further embedding
    /// may remain (maximality), and each returned instance must verify
    /// under brute force.
    #[test]
    fn matcher_is_correct_and_maximal(seed in any::<u64>(), ops in 8usize..18, k in 1usize..4) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            memory_fraction: 0.0,
            ..RandomWorkloadConfig::default()
        });
        let block = &app.blocks()[0];
        let n = block.dag().node_count();
        // take a connected-ish cut: an eligible node plus up to k-1
        // predecessors that are operations
        let elig: Vec<NodeId> = block.eligible_nodes().iter().collect();
        prop_assume!(!elig.is_empty());
        let anchor = elig[seed as usize % elig.len()];
        let mut cut_nodes = vec![anchor];
        for &p in block.dag().preds(anchor) {
            if cut_nodes.len() >= k { break; }
            if block.opcode(p).is_ise_eligible() && !cut_nodes.contains(&p) {
                cut_nodes.push(p);
            }
        }
        let cut = NodeSet::from_ids(n, cut_nodes.iter().copied());
        let pattern = Pattern::extract(block, &cut);
        let found = find_disjoint_instances(block, &pattern, None);

        // every found instance verifies under brute force
        let mut used = NodeSet::new(n);
        for inst in &found {
            let members: Vec<NodeId> = inst.iter().collect();
            prop_assert!(is_embedding_brute(block, &cut_nodes, &members),
                "matcher returned a non-embedding");
            prop_assert!(used.is_disjoint(inst), "instances overlap");
            used.union_with(inst);
        }
        // the original cut is always found (nothing excluded)
        prop_assert!(found.contains(&cut));
        // maximality: no embedding exists among the leftover nodes
        prop_assert!(!exists_embedding_brute(block, &cut_nodes, &used),
            "matcher missed an embedding");
    }
}
