//! Oracle agreement at small n: over the full enumeration of small DAGs
//! (`isegen_graph::gen::enumerate_dags`), the K-L heuristic must never
//! violate the Problem-1 constraints (I/O budget, convexity) and must
//! never report a merit above the provably optimal single cut of
//! `baselines::exact` — on *every* structure, not just sampled ones.
//!
//! Node counts 1..=5 are drained exhaustively (2 902 structures). At 6
//! and 7 nodes the enumeration grows to 56 700 / 1 587 600 structures, so
//! those sizes are covered by a deterministic coprime-stride walk of the
//! index space via `nth_dag` — evenly spread, reproducible, no RNG.

use isegen::baselines::{exact_single_cut, ExactConfig};
use isegen::graph::gen::{enumerate_dags, enumeration_count, nth_dag};
use isegen::graph::{Dag, NodeId};
use isegen::ir::{BasicBlock, BlockBuilder, Opcode};
use isegen::prelude::*;

/// Lifts an enumerated in-degree-≤2 DAG to a basic block: sources become
/// external inputs, unary nodes `Not`, binary nodes `Add`. Returns `None`
/// for the all-sources structure (a block must contain an operation).
fn block_from_dag(dag: &Dag<()>) -> Option<BasicBlock> {
    let mut b = BlockBuilder::new("enumerated").frequency(100);
    let mut ids: Vec<NodeId> = Vec::with_capacity(dag.node_count());
    let mut has_op = false;
    for v in dag.node_ids() {
        let preds = dag.preds(v);
        let id = match *preds {
            [] => b.input(format!("x{}", v.index())),
            [p] => {
                has_op = true;
                b.op(Opcode::Not, &[ids[p.index()]]).expect("arity 1")
            }
            [p, q] => {
                has_op = true;
                b.op(Opcode::Add, &[ids[p.index()], ids[q.index()]])
                    .expect("arity 2")
            }
            _ => unreachable!("enumeration emits in-degree <= 2"),
        };
        ids.push(id);
    }
    has_op.then(|| b.build().expect("has an operation"))
}

/// The oracle check for one structure under one port budget.
fn check_against_oracle(block: &BasicBlock, model: &LatencyModel, io: IoConstraints, tag: &str) {
    let ctx = BlockContext::new(block, model);
    let heuristic = Search::default().run(&ctx, io).cut;
    // Every enumerated block sits far below the coarsening threshold, so
    // an enabled multilevel pipeline must collapse to the single-level
    // search bit-for-bit — same cut, not just same merit.
    let multilevel = Search::new(
        SearchConfig::default().with_multilevel(isegen::core::MultilevelConfig::default()),
    )
    .run(&ctx, io)
    .cut;
    assert!(
        multilevel == heuristic,
        "{tag}: multilevel did not collapse to the single-level cut below the threshold"
    );
    if !heuristic.is_empty() {
        assert!(
            ctx.is_convex(heuristic.nodes()),
            "{tag}: heuristic cut is non-convex"
        );
        assert!(
            heuristic.satisfies_io(io),
            "{tag}: heuristic cut violates {io:?}"
        );
    }
    let optimal = exact_single_cut(&ctx, io, &ExactConfig::default(), None)
        .expect("tiny blocks are within the exact budget");
    if !optimal.is_empty() {
        assert!(
            ctx.is_convex(optimal.nodes()),
            "{tag}: exact cut is non-convex"
        );
        assert!(optimal.satisfies_io(io), "{tag}: exact cut violates {io:?}");
    }
    assert!(
        heuristic.merit() <= optimal.merit() + 1e-9,
        "{tag}: heuristic merit {} beats the exact optimum {}",
        heuristic.merit(),
        optimal.merit()
    );
}

fn budgets() -> [IoConstraints; 2] {
    [IoConstraints::new(2, 1), IoConstraints::new(4, 2)]
}

#[test]
fn all_dags_up_to_five_nodes_agree_with_the_oracle() {
    let model = LatencyModel::paper_default();
    let mut checked = 0u64;
    for n in 1..=5 {
        for (index, dag) in enumerate_dags(n).enumerate() {
            let Some(block) = block_from_dag(&dag) else {
                continue;
            };
            for io in budgets() {
                check_against_oracle(&block, &model, io, &format!("n={n} index={index}"));
            }
            checked += 1;
        }
    }
    // Every structure with at least one operation: total minus the
    // single all-sources structure per n.
    let expected: u64 = (1..=5).map(|n| enumeration_count(n) - 1).sum();
    assert_eq!(checked, expected, "enumeration skipped structures");
}

#[test]
fn strided_dags_at_six_and_seven_nodes_agree_with_the_oracle() {
    // 1_000_003 is prime and divides neither 56 700 nor 1 587 600, so the
    // walk visits `SAMPLES` distinct indices spread across the space.
    const STRIDE: u64 = 1_000_003;
    const SAMPLES: u64 = 1_500;
    let model = LatencyModel::paper_default();
    for n in 6..=7 {
        let total = enumeration_count(n);
        assert!(!total.is_multiple_of(STRIDE), "stride must stay coprime");
        for s in 0..SAMPLES {
            let index = (s * STRIDE) % total;
            let Some(block) = block_from_dag(&nth_dag(n, index)) else {
                continue;
            };
            for io in budgets() {
                check_against_oracle(&block, &model, io, &format!("n={n} index={index}"));
            }
        }
    }
}
