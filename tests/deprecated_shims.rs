//! Compatibility pins for the deprecated free-function API. Each shim
//! must keep delegating to the same engine as its builder replacement —
//! identical cuts, stats and selections — until the shims are removed.
//! This file is the **only** caller of the deprecated names in the
//! workspace; everything else builds under `-D deprecated`.

#![allow(deprecated)]

use isegen::core::{
    bipartition, bipartition_portfolio, bipartition_profiled, bipartition_with_stats, generate,
    generate_batched, generate_batched_in_contexts, generate_batched_with, generate_in_contexts,
    generate_with, BlockContext, Generator, IoConstraints, IseConfig, IsegenFinder, Search,
    SearchConfig,
};
use isegen::ir::LatencyModel;
use isegen::workloads::{autcor00, random_application, RandomWorkloadConfig};

#[test]
fn bipartition_shims_match_search_builder() {
    let app = autcor00();
    let block = app.critical_block().expect("has blocks");
    let model = LatencyModel::paper_default();
    let ctx = BlockContext::new(block, &model);
    let io = IoConstraints::new(4, 2);
    let config = SearchConfig::default();

    let outcome = Search::new(config.clone()).run(&ctx, io);

    assert_eq!(bipartition(&ctx, io, &config, None), outcome.cut);

    let (cut, stats) = bipartition_with_stats(&ctx, io, &config, None);
    assert_eq!(cut, outcome.cut);
    assert_eq!(stats.commits, outcome.stats.commits);
    assert_eq!(stats.trajectories, outcome.stats.trajectories);

    for threads in [1usize, 4] {
        assert_eq!(
            bipartition_portfolio(&ctx, io, &config, None, threads),
            outcome.cut,
            "portfolio shim diverged at {threads} threads"
        );
    }

    let mut pool = Vec::new();
    let (cut, stats, reports) = bipartition_profiled(&ctx, io, &config, None, 2, &mut pool);
    assert_eq!(cut, outcome.cut);
    assert_eq!(reports.len() as u64, stats.trajectories);
}

#[test]
fn driver_shims_match_generator_builder() {
    let model = LatencyModel::paper_default();
    let app = random_application(&RandomWorkloadConfig {
        seed: 9,
        blocks: 4,
        ops_per_block: 40,
        ..RandomWorkloadConfig::default()
    });
    let config = IseConfig::paper_default();
    let search = SearchConfig::default();

    let expected = Generator::new(config)
        .search(search.clone())
        .run(&app, &model);

    assert_eq!(generate(&app, &model, &config, &search), expected);
    assert_eq!(
        generate_batched(&app, &model, &config, &search, 4),
        expected
    );

    let mut finder = IsegenFinder::new(search.clone());
    assert_eq!(generate_with(&mut finder, &app, &model, &config), expected);
    assert_eq!(
        generate_batched_with(&IsegenFinder::new(search.clone()), &app, &model, &config, 4),
        expected
    );

    let contexts: Vec<BlockContext<'_>> = app
        .blocks()
        .iter()
        .map(|b| BlockContext::new(b, &model))
        .collect();
    let mut finder = IsegenFinder::new(search.clone());
    assert_eq!(
        generate_in_contexts(&mut finder, &contexts, &config),
        expected
    );
    assert_eq!(
        generate_batched_in_contexts(&IsegenFinder::new(search), &contexts, &config, 4),
        expected
    );
}
