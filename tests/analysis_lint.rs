//! The lint framework under fire: every diagnostic code must *fire* on
//! a seeded-bad block and stay *silent* on the registry corpus (modulo
//! an explicit waiver list), and [`analyze`]/[`analyze_view`] must
//! never panic — not on mutated text-IR programs, not on hand-built
//! hostile views full of cycles, forward references and out-of-range
//! operands.

use isegen::analysis::{
    analyze, analyze_view, registry, BlockView, Diagnostic, LintOptions, Severity,
};
use isegen::core::IoConstraints;
use isegen::ir::text::MAX_FREQUENCY;
use isegen::ir::{text, Application, BlockBuilder, LatencyModel, Opcode};
use isegen::workloads::{all_workloads, workload_by_name};
use proptest::prelude::*;

/// Corpus findings that are understood and tolerated: the workload
/// generators really do emit redundant xors (A003), spare inputs
/// (A002) and foldable subexpressions (A004). Everything else —
/// including every error-severity code — must be absent.
const CORPUS_WAIVERS: &[&str] = &["A002", "A003", "A004"];

fn lint(view: &BlockView) -> Vec<Diagnostic> {
    analyze_view(view, &LintOptions::default())
}

fn has(diags: &[Diagnostic], code: &str) -> bool {
    diags.iter().any(|d| d.code == code)
}

// ---- registry shape -----------------------------------------------------

#[test]
fn registry_codes_are_stable_and_ordered() {
    let passes = registry();
    let expected: Vec<String> = (1..=passes.len()).map(|i| format!("A{i:03}")).collect();
    let actual: Vec<&str> = passes.iter().map(|p| p.code()).collect();
    assert_eq!(actual, expected, "codes must be dense and in order");
    for pass in &passes {
        assert!(
            !pass.summary().is_empty(),
            "{} needs a summary",
            pass.code()
        );
    }
    let errors: Vec<&str> = passes
        .iter()
        .filter(|p| p.severity() == Severity::Error)
        .map(|p| p.code())
        .collect();
    assert_eq!(
        errors,
        ["A005", "A006", "A008"],
        "error severity is part of the gate contract"
    );
}

// ---- firing tests, one per code ----------------------------------------

#[test]
fn a001_fires_on_dead_node() {
    let mut v = BlockView::new("bb", 100);
    let x = v.push_node(Opcode::Input, Some("x"), &[]);
    let dead = v.push_node(Opcode::Add, None, &[x, x]);
    let live = v.push_node(Opcode::Not, None, &[x]);
    v.set_live_out(live, true);
    let diags = lint(&v);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "A001" && d.node == Some(dead)),
        "dead add must be reported: {diags:?}"
    );
    assert!(
        !diags
            .iter()
            .any(|d| d.code == "A001" && d.node == Some(live)),
        "live-out node is not dead"
    );
}

#[test]
fn a002_fires_on_unused_input() {
    let mut b = BlockBuilder::new("bb");
    let x = b.input("x");
    let y = b.input("y"); // never consumed
    b.op(Opcode::Not, &[x]).unwrap();
    let mut app = Application::new("demo");
    app.push_block(b.build().unwrap());
    let diags = analyze(&app);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "A002" && d.node == Some(y.index())),
        "unused input must be reported: {diags:?}"
    );
}

#[test]
fn a003_fires_on_commuted_duplicate() {
    let mut b = BlockBuilder::new("bb");
    let x = b.input("x");
    let y = b.input("y");
    b.op(Opcode::Add, &[x, y]).unwrap();
    b.op(Opcode::Add, &[y, x]).unwrap(); // commutes to the same op
    let mut app = Application::new("demo");
    app.push_block(b.build().unwrap());
    assert!(has(&analyze(&app), "A003"));
}

#[test]
fn a003_respects_non_commutative_operand_order() {
    let mut b = BlockBuilder::new("bb");
    let x = b.input("x");
    let y = b.input("y");
    b.op(Opcode::Sub, &[x, y]).unwrap();
    b.op(Opcode::Sub, &[y, x]).unwrap(); // a different value
    let mut app = Application::new("demo");
    app.push_block(b.build().unwrap());
    assert!(!has(&analyze(&app), "A003"));
}

#[test]
fn a004_fires_on_foldable_ops() {
    let mut b = BlockBuilder::new("bb");
    let x = b.input("x");
    b.op(Opcode::Xor, &[x, x]).unwrap(); // always zero
    let n = b.op(Opcode::Not, &[x]).unwrap();
    b.op(Opcode::Not, &[n]).unwrap(); // cancels out
    let mut app = Application::new("demo");
    app.push_block(b.build().unwrap());
    let diags = analyze(&app);
    assert_eq!(
        diags.iter().filter(|d| d.code == "A004").count(),
        2,
        "{diags:?}"
    );
}

#[test]
fn a005_fires_on_combinational_cycle() {
    let mut v = BlockView::new("bb", 100);
    let x = v.push_node(Opcode::Input, Some("x"), &[]);
    let a = v.push_node(Opcode::Add, None, &[2, x]); // uses n2: cycle a↔b
    let b = v.push_node(Opcode::Not, None, &[a]);
    v.set_live_out(b, true);
    let diags = lint(&v);
    assert!(has(&diags, "A005"), "{diags:?}");
    assert!(diags
        .iter()
        .filter(|d| d.code == "A005")
        .all(|d| d.severity == Severity::Error));
}

#[test]
fn a006_fires_on_rank_and_arity_violations() {
    let mut v = BlockView::new("bb", 100);
    let x = v.push_node(Opcode::Input, Some("x"), &[]);
    v.push_node(Opcode::Add, None, &[x]); // arity: add takes 2
    v.push_node(Opcode::Not, None, &[99]); // out of range
    v.push_node(Opcode::Not, None, &[3]); // self-reference
    v.push_node(Opcode::Not, None, &[5]); // forward reference
    v.push_node(Opcode::Not, None, &[x]);
    let messages: Vec<String> = lint(&v)
        .into_iter()
        .filter(|d| d.code == "A006")
        .map(|d| d.message)
        .collect();
    for needle in [
        "arity mismatch",
        "out of range",
        "self-reference",
        "does not precede",
    ] {
        assert!(
            messages.iter().any(|m| m.contains(needle)),
            "missing {needle:?} in {messages:?}"
        );
    }
}

#[test]
fn a007_fires_when_no_cut_fits_the_port_budget() {
    let mut v = BlockView::new("bb", 100);
    for i in 0..5 {
        v.push_node(Opcode::Input, Some(&format!("x{i}")), &[]);
    }
    // The only eligible op needs 5 distinct inputs: under the default
    // (4, 2) budget no nonempty cut can exist.
    let sum = v.push_node(Opcode::Add, None, &[0, 1, 2, 3, 4]);
    v.set_live_out(sum, true);
    assert!(has(&lint(&v), "A007"));

    // A wider budget admits it.
    let roomy = LintOptions {
        io: IoConstraints::new(8, 4),
        ..LintOptions::default()
    };
    assert!(!has(&analyze_view(&v, &roomy), "A007"));
}

#[test]
fn a007_fires_when_nothing_is_eligible() {
    let mut v = BlockView::new("bb", 100);
    v.push_node(Opcode::Input, Some("x"), &[]);
    v.push_node(Opcode::Load, None, &[0]); // memory ops are ineligible
    let diags = lint(&v);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "A007" && d.message.contains("no ISE-eligible")),
        "{diags:?}"
    );
}

#[test]
fn a008_fires_on_invalid_hardware_delay() {
    let mut b = BlockBuilder::new("bb");
    let x = b.input("x");
    b.op(Opcode::Add, &[x, x]).unwrap();
    let mut app = Application::new("demo");
    app.push_block(b.build().unwrap());
    for bad in [f64::NAN, f64::INFINITY, -1.0] {
        let opts = LintOptions {
            model: LatencyModel::paper_default().with_raw_hw_delay_for_test(Opcode::Add, bad),
            ..LintOptions::default()
        };
        let diags = analyze_with_opts(&app, &opts);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "A008" && d.severity == Severity::Error),
            "hw delay {bad} must be rejected: {diags:?}"
        );
    }
}

fn analyze_with_opts(app: &Application, opts: &LintOptions) -> Vec<Diagnostic> {
    isegen::analysis::analyze_with(app, opts)
}

#[test]
fn a009_fires_on_unprofitable_latency() {
    let mut b = BlockBuilder::new("bb");
    let x = b.input("x");
    b.op(Opcode::Add, &[x, x]).unwrap();
    let mut app = Application::new("demo");
    app.push_block(b.build().unwrap());

    let zero_sw = LintOptions {
        model: LatencyModel::paper_default().with_sw_cycles(Opcode::Add, 0),
        ..LintOptions::default()
    };
    let diags = analyze_with_opts(&app, &zero_sw);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "A009" && d.message.contains("zero software cycles")),
        "{diags:?}"
    );

    let slow_hw = LintOptions {
        model: LatencyModel::paper_default().with_hw_delay(Opcode::Add, 1.0),
        ..LintOptions::default()
    };
    let diags = analyze_with_opts(&app, &slow_hw);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "A009" && d.message.contains(">=")),
        "{diags:?}"
    );
}

#[test]
fn a010_fires_on_suspicious_frequency() {
    let mut never = BlockView::new("bb", 0);
    let x = never.push_node(Opcode::Input, Some("x"), &[]);
    never.push_node(Opcode::Not, None, &[x]);
    assert!(has(&lint(&never), "A010"));

    let mut absurd = BlockView::new("bb", MAX_FREQUENCY + 1);
    let x = absurd.push_node(Opcode::Input, Some("x"), &[]);
    absurd.push_node(Opcode::Not, None, &[x]);
    assert!(has(&lint(&absurd), "A010"));
}

#[test]
fn a011_fires_on_duplicate_input_label() {
    let mut v = BlockView::new("bb", 100);
    v.push_node(Opcode::Input, Some("x"), &[]);
    v.push_node(Opcode::Input, Some("x"), &[]);
    let s = v.push_node(Opcode::Add, None, &[0, 1]);
    v.set_live_out(s, true);
    assert!(has(&lint(&v), "A011"));
}

// ---- silence tests ------------------------------------------------------

/// A well-formed minimal block is completely clean.
#[test]
fn clean_block_produces_no_diagnostics() {
    let mut b = BlockBuilder::new("bb");
    let x = b.input("x");
    let y = b.input("y");
    b.op(Opcode::Add, &[x, y]).unwrap();
    let mut app = Application::new("demo");
    app.push_block(b.build().unwrap());
    let diags = analyze(&app);
    assert!(diags.is_empty(), "{diags:?}");
}

/// The whole registry corpus: zero error-severity findings, and every
/// warning is one of the explicitly waived codes. This is the per-code
/// silence proof for everything outside the waiver list.
#[test]
fn corpus_is_clean_modulo_waivers() {
    let mut seen_waived: Vec<&'static str> = Vec::new();
    for spec in all_workloads() {
        let diags = analyze(&spec.application());
        for d in &diags {
            assert_ne!(
                d.severity,
                Severity::Error,
                "{}: corpus workload has an error finding: {d}",
                spec.name
            );
            assert!(
                CORPUS_WAIVERS.contains(&d.code),
                "{}: unwaived corpus finding: {d}",
                spec.name
            );
            if !seen_waived.contains(&d.code) {
                seen_waived.push(d.code);
            }
        }
    }
    // The waiver list must stay minimal: a code nobody hits any more
    // should be removed, not carried.
    for code in CORPUS_WAIVERS {
        assert!(
            seen_waived.contains(code),
            "waiver {code} is stale: the corpus no longer produces it"
        );
    }
}

/// Positioned diagnostics must actually point at the right line of the
/// canonical serialization: the line a node-anchored finding names
/// must be that node's definition.
#[test]
fn diagnostic_lines_point_at_the_named_node() {
    let mut checked = 0usize;
    for spec in all_workloads() {
        let app = spec.application();
        let diags = analyze(&app);
        if diags.is_empty() {
            continue;
        }
        let canonical = text::write_application(&app);
        let lines: Vec<&str> = canonical.lines().collect();
        for d in &diags {
            let (Some(node), Some(line)) = (d.node, d.line) else {
                continue;
            };
            let content = lines
                .get(line - 1)
                .unwrap_or_else(|| panic!("{}: line {line} out of range", spec.name));
            assert!(
                content.trim_start().starts_with(&format!("n{node} ")),
                "{}: {d} points at {content:?}",
                spec.name
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "corpus produced no positioned diagnostics");
}

// ---- never-panic fuzzing ------------------------------------------------

/// Tiny deterministic generator (same idiom as `serve_roundtrip`): no
/// shrinking needed, the property is "does not panic".
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn mutate(text: &str, rng: &mut XorShift) -> String {
    let mut bytes = text.as_bytes().to_vec();
    for _ in 0..=rng.below(8) {
        if bytes.is_empty() {
            break;
        }
        match rng.below(5) {
            0 => bytes.truncate(rng.below(bytes.len() + 1)),
            1 => {
                let i = rng.below(bytes.len());
                bytes.remove(i);
            }
            2 => {
                let i = rng.below(bytes.len());
                bytes[i] = *b"\"\\\n =#x0\xff".get(rng.below(9)).expect("in range");
            }
            3 => {
                let i = rng.below(bytes.len() + 1);
                bytes.insert(i, (rng.next() % 96 + 32) as u8);
            }
            _ => {
                let a = rng.below(bytes.len());
                let b = (a + rng.below(64)).min(bytes.len());
                let slice = bytes[a..b].to_vec();
                bytes.extend_from_slice(&slice);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A random hostile view: arbitrary opcodes, operand indices that may
/// point anywhere (in range, forward, self, far out of range), random
/// labels, live-outs and frequencies.
fn random_view(rng: &mut XorShift) -> BlockView {
    let freq = match rng.below(4) {
        0 => 0,
        1 => u64::MAX,
        _ => rng.next(),
    };
    let mut view = BlockView::new(format!("fuzz{}", rng.below(4)), freq);
    let n = rng.below(40);
    for i in 0..n {
        let opcode = Opcode::ALL[rng.below(Opcode::ALL.len())];
        let mut preds = Vec::new();
        for _ in 0..rng.below(5) {
            preds.push(rng.below(n * 2 + 2));
        }
        let label = (rng.below(3) == 0).then(|| format!("l{}", rng.below(3)));
        view.push_node(opcode, label.as_deref(), &preds);
        if rng.below(3) == 0 {
            view.set_live_out(i, true);
        }
    }
    view
}

proptest! {
    /// Mutated real programs: whatever the parser accepts, the analyzer
    /// must survive.
    #[test]
    fn analyze_survives_mutated_programs(seed in any::<u64>()) {
        let base = text::write_application(&workload_by_name("fir00").unwrap().application());
        let mut rng = XorShift(seed);
        let mutant = mutate(&base, &mut rng);
        if let Ok(app) = text::parse_application(&mutant) {
            let _ = analyze(&app);
        }
    }

    /// Raw hostile views: cycles, self-loops, out-of-range operands,
    /// absurd frequencies — the registry must report, never panic.
    #[test]
    fn analyze_view_survives_hostile_views(seed in any::<u64>()) {
        let mut rng = XorShift(seed);
        let view = random_view(&mut rng);
        let _ = analyze_view(&view, &LintOptions::default());
    }
}
