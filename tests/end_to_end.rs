//! End-to-end invariants of the full pipeline (workload → ISEGEN →
//! selection) on every benchmark of the paper's suite.

use isegen::prelude::*;
use isegen::workloads::mediabench_eembc_suite;

fn paper_config() -> IseConfig {
    IseConfig {
        io: IoConstraints::new(4, 2),
        max_ises: 4,
        reuse_matching: true,
    }
}

/// Every generated ISE must be architecturally valid: convex, within the
/// port budget, disjoint from every other accelerated instance, and
/// genuinely profitable.
#[test]
fn selections_are_architecturally_valid() {
    let model = LatencyModel::paper_default();
    for spec in mediabench_eembc_suite() {
        let app = spec.application();
        let sel = Generator::new(paper_config()).run(&app, &model);
        assert!(sel.speedup() >= 1.0, "{}: speedup below 1", spec.name);
        let contexts: Vec<BlockContext<'_>> = app
            .blocks()
            .iter()
            .map(|b| BlockContext::new(b, &model))
            .collect();
        let mut claimed: Vec<isegen::graph::NodeSet> = app
            .blocks()
            .iter()
            .map(|b| isegen::graph::NodeSet::new(b.dag().node_count()))
            .collect();
        for ise in &sel.ises {
            assert!(ise.saved_per_execution > 0, "{}: useless ISE", spec.name);
            let defining = &contexts[ise.block_index];
            assert!(
                defining.is_convex(ise.cut.nodes()),
                "{}: non-convex cut",
                spec.name
            );
            assert!(
                ise.cut.satisfies_io(IoConstraints::new(4, 2)),
                "{}: cut violates (4,2)",
                spec.name
            );
            for inst in &ise.instances {
                let ctx = &contexts[inst.block_index];
                assert!(
                    ctx.is_convex(&inst.nodes),
                    "{}: non-convex instance",
                    spec.name
                );
                let c = Cut::evaluate(ctx, inst.nodes.clone());
                assert!(
                    c.satisfies_io(IoConstraints::new(4, 2)),
                    "{}: instance violates (4,2)",
                    spec.name
                );
                assert_eq!(
                    inst.nodes.len(),
                    ise.cut.nodes().len(),
                    "{}: instance size differs from its pattern",
                    spec.name
                );
                assert!(
                    claimed[inst.block_index].is_disjoint(&inst.nodes),
                    "{}: overlapping instances",
                    spec.name
                );
                claimed[inst.block_index].union_with(&inst.nodes);
            }
        }
    }
}

/// ISEGEN is deterministic: two runs produce identical selections.
#[test]
fn isegen_is_deterministic() {
    let model = LatencyModel::paper_default();
    for spec in mediabench_eembc_suite().into_iter().take(4) {
        let app = spec.application();
        let a = Generator::new(paper_config()).run(&app, &model);
        let b = Generator::new(paper_config()).run(&app, &model);
        assert_eq!(a, b, "{}: nondeterministic result", spec.name);
    }
}

/// More AFUs never hurt: speedup is monotone in `N_ISE`.
#[test]
fn speedup_monotone_in_afu_budget() {
    let model = LatencyModel::paper_default();
    for spec in mediabench_eembc_suite().into_iter().take(5) {
        let app = spec.application();
        let mut last = 1.0;
        for n in 1..=4 {
            let config = IseConfig {
                max_ises: n,
                ..paper_config()
            };
            let s = Generator::new(config).run(&app, &model).speedup();
            assert!(
                s >= last - 1e-9,
                "{}: speedup dropped from {last} to {s} at N_ISE={n}",
                spec.name
            );
            last = s;
        }
    }
}

/// Relaxing the port budget never hurts a single-cut search.
#[test]
fn merit_monotone_in_io_budget() {
    let model = LatencyModel::paper_default();
    for spec in mediabench_eembc_suite().into_iter().take(5) {
        let app = spec.application();
        let block = app.critical_block().expect("has blocks");
        let ctx = BlockContext::new(block, &model);
        let mut last = 0.0;
        for (i, o) in [(2u32, 1u32), (3, 1), (4, 2), (6, 3), (8, 4)] {
            let cut = Search::default().run(&ctx, IoConstraints::new(i, o)).cut;
            let m = cut.merit().max(0.0);
            // The K-L heuristic is not globally optimal, so allow a small
            // tolerance; systematic regressions would trip it.
            assert!(
                m >= last * 0.85 - 1e-9,
                "{}: merit collapsed from {last} to {m} at ({i},{o})",
                spec.name
            );
            if m > last {
                last = m;
            }
        }
    }
}

/// Covered nodes of one ISE are never re-used by a later ISE.
#[test]
fn successive_cuts_are_disjoint() {
    let model = LatencyModel::paper_default();
    let spec = &mediabench_eembc_suite()[4]; // adpcm_decoder: plenty of cuts
    let app = spec.application();
    let config = IseConfig {
        reuse_matching: false,
        max_ises: 6,
        ..paper_config()
    };
    let sel = Generator::new(config).run(&app, &model);
    assert!(sel.ises.len() >= 2, "expected several cuts");
    for i in 0..sel.ises.len() {
        for j in (i + 1)..sel.ises.len() {
            let (a, b) = (&sel.ises[i], &sel.ises[j]);
            if a.block_index == b.block_index {
                assert!(a.cut.nodes().is_disjoint(b.cut.nodes()));
            }
        }
    }
}
