//! The lazy-decrease max-gain queue must be a pure wall-clock
//! optimisation: [`SelectionStrategy::Queue`] and
//! [`SelectionStrategy::Scan`] must commit the **same toggles in the
//! same order** on every trajectory, so cuts, merits and selections are
//! bit-identical. The scan is the executable specification (strict
//! improvement, ties to the lowest node index); the queue is checked
//! against it toggle-for-toggle via `trajectory_commit_trace`.

use isegen::core::{
    trajectory_commit_trace, BlockContext, GainWeights, IoConstraints, Search, SearchConfig,
    SelectionStrategy,
};
use isegen::graph::NodeSet;
use isegen::ir::LatencyModel;
use isegen::workloads::{random_application, workload_by_name, RandomWorkloadConfig};
use proptest::prelude::*;

fn scan_config() -> SearchConfig {
    SearchConfig::new().with_strategy(SelectionStrategy::Scan)
}

fn queue_config() -> SearchConfig {
    SearchConfig::new().with_strategy(SelectionStrategy::Queue)
}

/// Commit traces and full search outcomes for both strategies must agree.
fn assert_strategies_agree(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    forbidden: Option<&NodeSet>,
    label: &str,
) {
    let scan_trace = trajectory_commit_trace(ctx, io, &scan_config(), forbidden);
    let queue_trace = trajectory_commit_trace(ctx, io, &queue_config(), forbidden);
    assert_eq!(
        queue_trace, scan_trace,
        "{label}: queue committed a different toggle sequence"
    );

    let mut scan_search = Search::new(scan_config());
    let mut queue_search = Search::new(queue_config());
    if let Some(f) = forbidden {
        scan_search = scan_search.forbidden(f);
        queue_search = queue_search.forbidden(f);
    }
    let scan_cut = scan_search.run(ctx, io).cut;
    let queue = queue_search.run(ctx, io);
    assert_eq!(
        queue.cut, scan_cut,
        "{label}: queue produced a different cut"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAGs across sizes, port budgets and forbidden sets.
    #[test]
    fn queue_matches_scan_on_random_dags(
        seed in any::<u64>(),
        ops in 8usize..80,
        io_pick in 0usize..4,
        forbid_stride in 0usize..4,
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        let block = &app.blocks()[0];
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(block, &model);
        let io = [(2u32, 1u32), (4, 2), (6, 3), (8, 4)][io_pick];
        let io = IoConstraints::new(io.0, io.1);
        let forbidden = (forbid_stride > 0).then(|| {
            let mut f = NodeSet::new(ctx.node_count());
            for (i, v) in ctx.eligible().iter().enumerate() {
                if i % (forbid_stride + 1) == 0 {
                    f.insert(v);
                }
            }
            f
        });
        assert_strategies_agree(&ctx, io, forbidden.as_ref(), &format!("seed {seed}"));
    }

    /// Hostile weights (NaN/∞): the queue must detect the poisoned gain
    /// and hand the rest of the trajectory to the reference scan, so the
    /// NaN-ordering semantics of the scan survive verbatim.
    #[test]
    fn queue_matches_scan_under_hostile_weights(
        seed in any::<u64>(),
        ops in 8usize..40,
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        let block = &app.blocks()[0];
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(block, &model);
        let io = IoConstraints::new(4, 2);
        let weights = GainWeights {
            merit: f64::NAN,
            io_penalty: f64::INFINITY,
            affinity: f64::NAN,
            growth: f64::NEG_INFINITY,
            independence: f64::NAN,
        };
        let scan = SearchConfig::new()
            .with_strategy(SelectionStrategy::Scan)
            .with_weights(weights);
        let queue = SearchConfig::new()
            .with_strategy(SelectionStrategy::Queue)
            .with_weights(weights);
        let scan_trace = trajectory_commit_trace(&ctx, io, &scan, None);
        let queue_trace = trajectory_commit_trace(&ctx, io, &queue, None);
        prop_assert_eq!(queue_trace, scan_trace, "NaN-weight divergence (seed {})", seed);
    }
}

/// The full-round AES-128 kernel: the largest registry workload the
/// queue is benchmarked on, and the regression anchor for the
/// BENCH_kl.json numbers.
#[test]
fn queue_matches_scan_on_aes128() {
    let spec = workload_by_name("aes128").expect("aes128 in registry");
    let app = spec.application();
    let block = app
        .blocks()
        .iter()
        .max_by_key(|b| b.dag().node_count())
        .expect("aes128 has blocks");
    let model = LatencyModel::paper_default();
    let ctx = BlockContext::new(block, &model);
    let io = IoConstraints::new(4, 2);
    assert_strategies_agree(&ctx, io, None, "aes128");

    // And the queue must actually be in play, not silently falling back.
    let outcome = Search::new(queue_config()).run(&ctx, io);
    assert!(
        outcome.stats.queue_pops > 0,
        "queue strategy never popped: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.queue_reinsertions > 0,
        "dirty-set reinsertion never ran: {:?}",
        outcome.stats
    );
}
