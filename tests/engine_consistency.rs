//! Property tests of the §4.3 toggle-impact machinery at integration
//! scale: after *any* toggle sequence on *any* DFG, the incremental
//! engine's counts must equal a from-scratch evaluation. This substitutes
//! for the rule-table correctness proofs the paper defers to its
//! technical report.

use isegen::core::{BlockContext, Cut, ToggleEngine};
use isegen::graph::NodeId;
use isegen::ir::LatencyModel;
use isegen::workloads::{random_application, RandomWorkloadConfig};
use proptest::prelude::*;

fn check_consistency(seed: u64, ops: usize, toggles: &[usize]) {
    let app = random_application(&RandomWorkloadConfig {
        seed,
        blocks: 1,
        ops_per_block: ops,
        ..RandomWorkloadConfig::default()
    });
    let model = LatencyModel::paper_default();
    let block = &app.blocks()[0];
    let ctx = BlockContext::new(block, &model);
    let eligible: Vec<NodeId> = ctx.eligible().iter().collect();
    if eligible.is_empty() {
        return;
    }
    let mut engine = ToggleEngine::new(&ctx);
    for &t in toggles {
        let v = eligible[t % eligible.len()];
        engine.toggle(v);
        let reference = Cut::evaluate(&ctx, engine.cut().clone());
        assert_eq!(engine.input_count(), reference.input_count(), "inputs");
        assert_eq!(engine.output_count(), reference.output_count(), "outputs");
        assert_eq!(
            engine.software_latency(),
            reference.software_latency(),
            "sw latency"
        );
        assert!(
            (engine.hardware_latency() - reference.hardware_latency()).abs() < 1e-9,
            "hw latency {} vs {}",
            engine.hardware_latency(),
            reference.hardware_latency()
        );
        assert_eq!(engine.is_convex(), ctx.is_convex(engine.cut()), "convexity");
        let snap = engine.snapshot();
        assert_eq!(snap, reference, "snapshot mismatch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_engine_matches_scratch(
        seed in any::<u64>(),
        ops in 8usize..80,
        toggles in proptest::collection::vec(any::<usize>(), 1..120),
    ) {
        check_consistency(seed, ops, &toggles);
    }

    #[test]
    fn probe_matches_commit(
        seed in any::<u64>(),
        ops in 8usize..60,
        toggles in proptest::collection::vec(any::<usize>(), 1..60),
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        let model = LatencyModel::paper_default();
        let block = &app.blocks()[0];
        let ctx = BlockContext::new(block, &model);
        let eligible: Vec<NodeId> = ctx.eligible().iter().collect();
        prop_assume!(!eligible.is_empty());
        let mut engine = ToggleEngine::new(&ctx);
        for &t in &toggles {
            let v = eligible[t % eligible.len()];
            let probe = engine.probe(v);
            let was_convex = engine.is_convex();
            engine.toggle(v);
            // I/O predictions are always exact.
            prop_assert_eq!(probe.inputs, engine.input_count());
            prop_assert_eq!(probe.outputs, engine.output_count());
            if probe.entering {
                // entering predictions are exact for convexity and merit
                prop_assert_eq!(probe.convex, engine.is_convex());
                if probe.convex {
                    prop_assert!((probe.merit - engine.merit()).abs() < 1e-9,
                        "entering merit {} vs {}", probe.merit, engine.merit());
                }
            } else if was_convex {
                // leaving a convex cut: convexity prediction is exact
                prop_assert_eq!(probe.convex, engine.is_convex());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The §4.3 invariant must survive *barrier-heavy* blocks too:
    /// sweeping the memory-operation fraction exercises the eligibility
    /// boundary (loads/stores can never join the cut) that the plain
    /// sweep above rarely hits.
    #[test]
    fn incremental_engine_matches_scratch_with_barriers(
        seed in any::<u64>(),
        ops in 8usize..60,
        memory_fraction in 0.0f64..0.6,
        toggles in proptest::collection::vec(any::<usize>(), 1..80),
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            memory_fraction,
            ..RandomWorkloadConfig::default()
        });
        let model = LatencyModel::paper_default();
        let block = &app.blocks()[0];
        let ctx = BlockContext::new(block, &model);
        let eligible: Vec<NodeId> = ctx.eligible().iter().collect();
        prop_assume!(!eligible.is_empty());
        let mut engine = ToggleEngine::new(&ctx);
        for &t in &toggles {
            let v = eligible[t % eligible.len()];
            engine.toggle(v);
            let reference = Cut::evaluate(&ctx, engine.cut().clone());
            prop_assert_eq!(engine.snapshot(), reference);
            prop_assert_eq!(engine.is_convex(), ctx.is_convex(engine.cut()));
        }
    }

    /// Toggling every cut member back out must return the engine to the
    /// pristine empty-cut state — incremental bookkeeping may not leak
    /// residue across a full round trip.
    #[test]
    fn toggle_round_trip_restores_empty_state(
        seed in any::<u64>(),
        ops in 8usize..60,
        toggles in proptest::collection::vec(any::<usize>(), 1..60),
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        let model = LatencyModel::paper_default();
        let block = &app.blocks()[0];
        let ctx = BlockContext::new(block, &model);
        let eligible: Vec<NodeId> = ctx.eligible().iter().collect();
        prop_assume!(!eligible.is_empty());
        let mut engine = ToggleEngine::new(&ctx);
        for &t in &toggles {
            engine.toggle(eligible[t % eligible.len()]);
        }
        let members: Vec<NodeId> = engine.cut().iter().collect();
        for v in members {
            engine.toggle(v);
        }
        prop_assert!(engine.cut().is_empty());
        let empty = Cut::evaluate(&ctx, engine.cut().clone());
        prop_assert_eq!(engine.snapshot(), empty);
        prop_assert_eq!(engine.input_count(), 0);
        prop_assert_eq!(engine.output_count(), 0);
        prop_assert!(engine.is_convex());
        prop_assert!(engine.hardware_latency().abs() < 1e-12);
    }
}

/// Exhaustive check on a fixed small graph: every subset reachable by
/// toggles agrees with scratch evaluation.
#[test]
fn exhaustive_small_graph() {
    let app = random_application(&RandomWorkloadConfig {
        seed: 99,
        blocks: 1,
        ops_per_block: 10,
        memory_fraction: 0.1,
        ..RandomWorkloadConfig::default()
    });
    let model = LatencyModel::paper_default();
    let block = &app.blocks()[0];
    let ctx = BlockContext::new(block, &model);
    let eligible: Vec<NodeId> = ctx.eligible().iter().collect();
    let k = eligible.len().min(10);
    for mask in 0u32..(1 << k) {
        let mut engine = ToggleEngine::new(&ctx);
        for (i, &v) in eligible.iter().take(k).enumerate() {
            if mask & (1 << i) != 0 {
                engine.toggle(v);
            }
        }
        let reference = Cut::evaluate(&ctx, engine.cut().clone());
        assert_eq!(engine.snapshot(), reference, "mask {mask:b}");
        assert_eq!(engine.is_convex(), ctx.is_convex(engine.cut()));
    }
}
