//! Property tests of the Fig. 3 addendum table on arbitrary DFGs: the
//! paper's locality claim ("when a node is toggled, ΔI and ΔO of only
//! its neighbours get affected") as a machine-checked theorem.

use isegen::core::{AddendumTable, BlockContext, Cut};
use isegen::graph::NodeId;
use isegen::ir::LatencyModel;
use isegen::workloads::{random_application, RandomWorkloadConfig};
use proptest::prelude::*;

/// Runs the full scratch-delta agreement check: after every toggle the
/// table's running I/O counts and every per-node ΔI/ΔO addendum must
/// match a from-scratch recomputation.
fn check_addendums(app: &isegen::ir::Application, toggles: &[usize]) -> Result<(), TestCaseError> {
    let model = LatencyModel::paper_default();
    let block = &app.blocks()[0];
    let ctx = BlockContext::new(block, &model);
    let nodes: Vec<NodeId> = block.dag().node_ids().collect();
    let mut table = AddendumTable::new(&ctx);
    for &t in toggles {
        let v = nodes[t % nodes.len()];
        table.toggle(&ctx, v);
        let reference = Cut::evaluate(&ctx, table.cut().clone());
        prop_assert_eq!(table.inputs(), reference.input_count());
        prop_assert_eq!(table.outputs(), reference.output_count());
        for &u in &nodes {
            let mut flipped = table.cut().clone();
            flipped.toggle(u);
            let f = Cut::evaluate(&ctx, flipped);
            prop_assert_eq!(
                table.delta_i(u),
                f.input_count() as i32 - reference.input_count() as i32,
                "stale dI at {}",
                u
            );
            prop_assert_eq!(
                table.delta_o(u),
                f.output_count() as i32 - reference.output_count() as i32,
                "stale dO at {}",
                u
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Barrier-heavy sweep: memory operations (which can never join a
    /// cut, yet sit inside the neighbourhoods the Fig. 3 rules walk)
    /// must not desynchronise any addendum.
    #[test]
    fn addendums_match_scratch_under_memory_barriers(
        seed in any::<u64>(),
        ops in 6usize..50,
        memory_fraction in 0.0f64..0.5,
        toggles in proptest::collection::vec(any::<usize>(), 1..30),
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            memory_fraction,
            ..RandomWorkloadConfig::default()
        });
        check_addendums(&app, &toggles)?;
    }

    #[test]
    fn addendums_always_match_scratch_deltas(
        seed in any::<u64>(),
        ops in 6usize..40,
        toggles in proptest::collection::vec(any::<usize>(), 1..40),
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        check_addendums(&app, &toggles)?;
    }
}
