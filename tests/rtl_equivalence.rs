//! Golden-model equivalence: for any cut ISEGEN selects, the generated
//! AFU datapath must compute exactly what the software operations it
//! replaces compute — the correctness condition of ISE deployment.
//!
//! The netlist simulator is driven with random input vectors; its
//! outputs are compared against the whole-block interpreter's values at
//! the cut's output nodes.

use isegen::core::{bipartition, BlockContext, IoConstraints, SearchConfig};
use isegen::graph::NodeId;
use isegen::ir::{interp, LatencyModel, Opcode};
use isegen::rtl::Netlist;
use isegen::workloads::{aes, autcor00, fft00, random_application, viterb00, RandomWorkloadConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Runs the block in software with pseudo-random inputs and checks the
/// netlist against the values at the cut boundary.
fn check_equivalence(block: &isegen::ir::BasicBlock, netlist: &Netlist, seed: u64) {
    let dag = block.dag();
    // Bind every input node to a deterministic pseudo-random value.
    let mut inputs: BTreeMap<NodeId, u32> = BTreeMap::new();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 16) as u32
    };
    for (id, op) in dag.nodes() {
        if op.opcode() == Opcode::Input {
            inputs.insert(id, next());
        }
    }
    let mut memory = BTreeMap::new();
    let values = interp::execute(block, &inputs, &mut memory).expect("all inputs bound");

    // Feed the netlist the block-computed values of its input producers.
    let port_values: Vec<u32> = netlist
        .input_nodes()
        .iter()
        .map(|p| values[p.index()])
        .collect();
    let afu_out = netlist.evaluate(&port_values);

    // Compare with the block-computed values of the output nodes.
    for (port, &cell) in netlist.output_cells().iter().enumerate() {
        let node = netlist.cell_nodes()[cell as usize];
        assert_eq!(
            afu_out[port],
            values[node.index()],
            "output port {port} (node {node}) diverged"
        );
    }
}

#[test]
fn selected_cuts_are_equivalent_on_real_workloads() {
    let model = LatencyModel::paper_default();
    for app in [autcor00(), viterb00(), fft00(), aes()] {
        let block = app.critical_block().expect("has blocks");
        let ctx = BlockContext::new(block, &model);
        for (i, o) in [(2u32, 1u32), (4, 2), (8, 4)] {
            let cut = bipartition(
                &ctx,
                IoConstraints::new(i, o),
                &SearchConfig::default(),
                None,
            );
            if cut.is_empty() {
                continue;
            }
            let netlist = Netlist::from_cut(block, cut.nodes()).expect("eligible cut");
            for seed in 0..8 {
                check_equivalence(block, &netlist, seed);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_cuts_are_equivalent(seed in any::<u64>(), ops in 10usize..60) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            // keep memory out so the whole block is cuttable
            memory_fraction: 0.0,
            ..RandomWorkloadConfig::default()
        });
        let model = LatencyModel::paper_default();
        let block = &app.blocks()[0];
        let ctx = BlockContext::new(block, &model);
        let cut = bipartition(&ctx, IoConstraints::new(4, 2), &SearchConfig::default(), None);
        prop_assume!(!cut.is_empty());
        let netlist = Netlist::from_cut(block, cut.nodes()).expect("eligible cut");
        for s in 0..4u64 {
            check_equivalence(block, &netlist, seed ^ s);
        }
    }
}
