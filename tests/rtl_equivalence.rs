//! Golden-model equivalence: for any cut ISEGEN selects, the generated
//! AFU datapath must compute exactly what the software operations it
//! replaces compute — the correctness condition of ISE deployment.
//!
//! Every check here goes through the three-way differential harness
//! (`isegen::rtl::verify_cut` / `verify_selection`): the whole-block
//! interpreter, the structural netlist simulator, and the
//! parsed-and-executed emitted Verilog *text* must agree bit-for-bit on
//! random stimulus. The sweep covers the complete small + medium tiers
//! of the workload registry — every kernel the CI scaling gate selects
//! ISEs for also has its emitted RTL executed and checked here.
//!
//! Stimulus volume follows `PROPTEST_CASES` (the same knob the vendored
//! proptest shim honours), so CI pins it and local runs can crank it.

use isegen::core::{BlockContext, Generator, IoConstraints, IseConfig, Search};
use isegen::ir::LatencyModel;
use isegen::rtl::{verify_cut, verify_selection, Netlist, VerifyConfig};
use isegen::workloads::{random_application, workloads_in_tiers, RandomWorkloadConfig, SizeTier};
use proptest::prelude::*;

/// Vectors per module, from `PROPTEST_CASES` (default 32, floor 4 so a
/// `PROPTEST_CASES=1` smoke run still toggles some bits).
fn vectors_per_module() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(32)
        .max(4)
}

#[test]
fn every_registry_selection_is_equivalent_on_small_and_medium_tiers() {
    let model = LatencyModel::paper_default();
    let config = VerifyConfig {
        vectors: vectors_per_module(),
        ..VerifyConfig::default()
    };
    let specs = workloads_in_tiers(&[SizeTier::Small, SizeTier::Medium]);
    assert!(specs.len() >= 10, "registry shrank? {} specs", specs.len());
    let mut verified_ises = 0usize;
    for spec in &specs {
        let app = spec.application();
        let selection = Generator::new(IseConfig::paper_default()).run(&app, &model);
        let reports = verify_selection(&app, &selection, &config)
            .unwrap_or_else(|e| panic!("{}: harness failed: {e}", spec.name));
        assert_eq!(reports.len(), selection.ises.len(), "{}", spec.name);
        for report in &reports {
            assert!(
                report.passed(),
                "{}/{}: {} mismatch(es), first: {:?}",
                spec.name,
                report.module,
                report.mismatches,
                report.first_mismatches
            );
        }
        verified_ises += reports.len();
    }
    // The corpus reliably yields ISEs; a sweep that verified nothing
    // would be a silently green no-op.
    assert!(
        verified_ises >= specs.len(),
        "only {verified_ises} ISEs across {} workloads",
        specs.len()
    );
}

#[test]
fn hand_constrained_cuts_are_equivalent_across_io_budgets() {
    // Tighter and looser I/O budgets than the paper default exercise
    // cut shapes `generate` would not pick on its own.
    let model = LatencyModel::paper_default();
    let config = VerifyConfig {
        vectors: vectors_per_module(),
        ..VerifyConfig::default()
    };
    for spec in workloads_in_tiers(&[SizeTier::Small]) {
        let app = spec.application();
        let block = app.critical_block().expect("has blocks");
        let ctx = BlockContext::new(block, &model);
        for (i, o) in [(2u32, 1u32), (4, 2), (8, 4)] {
            let cut = Search::default().run(&ctx, IoConstraints::new(i, o)).cut;
            if cut.is_empty() {
                continue;
            }
            // The cut must still be netlistable before the harness runs
            // it — keeps the failure message pointed at extraction.
            Netlist::from_cut(block, cut.nodes()).expect("eligible cut");
            let name = format!("{}_{i}x{o}", spec.name);
            let report = verify_cut(block, cut.nodes(), &name, &config)
                .unwrap_or_else(|e| panic!("{name}: harness failed: {e}"));
            assert!(
                report.passed(),
                "{name}: {} mismatch(es), first: {:?}",
                report.mismatches,
                report.first_mismatches
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_cuts_are_equivalent(seed in any::<u64>(), ops in 10usize..60) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            // keep memory out so the whole block is cuttable
            memory_fraction: 0.0,
            ..RandomWorkloadConfig::default()
        });
        let model = LatencyModel::paper_default();
        let block = &app.blocks()[0];
        let ctx = BlockContext::new(block, &model);
        let cut = Search::default().run(&ctx, IoConstraints::new(4, 2)).cut;
        prop_assume!(!cut.is_empty());
        let config = VerifyConfig { vectors: 4, seed };
        let report = verify_cut(block, cut.nodes(), "rand", &config)
            .unwrap_or_else(|e| panic!("seed {seed}: harness failed: {e}"));
        prop_assert!(
            report.passed(),
            "seed {}: {} mismatch(es), first: {:?}",
            seed,
            report.mismatches,
            report.first_mismatches
        );
    }
}
