//! Per-workload smoke tests over the whole registry: every entry —
//! paper suite, expansion kernels and synthetics alike — must be a
//! well-formed, convex-searchable DAG, the corpus must meet the scale
//! floors the scaling gate depends on, and the batched driver must stay
//! byte-identical to the sequential driver on the new workloads. A
//! malformed kernel fails here, in tier 1, not in a CI benchmark.

use isegen::graph::{NodeSet, TopoOrder};
use isegen::ir::Opcode;
use isegen::prelude::*;
use isegen::workloads::{all_workloads, workloads_in, workloads_in_tiers, Category, SizeTier};

#[test]
fn registry_names_are_unique_and_sorted_by_size() {
    let all = all_workloads();
    assert!(all.len() >= 10, "corpus shrank to {} entries", all.len());
    let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), all.len(), "duplicate workload names");
    for w in all.windows(2) {
        assert!(
            w[0].kernel_ops <= w[1].kernel_ops,
            "{} listed after the larger {}",
            w[1].name,
            w[0].name
        );
    }
}

#[test]
fn corpus_meets_the_scale_floors() {
    // the regimes the ROADMAP's workload-expansion item calls for
    let crypto = workloads_in(Category::Crypto);
    assert!(
        crypto
            .iter()
            .any(|w| w.name.starts_with("aes") && w.kernel_ops >= 1000),
        "no >=1000-op AES block in the corpus"
    );
    let synth = workloads_in(Category::Synthetic);
    assert!(
        synth.iter().any(|w| w.kernel_ops >= 2000),
        "no >=2000-op synthetic block in the corpus"
    );
    for category in Category::ALL {
        assert!(
            !workloads_in(category).is_empty(),
            "category {} is empty",
            category.name()
        );
    }
}

/// Structural well-formedness of every registry entry: exact op count,
/// acyclicity, sane arities, and a searchable (convex-feasible) block.
#[test]
fn every_registry_entry_is_a_well_formed_searchable_dag() {
    let model = LatencyModel::paper_default();
    for spec in all_workloads() {
        let app = spec.application();
        let kernel = app.critical_block().expect("application has blocks");
        assert_eq!(
            kernel.operation_count(),
            spec.kernel_ops,
            "{}: kernel size disagrees with the registry",
            spec.name
        );
        assert!(
            app.blocks().len() >= 2,
            "{}: missing the rest-of-program block",
            spec.name
        );
        assert!(app.blocks().iter().all(|b| b.frequency() >= 1));

        let dag = kernel.dag();
        // acyclic and fully ordered
        let topo = TopoOrder::new(dag);
        assert_eq!(topo.len(), dag.node_count(), "{}: cyclic kernel", spec.name);
        // every edge goes forward in topological order
        for (src, dst) in dag.edges() {
            assert!(
                topo.rank(src) < topo.rank(dst),
                "{}: edge against topological order",
                spec.name
            );
        }
        // operations consume values; inputs don't
        let mut ops = 0usize;
        for (id, op) in dag.nodes() {
            if op.opcode() == Opcode::Input {
                assert_eq!(dag.in_degree(id), 0, "{}: input with operands", spec.name);
            } else {
                ops += 1;
                assert!(dag.in_degree(id) >= 1, "{}: orphan operation", spec.name);
            }
        }
        assert_eq!(ops, spec.kernel_ops, "{}: op census mismatch", spec.name);
        assert!(
            dag.edge_count() >= spec.kernel_ops,
            "{}: fewer edges than operations",
            spec.name
        );

        // convex-cut feasibility: the search must have somewhere to go
        let ctx = BlockContext::new(kernel, &model);
        let eligible = ctx.eligible();
        assert!(!eligible.is_empty(), "{}: nothing to cut", spec.name);
        assert!(
            ctx.potential(None) > 0,
            "{}: zero speedup potential",
            spec.name
        );
        // every singleton over a sample of eligible nodes is a convex cut
        let sample: Vec<_> = eligible.iter().collect();
        for &node in [
            sample[0],
            sample[sample.len() / 2],
            sample[sample.len() - 1],
        ]
        .iter()
        {
            let mut cut = NodeSet::new(dag.node_count());
            cut.insert(node);
            assert!(
                ctx.is_convex(&cut),
                "{}: singleton cut is non-convex",
                spec.name
            );
        }
    }
}

/// The scaling gate's core invariant at tier-1 speed: sequential and
/// batched drivers agree byte-for-byte on the small tier (every thread
/// count) and the medium tier. The paper's AES is covered separately in
/// `batched_driver.rs`; the release-mode `scaling` binary extends the
/// check to the large/huge tiers in CI.
#[test]
fn batched_driver_is_identical_on_the_small_tier() {
    let model = LatencyModel::paper_default();
    let config = IseConfig::paper_default();
    let search = SearchConfig::default();
    for spec in workloads_in_tiers(&[SizeTier::Small]) {
        let app = spec.application();
        let sequential = Generator::new(config)
            .search(search.clone())
            .run(&app, &model);
        for threads in [1usize, 2, 4] {
            let batched = Generator::new(config)
                .search(search.clone())
                .threads(threads)
                .run(&app, &model);
            assert_eq!(
                batched, sequential,
                "{}: batched diverged at {threads} threads",
                spec.name
            );
        }
    }
}

#[test]
fn batched_driver_is_identical_on_the_medium_tier() {
    let model = LatencyModel::paper_default();
    let config = IseConfig::paper_default();
    let search = SearchConfig::default();
    for spec in workloads_in_tiers(&[SizeTier::Medium]) {
        if spec.name == "aes" {
            continue; // covered by batched_driver.rs at three thread counts
        }
        let app = spec.application();
        let sequential = Generator::new(config)
            .search(search.clone())
            .run(&app, &model);
        let batched = Generator::new(config)
            .search(search.clone())
            .threads(2)
            .run(&app, &model);
        assert_eq!(batched, sequential, "{}: batched diverged", spec.name);
    }
}
