//! Property tests of the K-L gain cache: after *arbitrary* toggle
//! sequences, the cached probe of every node — recombined from stored
//! local ΔI/ΔO/convexity/longest-path terms plus the engine's current
//! global counters — must be **identical** to a fresh
//! `ToggleEngine::probe`, on random DAGs and on the AES block. This is
//! the soundness proof of the dirty-set invalidation in
//! `ToggleEngine::toggle_and_mark`: a node left out of the dirty set is
//! a node whose probe provably did not change.

use isegen::core::{BlockContext, GainCache, GainWeights, IoConstraints, ToggleEngine};
use isegen::graph::NodeId;
use isegen::ir::LatencyModel;
use isegen::workloads::{aes, random_application, RandomWorkloadConfig};
use proptest::prelude::*;

/// Drives one engine/cache pair through `toggles`, requiring cached ≡
/// fresh probes (and therefore cached ≡ fresh gains) for every node
/// after every commit.
fn check_cache(block: &isegen::ir::BasicBlock, toggles: &[usize]) -> Result<(), TestCaseError> {
    let model = LatencyModel::paper_default();
    let ctx = BlockContext::new(block, &model);
    let nodes: Vec<NodeId> = block.dag().node_ids().collect();
    let weights = GainWeights::default();
    let io = IoConstraints::new(4, 2);
    let mut engine = ToggleEngine::new(&ctx);
    let mut cache = GainCache::new(ctx.node_count());
    // Warm the cache so later commits must *invalidate*, not just fill.
    for &u in &nodes {
        let _ = cache.probe(&engine, u);
    }
    for &t in toggles {
        let v = nodes[t % nodes.len()];
        cache.commit(&mut engine, v);
        for &u in &nodes {
            let cached = cache.probe(&engine, u);
            let fresh = engine.probe(u);
            prop_assert_eq!(
                cached,
                fresh,
                "cached probe diverged at node {} after toggling {}",
                u,
                v
            );
            // The scalar gains must agree bit-for-bit too (same combine).
            let g_fresh = weights.combine(&ctx, io, u, &fresh);
            let g_cached = weights.combine(&ctx, io, u, &cached);
            prop_assert_eq!(g_cached, g_fresh, "gain diverged at node {}", u);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random DAGs (n ≤ 64), arbitrary toggle sequences.
    #[test]
    fn cached_gains_equal_fresh_probes_on_random_dags(
        seed in any::<u64>(),
        ops in 6usize..48,
        toggles in proptest::collection::vec(any::<usize>(), 1..40),
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        check_cache(&app.blocks()[0], &toggles)?;
    }

    /// Memory barriers inside the walked neighbourhoods must not
    /// desynchronise any cached term.
    #[test]
    fn cached_gains_survive_memory_barriers(
        seed in any::<u64>(),
        ops in 6usize..40,
        memory_fraction in 0.0f64..0.5,
        toggles in proptest::collection::vec(any::<usize>(), 1..30),
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            memory_fraction,
            ..RandomWorkloadConfig::default()
        });
        check_cache(&app.blocks()[0], &toggles)?;
    }
}

/// The AES block — the paper's headline workload, large enough that the
/// dirty sets are a small fraction of the block. A fixed seeded toggle
/// walk keeps the test deterministic and bounded.
#[test]
fn cached_gains_equal_fresh_probes_on_aes() {
    let app = aes();
    let block = app
        .blocks()
        .iter()
        .max_by_key(|b| b.dag().node_count())
        .expect("aes has blocks");
    let n = block.dag().node_count();
    // xorshift walk over node indices: deterministic, hits enter+leave.
    let mut state = 0x9e3779b97f4a7c15u64;
    let toggles: Vec<usize> = (0..48)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % n as u64) as usize
        })
        .collect();
    check_cache(block, &toggles).expect("cache must match fresh probes on AES");
}
