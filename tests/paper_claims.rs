//! Direct checks of the paper's headline claims, kept cheap enough for
//! debug-build CI (the full figures live in `isegen-eval`'s binaries).

use isegen::eval::experiments;
use isegen::prelude::*;
use isegen::workloads::{paper_suite, workload_by_name};

/// §5 / Fig. 4 caption: the benchmarks' critical basic blocks have
/// exactly the node counts the paper reports.
#[test]
fn critical_block_sizes_match_the_paper() {
    let expected = [
        ("conven00", 6),
        ("fbital00", 20),
        ("viterb00", 23),
        ("autcor00", 25),
        ("adpcm_decoder", 82),
        ("adpcm_coder", 96),
        ("fft00", 104),
        ("aes", 696),
    ];
    for (name, nodes) in expected {
        let spec = workload_by_name(name).expect("workload exists");
        assert_eq!(spec.kernel_ops, nodes);
        let app = spec.application();
        assert_eq!(
            app.critical_block().expect("has blocks").operation_count(),
            nodes,
            "{name}"
        );
    }
}

/// Fig. 1: six instances of the reusable cluster cover more of the DFG
/// (and yield more speedup) than three instances of the largest cluster.
#[test]
fn figure1_reuse_beats_size() {
    let r = experiments::fig1::run();
    assert_eq!(r.largest.instances, 3);
    assert_eq!(r.reusable.instances, 6);
    assert!(r.reusable.covered_ops > r.largest.covered_ops);
    assert!(r.reusable.speedup > r.largest.speedup);
}

/// §4.1: five K-L passes suffice — every workload converges within the
/// paper's pass budget.
#[test]
fn five_passes_suffice() {
    let result = experiments::convergence::run(6);
    assert!(
        result.worst_convergence() <= 5,
        "some workload needed {} passes",
        result.worst_convergence()
    );
}

/// §2: every ISEGEN cut on every paper workload satisfies both
/// Problem-1 constraints (I/O and convexity) at the paper's (4,2)
/// setting. (The expansion corpus's large/huge tiers are covered by the
/// release-mode `scaling` gate and `tests/workloads_suite.rs` — a debug
/// K-L sweep over 2000-op blocks does not belong in a paper-claims
/// test.)
#[test]
fn problem1_constraints_always_hold() {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    for spec in paper_suite() {
        let app = spec.application();
        let block = app.critical_block().expect("has blocks");
        let ctx = BlockContext::new(block, &model);
        let cut = Search::default().run(&ctx, io).cut;
        assert!(!cut.is_empty(), "{}: no cut found", spec.name);
        assert!(cut.satisfies_io(io), "{}", spec.name);
        assert!(ctx.is_convex(cut.nodes()), "{}", spec.name);
        assert!(cut.merit() > 0.0, "{}", spec.name);
    }
}

/// §3/§4.2: ISEGEN is not restricted to connected subgraphs — on the
/// two-chain autcor00 kernel with loose output budget it produces (or at
/// least legally could produce) disconnected cuts, and such cuts are
/// accepted end to end.
#[test]
fn disconnected_cuts_are_first_class() {
    use isegen::graph::components::Components;
    let model = LatencyModel::paper_default();
    let spec = workload_by_name("autcor00").expect("exists");
    let app = spec.application();
    let block = app.critical_block().expect("has blocks");
    let ctx = BlockContext::new(block, &model);
    let cut = Search::default().run(&ctx, IoConstraints::new(8, 4)).cut;
    assert!(!cut.is_empty());
    let comps = Components::within(block.dag(), cut.nodes());
    // The kernel is two independent MAC chains; a loose budget admits
    // both. Whether the heuristic picks one or both, the result must be
    // valid; if it picked both, that's the disconnected case in action.
    assert!(comps.count() >= 1);
    assert!(ctx.is_convex(cut.nodes()));
    assert!(cut.satisfies_io(IoConstraints::new(8, 4)));
}
