//! The incremental-engine invariant auditor: with a nonzero audit
//! cadence, `run_trajectory` periodically rebuilds the ground truth
//! from scratch and cross-checks the [`ToggleEngine`]'s incidence
//! sets, the [`GainCache`]'s cached terms and the lazy queue's stamp
//! consistency — panicking with a structured report on divergence. On
//! healthy code it must therefore be a behavioral no-op: same cuts,
//! same merits, plus a nonzero `audit_checks` counter. And it must
//! actually *detect* corruption, which `corrupt_entry_for_test`
//! proves directly.

use isegen::core::{
    BlockContext, GainCache, IoConstraints, Search, SearchConfig, SelectionStrategy, ToggleEngine,
};
use isegen::graph::NodeId;
use isegen::ir::LatencyModel;
use isegen::workloads::{random_application, workload_by_name, RandomWorkloadConfig};
use proptest::prelude::*;

fn audited(strategy: SelectionStrategy, cadence: usize) -> SearchConfig {
    SearchConfig::new()
        .with_strategy(strategy)
        .with_audit_cadence(cadence)
}

/// `IsegenAudit` in the environment turns the auditor on for *default*
/// configurations too, so the zero-overhead assertions only hold
/// without it.
fn env_audit() -> bool {
    std::env::var_os("IsegenAudit").is_some()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The queue-parity random-DAG cases, re-run under audit cadence 2
    /// with both strategies: any divergence between the live
    /// incremental state and the from-scratch rebuild panics inside
    /// the search, so completing at all asserts zero divergences. The
    /// audited outcome must also match the unaudited one exactly.
    #[test]
    fn audit_is_silent_and_invisible_on_random_dags(
        seed in any::<u64>(),
        ops in 8usize..48,
        queue in any::<bool>(),
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        let block = &app.blocks()[0];
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(block, &model);
        let io = IoConstraints::new(4, 2);
        let strategy = if queue { SelectionStrategy::Queue } else { SelectionStrategy::Scan };

        let plain = Search::new(SearchConfig::new().with_strategy(strategy)).run(&ctx, io);
        let checked = Search::new(audited(strategy, 2)).run(&ctx, io);
        prop_assert_eq!(
            checked.cut.merit().to_bits(),
            plain.cut.merit().to_bits(),
            "audit changed the merit (seed {})",
            seed
        );
        prop_assert_eq!(checked.cut, plain.cut, "audit changed the cut (seed {})", seed);
        if !env_audit() {
            prop_assert_eq!(plain.stats.audit_checks, 0, "audit ran while disabled");
        }
        if checked.stats.commits > 1 {
            prop_assert!(
                checked.stats.audit_checks > 0,
                "cadence 2 never audited across {} commits",
                checked.stats.commits
            );
        }
    }
}

/// A real registry workload at cadence 1 — every commit cross-checked,
/// for both strategies (the queue path additionally audits heap-stamp
/// coverage).
#[test]
fn audit_every_commit_on_registry_workload() {
    let spec = workload_by_name("fir00").expect("fir00 in registry");
    let app = spec.application();
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    for strategy in [SelectionStrategy::Scan, SelectionStrategy::Queue] {
        for block in app.blocks() {
            let ctx = BlockContext::new(block, &model);
            let plain = Search::new(SearchConfig::new().with_strategy(strategy)).run(&ctx, io);
            let checked = Search::new(audited(strategy, 1)).run(&ctx, io);
            assert_eq!(
                checked.cut, plain.cut,
                "{strategy:?}: audit changed the cut"
            );
            assert_eq!(
                checked.stats.audit_checks, checked.stats.commits,
                "{strategy:?}: cadence 1 must audit every commit"
            );
        }
    }
}

/// The detector detects: a healthy engine+cache pair audits clean, and
/// a single deliberately corrupted cached term is reported.
#[test]
fn corrupted_cache_entry_is_detected() {
    let spec = workload_by_name("fir00").expect("fir00 in registry");
    let app = spec.application();
    let model = LatencyModel::paper_default();
    let block = app
        .blocks()
        .iter()
        .max_by_key(|b| b.dag().node_count())
        .expect("fir00 has blocks");
    let ctx = BlockContext::new(block, &model);
    let n = ctx.node_count();
    let mut engine = ToggleEngine::new(&ctx);
    let mut cache = GainCache::new(n);

    // Move a node into the cut, then probe everything clean.
    let first = ctx.eligible().iter().next().expect("an eligible node");
    cache.commit(&mut engine, first);
    for i in 0..n {
        let _ = cache.probe(&engine, NodeId::from_index(i));
    }

    // Healthy state: both auditors come back empty.
    assert_eq!(engine.audit_divergences(), Vec::<String>::new());
    assert_eq!(cache.audit_divergences(&engine), Vec::<String>::new());

    // One perturbed cached term must surface, named.
    let victim = NodeId::from_index((0..n).find(|&i| i != first.index()).expect("n > 1"));
    assert!(cache.corrupt_entry_for_test(victim), "victim must be clean");
    let divergences = cache.audit_divergences(&engine);
    assert!(
        divergences
            .iter()
            .any(|d| d.contains(&format!("n{}", victim.index())) && d.contains("di")),
        "corruption went undetected: {divergences:?}"
    );
}

/// Disabled is the default, and disabled means *zero* audit work — the
/// counter every perf-sensitive path is gated on.
#[test]
fn audit_disabled_by_default() {
    if env_audit() {
        return; // the environment opted the whole process in
    }
    let spec = workload_by_name("fir00").expect("fir00 in registry");
    let app = spec.application();
    let model = LatencyModel::paper_default();
    let ctx = BlockContext::new(&app.blocks()[0], &model);
    let outcome = Search::new(SearchConfig::default()).run(&ctx, IoConstraints::new(4, 2));
    assert_eq!(outcome.stats.audit_checks, 0);
}
