//! Cross-algorithm agreement: on blocks small enough for exhaustive
//! search, the heuristics must track the provable optimum — the paper's
//! central quality claim ("ISEGEN matches the solution quality of Exact,
//! Iterative and Genetic").

use isegen::baselines::{
    exact_single_cut, run_exact, run_iterative, ExactConfig, GeneticConfig, GeneticFinder,
};
use isegen::core::CutFinder;
use isegen::prelude::*;
use isegen::workloads::{mediabench_eembc_suite, random_application, RandomWorkloadConfig};

fn config(io: IoConstraints, n: usize) -> IseConfig {
    IseConfig {
        io,
        max_ises: n,
        reuse_matching: false,
    }
}

/// ISEGEN's single cut never exceeds the exact optimum (no reuse), and
/// reaches at least 85% of it on the small EEMBC benchmarks.
#[test]
fn isegen_tracks_the_single_cut_optimum() {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    for spec in mediabench_eembc_suite().into_iter().take(4) {
        let app = spec.application();
        let block = app.critical_block().expect("has blocks");
        let ctx = BlockContext::new(block, &model);
        let optimal = exact_single_cut(&ctx, io, &ExactConfig::default(), None)
            .expect("small blocks complete");
        let heuristic = Search::default().run(&ctx, io).cut;
        assert!(
            heuristic.merit() <= optimal.merit() + 1e-9,
            "{}: heuristic above optimum?!",
            spec.name
        );
        assert!(
            heuristic.merit() >= 0.85 * optimal.merit(),
            "{}: ISEGEN merit {} below 85% of optimum {}",
            spec.name,
            heuristic.merit(),
            optimal.merit()
        );
    }
}

/// The jointly-optimal multi-cut selection dominates the greedy iterative
/// one, which dominates nothing-found.
#[test]
fn exact_dominates_iterative() {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    for spec in mediabench_eembc_suite().into_iter().take(4) {
        let app = spec.application();
        let cfg = config(io, 4);
        let exact_cfg = ExactConfig::default();
        let joint = run_exact(&app, &model, &cfg, &exact_cfg).expect("small blocks complete");
        let greedy = run_iterative(&app, &model, &cfg, &exact_cfg).expect("small blocks complete");
        assert!(
            joint.saved_cycles >= greedy.saved_cycles,
            "{}: joint {} < greedy {}",
            spec.name,
            joint.saved_cycles,
            greedy.saved_cycles
        );
        let isegen = Generator::new(cfg).run(&app, &model);
        assert!(
            isegen.saved_cycles <= joint.saved_cycles,
            "{}: heuristic beat the joint optimum without reuse",
            spec.name
        );
    }
}

/// On random DFGs the genetic baseline and ISEGEN both stay legal and
/// within the optimum.
#[test]
fn heuristics_legal_on_random_dfgs() {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    for seed in [3u64, 17, 2024] {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: 18,
            ..RandomWorkloadConfig::default()
        });
        let block = &app.blocks()[0];
        let ctx = BlockContext::new(block, &model);
        let optimal = exact_single_cut(&ctx, io, &ExactConfig::default(), None)
            .expect("18-op blocks complete");

        let kl = Search::default().run(&ctx, io).cut;
        if !kl.is_empty() {
            assert!(ctx.is_convex(kl.nodes()), "seed {seed}: ISEGEN non-convex");
            assert!(kl.satisfies_io(io), "seed {seed}: ISEGEN violates io");
        }
        assert!(kl.merit() <= optimal.merit() + 1e-9);

        let mut ga = GeneticFinder::new(GeneticConfig {
            population: 32,
            generations: 60,
            seed,
            ..GeneticConfig::default()
        });
        let gcut = ga.find_cut(&ctx, io, None);
        if !gcut.is_empty() {
            assert!(ctx.is_convex(gcut.nodes()), "seed {seed}: GA non-convex");
            assert!(gcut.satisfies_io(io), "seed {seed}: GA violates io");
        }
        assert!(gcut.merit() <= optimal.merit() + 1e-9);
    }
}

/// The exhaustive baselines report failure (rather than wrong answers)
/// on AES-sized blocks — the paper's "optimal algorithms could not run".
#[test]
fn exhaustive_baselines_fail_gracefully_on_aes() {
    let model = LatencyModel::paper_default();
    let app = isegen::workloads::aes();
    let cfg = config(IoConstraints::new(4, 2), 1);
    let exact_cfg = ExactConfig {
        max_nodes: 120,
        ..ExactConfig::default()
    };
    assert!(run_exact(&app, &model, &cfg, &exact_cfg).is_err());
    assert!(run_iterative(&app, &model, &cfg, &exact_cfg).is_err());
}
