//! The portfolio-parallel [`Search`] must be **byte-identical** to
//! the sequential search at every thread count — intra-block
//! parallelism is a wall-clock optimisation, never a result change —
//! and the thread-budget split of the batched driver must preserve the
//! sequential driver's output exactly (modelled on
//! `tests/batched_driver.rs`).

use isegen::core::{
    BlockContext, GainWeights, Generator, IoConstraints, IseConfig, IsegenFinder, Search,
    SearchConfig,
};
use isegen::ir::LatencyModel;
use isegen::workloads::{aes, random_application, RandomWorkloadConfig};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn portfolio_parity_on_aes() {
    let app = aes();
    let block = app
        .blocks()
        .iter()
        .max_by_key(|b| b.dag().node_count())
        .expect("aes has blocks");
    let model = LatencyModel::paper_default();
    let ctx = BlockContext::new(block, &model);
    let io = IoConstraints::new(4, 2);
    let config = SearchConfig::default();
    let sequential = Search::new(config.clone()).run(&ctx, io).cut;
    assert!(!sequential.is_empty(), "AES must yield a cut");
    for threads in THREAD_COUNTS {
        let parallel = Search::new(config.clone())
            .threads(threads)
            .run(&ctx, io)
            .cut;
        assert_eq!(
            parallel, sequential,
            "portfolio diverged from sequential at {threads} threads on AES"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random DAGs, every thread count, with and without forbidden sets.
    #[test]
    fn portfolio_parity_on_random_dags(
        seed in any::<u64>(),
        ops in 8usize..80,
        forbid_stride in 0usize..4,
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        let block = &app.blocks()[0];
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(block, &model);
        let io = IoConstraints::new(4, 2);
        let config = SearchConfig::default();
        let forbidden = (forbid_stride > 0).then(|| {
            let mut f = isegen::graph::NodeSet::new(ctx.node_count());
            for (i, v) in ctx.eligible().iter().enumerate() {
                if i % (forbid_stride + 1) == 0 {
                    f.insert(v);
                }
            }
            f
        });
        let mut search = Search::new(config.clone());
        if let Some(f) = forbidden.as_ref() {
            search = search.forbidden(f);
        }
        let sequential = search.run(&ctx, io).cut;
        for threads in THREAD_COUNTS {
            let parallel = search.clone().threads(threads).run(&ctx, io).cut;
            prop_assert_eq!(
                &parallel,
                &sequential,
                "portfolio diverged at {} threads (seed {})",
                threads,
                seed
            );
        }
    }

    /// Hostile weights (NaN/∞) must not open a thread-count-dependent
    /// path through the merge: NaN merits lose to the incumbent in the
    /// same order at every thread count.
    #[test]
    fn portfolio_parity_under_hostile_weights(
        seed in any::<u64>(),
        ops in 8usize..40,
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        let block = &app.blocks()[0];
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(block, &model);
        let io = IoConstraints::new(4, 2);
        let config = SearchConfig::new().with_weights(GainWeights {
            merit: f64::NAN,
            io_penalty: f64::INFINITY,
            affinity: f64::NAN,
            growth: f64::NEG_INFINITY,
            independence: f64::NAN,
        });
        let sequential = Search::new(config.clone()).run(&ctx, io).cut;
        for threads in THREAD_COUNTS {
            let parallel = Search::new(config.clone()).threads(threads).run(&ctx, io).cut;
            prop_assert_eq!(&parallel, &sequential, "NaN-weight divergence at {} threads", threads);
        }
    }
}

#[test]
fn batched_driver_with_budget_split_matches_sequential() {
    // Multi-block application: the batched driver splits its budget
    // between waves and portfolios; output must not move.
    let model = LatencyModel::paper_default();
    let search = SearchConfig::default();
    for seed in [3u64, 77] {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 6,
            ops_per_block: 50,
            ..RandomWorkloadConfig::default()
        });
        let config = IseConfig::paper_default();
        let sequential = Generator::new(config)
            .finder(IsegenFinder::new(search.clone()))
            .run_sequential(&app, &model);
        for threads in THREAD_COUNTS {
            let batched = Generator::new(config)
                .search(search.clone())
                .threads(threads)
                .run(&app, &model);
            assert_eq!(
                batched, sequential,
                "seed {seed}: batched driver diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn single_block_app_gets_portfolio_budget() {
    // One block, many threads: the whole budget lands on the portfolio
    // (waves of length 1). Output identical, and the finder with an
    // explicit portfolio setting agrees too.
    let app = aes();
    let model = LatencyModel::paper_default();
    let config = IseConfig::paper_default();
    let search = SearchConfig::default();
    let sequential = Generator::new(config)
        .search(search.clone())
        .run(&app, &model);
    for threads in THREAD_COUNTS {
        let batched = Generator::new(config)
            .search(search.clone())
            .threads(threads)
            .run(&app, &model);
        assert_eq!(
            batched, sequential,
            "AES batched diverged at {threads} threads"
        );
        let portfolio = Generator::new(config)
            .finder(IsegenFinder::new(search.clone()).with_portfolio_threads(threads))
            .run(&app, &model);
        assert_eq!(
            portfolio, sequential,
            "AES portfolio finder diverged at {threads} portfolio threads"
        );
    }
}

#[test]
fn arena_pool_reuse_is_counted_and_results_unchanged() {
    // The acceptance assertion for "no per-trajectory allocation":
    // within one sequential bipartition, only the very first trajectory
    // builds arena buffers; every later trajectory reuses the pooled
    // SearchScratch. Across repeated searches on a warm finder the
    // arenas stay warm (reuses == trajectories).
    let app = aes();
    let block = app
        .blocks()
        .iter()
        .max_by_key(|b| b.dag().node_count())
        .expect("aes has blocks");
    let model = LatencyModel::paper_default();
    let ctx = BlockContext::new(block, &model);
    let io = IoConstraints::new(4, 2);
    let config = SearchConfig::default();

    let outcome = Search::new(config.clone()).run(&ctx, io);
    let (cut, stats) = (outcome.cut, outcome.stats);
    assert!(stats.trajectories >= 2, "portfolio must run: {stats:?}");
    assert_eq!(
        stats.arena_allocs, 1,
        "exactly one cold arena at threads=1: {stats:?}"
    );
    assert_eq!(
        stats.arena_reuses,
        stats.trajectories - 1,
        "every later trajectory must reuse the pooled scratch: {stats:?}"
    );

    // A warm pool carries across calls: second search allocates nothing.
    let mut pool = Vec::new();
    let profiled = Search::new(config.clone()).threads(1).profiled(true);
    let first = profiled.run_pooled(&ctx, io, &mut pool).cut;
    let warm = profiled.run_pooled(&ctx, io, &mut pool);
    let (second, stats2, reports) = (warm.cut, warm.stats, warm.reports);
    assert_eq!(first, cut);
    assert_eq!(second, cut);
    assert_eq!(
        stats2.arena_allocs, 0,
        "warm pool must not allocate: {stats2:?}"
    );
    assert_eq!(stats2.arena_reuses, stats2.trajectories);
    assert_eq!(reports.len() as u64, stats2.trajectories);
    assert!(reports.iter().any(|r| r.flavour == "base"));
    assert!(reports.iter().any(|r| r.flavour == "cohesive"));
    assert!(reports.iter().all(|r| r.wall_ms >= 0.0));
}

#[test]
fn finder_accumulates_stats_across_clones() {
    let app = aes();
    let model = LatencyModel::paper_default();
    let config = IseConfig::paper_default();
    let mut gen = Generator::new(config)
        .finder(IsegenFinder::new(SearchConfig::default()))
        .threads(4);
    let selection = gen.run(&app, &model);
    assert!(!selection.ises.is_empty());
    let stats = gen.finder_ref().accumulated_stats();
    assert!(
        stats.trajectories > 0 && stats.commits > 0,
        "worker clones must report into the shared accumulator: {stats:?}"
    );
}
