//! Multilevel (coarsen→K-L→uncoarsen) pipeline properties on random
//! DAGs and real workloads: the coarsen→project round-trip must
//! preserve convexity, exact software latency and the conservative
//! direction of the I/O and hardware summaries at every level; an
//! audited V-cycle must complete with zero invariant divergences; and
//! the pipeline must be deterministic across thread counts.

use isegen::core::{roundtrip_audit, MultilevelConfig};
use isegen::ir::LatencyModel;
use isegen::prelude::*;
use isegen::workloads::{random_application, workload_by_name, RandomWorkloadConfig};
use proptest::prelude::*;

/// A multilevel config with the coarsening threshold pulled down far
/// enough that test-sized blocks build a real hierarchy.
fn eager(min_coarse_ops: usize) -> MultilevelConfig {
    MultilevelConfig::new().with_min_coarse_ops(min_coarse_ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coarsen→project round-trip on random DAGs: every level's cut,
    /// projected down to the original block, stays convex, inside the
    /// free set, latency-exact and I/O-conservative. The knobs vary so
    /// shallow and deep hierarchies are both exercised.
    #[test]
    fn roundtrip_invariants_hold_on_random_dags(
        seed in any::<u64>(),
        ops in 24usize..96,
        min_coarse in 8usize..24,
        max_levels in 1usize..6,
        memory_fraction in 0.0f64..0.3,
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            memory_fraction,
            ..RandomWorkloadConfig::default()
        });
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&app.blocks()[0], &model);
        let ml = eager(min_coarse).with_max_levels(max_levels);
        let levels = roundtrip_audit(&ctx, &ml, IoConstraints::new(4, 2))
            .map_err(TestCaseError::fail)?;
        prop_assert!(levels <= max_levels.max(1));
    }

    /// A full multilevel search on random DAGs returns a legal cut and
    /// a structurally sane report: levels in coarsest-first order with
    /// weakly growing node counts, the finest level matching the block.
    #[test]
    fn multilevel_cuts_are_legal_on_random_dags(
        seed in any::<u64>(),
        ops in 48usize..128,
    ) {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 1,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&app.blocks()[0], &model);
        let io = IoConstraints::new(4, 2);
        let config = SearchConfig::default().with_multilevel(eager(16));
        let outcome = Search::new(config).run(&ctx, io);
        if !outcome.cut.is_empty() {
            prop_assert!(ctx.is_convex(outcome.cut.nodes()));
            prop_assert!(outcome.cut.satisfies_io(io));
        }
        let report = outcome.multilevel.expect("pipeline engaged above threshold");
        prop_assert!(!report.levels.is_empty());
        for pair in report.levels.windows(2) {
            prop_assert!(pair[0].nodes <= pair[1].nodes, "levels must be coarsest-first");
        }
        if !report.fell_back {
            let finest = report.levels.last().expect("non-empty");
            prop_assert_eq!(finest.nodes, ctx.node_count());
        }
    }
}

/// The invariant auditor runs at every level of the V-cycle: an audited
/// multilevel search must complete (the auditor panics on divergence),
/// count its checks, and return the same cut as the unaudited run.
#[test]
fn audited_vcycle_is_silent_and_counts_checks() {
    let app = workload_by_name("gsm_ltp")
        .expect("gsm_ltp in registry")
        .application();
    let block = app
        .blocks()
        .iter()
        .max_by_key(|b| b.dag().node_count())
        .expect("has blocks");
    let model = LatencyModel::paper_default();
    let ctx = BlockContext::new(block, &model);
    let io = IoConstraints::new(4, 2);
    let ml = eager(12);

    let plain = Search::new(SearchConfig::default().with_multilevel(ml)).run(&ctx, io);
    let audited = Search::new(
        SearchConfig::default()
            .with_multilevel(ml)
            .with_audit_cadence(2),
    )
    .run(&ctx, io);
    assert_eq!(plain.cut, audited.cut, "audit must not change the result");
    assert!(
        audited.stats.audit_checks > 0,
        "cadence 2 must actually audit"
    );
    assert!(
        audited.multilevel.expect("pipeline engaged").levels.len() > 1,
        "gsm_ltp above an eager threshold must build a real hierarchy"
    );
}

/// Thread-count independence end to end: same cut and same structural
/// per-level evidence (wall times excepted) at 1, 2 and 4 threads.
#[test]
fn multilevel_is_deterministic_across_thread_counts() {
    let app = workload_by_name("gsm_ltp")
        .expect("gsm_ltp in registry")
        .application();
    let block = app
        .blocks()
        .iter()
        .max_by_key(|b| b.dag().node_count())
        .expect("has blocks");
    let model = LatencyModel::paper_default();
    let ctx = BlockContext::new(block, &model);
    let io = IoConstraints::new(4, 2);
    let config = SearchConfig::default().with_multilevel(eager(12));

    let base = Search::new(config.clone()).run(&ctx, io);
    let base_report = base.multilevel.expect("pipeline engaged");
    for threads in [2usize, 4] {
        let other = Search::new(config.clone()).threads(threads).run(&ctx, io);
        assert_eq!(base.cut, other.cut, "cut diverged at {threads} threads");
        let report = other.multilevel.expect("pipeline engaged");
        assert_eq!(base_report.levels.len(), report.levels.len());
        for (a, b) in base_report.levels.iter().zip(report.levels.iter()) {
            assert_eq!(
                (a.nodes, a.free_ops, a.seed_ops, a.band_ops, a.refine_pops),
                (b.nodes, b.free_ops, b.seed_ops, b.band_ops, b.refine_pops),
                "level evidence diverged at {threads} threads"
            );
            assert!((a.merit - b.merit).abs() < 1e-12);
        }
    }
}
