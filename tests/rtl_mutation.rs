//! Mutation-testing the verifier itself: a differential harness that
//! can never fail is worthless, so this test injects deliberate
//! single-site corruptions into *emitted* Verilog text — swapped
//! operands, a wrong operator, truncated masks, a poisoned GF(2^8)
//! polynomial, rewired outputs, truncation — and asserts the three-way
//! oracle reports every one of them.
//!
//! The target block is purpose-built so each corruption lands on a
//! predictable emission site (see the expected snippets below); if the
//! emitter's textual idioms change, the `original must contain` asserts
//! fail first with a clear message.

use isegen::graph::NodeSet;
use isegen::ir::{BlockBuilder, Opcode};
use isegen::rtl::{emit_verilog, parse_module, verify_module, Netlist, VerifyConfig};

/// Enough vectors that every probabilistic mutation (e.g. the xtime
/// polynomial flip, visible only when the input's top bit is set) is
/// detected with probability ≥ 1 − 2⁻⁶⁴ at this fixed seed — and in
/// practice deterministically, since the stimulus is deterministic.
const CONFIG: VerifyConfig = VerifyConfig {
    vectors: 64,
    seed: 0x0bad_c0de,
};

/// A block whose emission exercises every mutation site: subtraction
/// (operand order matters), xor (operator identity), shift (the `[4:0]`
/// mask), sbox + xtime (function tables), negation (the `32'd0`
/// constant), with a single output wire to rewire.
fn target() -> (isegen::ir::BasicBlock, Netlist, String) {
    let mut b = BlockBuilder::new("mut");
    let x = b.input("x");
    let y = b.input("y");
    let d = b.op(Opcode::Sub, &[x, y]).unwrap();
    let m = b.op(Opcode::Xor, &[d, y]).unwrap();
    let s = b.op(Opcode::Shl, &[m, x]).unwrap();
    let sb = b.op(Opcode::SBox, &[s]).unwrap();
    let xt = b.op(Opcode::Xtime, &[sb]).unwrap();
    let n = b.op(Opcode::Neg, &[xt]).unwrap();
    let block = b.build().unwrap();
    let cut = NodeSet::from_ids(block.dag().node_count(), [d, m, s, sb, xt, n]);
    let netlist = Netlist::from_cut(&block, &cut).unwrap();
    let text = emit_verilog(&netlist, "mut_target").unwrap();
    (block, netlist, text)
}

/// Applies one textual mutation and asserts the harness catches it:
/// either the mutant fails to parse/simulate (also a detection), or it
/// runs and the report shows mismatches.
fn assert_detected(label: &str, find: &str, replace: &str) {
    let (block, netlist, original) = target();
    assert!(
        original.contains(find),
        "{label}: original must contain {find:?} for the mutation to land; \
         emitter idioms changed?"
    );
    let mutated = original.replacen(find, replace, 1);
    assert_ne!(mutated, original, "{label}: mutation must change the text");

    // The clean text passes — so any failure below is the mutation.
    let clean = parse_module(&original).unwrap();
    let clean_report = verify_module(&block, &netlist, &clean, &CONFIG).unwrap();
    assert!(
        clean_report.passed(),
        "{label}: clean emission must verify, got {:?}",
        clean_report.first_mismatches
    );

    match parse_module(&mutated) {
        Err(_) => {} // refusing to parse corrupted text is a detection
        Ok(module) => match verify_module(&block, &netlist, &module, &CONFIG) {
            Err(_) => {} // refusing to simulate is a detection too
            Ok(report) => {
                assert!(
                    !report.passed(),
                    "{label}: corruption {find:?} → {replace:?} went UNDETECTED \
                     over {} vectors",
                    CONFIG.vectors
                );
                assert!(
                    !report.first_mismatches.is_empty(),
                    "{label}: mismatches counted but none reported"
                );
            }
        },
    }
}

#[test]
fn swapped_operands_are_detected() {
    // Subtraction is not commutative: in0 - in1 ↛ in1 - in0.
    assert_detected("swapped-operands", "in0 - in1", "in1 - in0");
}

#[test]
fn wrong_operator_is_detected() {
    // The xor cell silently becoming an and-gate.
    assert_detected("wrong-operator", "n0 ^ in1", "n0 & in1");
}

#[test]
fn truncated_shift_mask_is_detected() {
    // Dropping shift-amount bits: a classic width bug.
    assert_detected("truncated-shift-mask", "in0[4:0]", "in0[2:0]");
}

#[test]
fn truncated_function_argument_mask_is_detected() {
    // Feeding the sbox a nibble instead of a byte.
    assert_detected("truncated-sbox-arg", "sbox(n2[7:0])", "sbox(n2[3:0])");
}

#[test]
fn poisoned_gf_polynomial_is_detected() {
    // xtime's AES reduction polynomial off by one bit. The bare
    // constant also appears as an sbox case label, so match the full
    // conditional to hit the polynomial itself.
    assert_detected("poisoned-polynomial", "? 8'h1b : 8'h00", "? 8'h1a : 8'h00");
}

#[test]
fn corrupted_constant_is_detected() {
    // Negation's zero constant drifting.
    assert_detected("corrupted-constant", "32'd0 - n4", "32'd1 - n4");
}

#[test]
fn corrupted_sbox_table_entry_is_detected() {
    // A single wrong case arm only shows up for the one byte that hits
    // it (~1/256 per random vector), so random stimulus is the wrong
    // tool here: delete the arm and drive its byte deterministically.
    let (block, netlist, original) = target();
    // Removing the 8'h20 arm reroutes that byte to the default (8'h00)
    // instead of S(0x20) = 0xb7.
    let find = "        8'h20: sbox = 8'hb7;\n";
    assert!(original.contains(find), "sbox arm changed?");
    let mutated = original.replacen(find, "", 1);
    let module = parse_module(&mutated).unwrap();
    // With ports (0x20, 0): n0 = 0x20 - 0, n1 = n0 ^ 0 = 0x20, the
    // shift amount in0[4:0] = 0x20 & 0x1f = 0, so n2 = 0x20 and the
    // sbox sees exactly 0x20 — the deleted arm.
    let ports = [0x20u32, 0u32];
    let golden = netlist.evaluate(&ports).unwrap();
    let simulated = module.evaluate(&ports).unwrap();
    assert_ne!(
        golden, simulated,
        "removing an sbox arm must change the datapath for its byte"
    );
    // And the generic harness still passes the clean text.
    let clean = parse_module(&original).unwrap();
    assert!(verify_module(&block, &netlist, &clean, &CONFIG)
        .unwrap()
        .passed());
}

#[test]
fn rewired_output_is_detected() {
    // The output port driven by the wrong cell.
    assert_detected("rewired-output", "assign out0 = n5;", "assign out0 = n3;");
}

#[test]
fn truncated_file_is_detected() {
    let (_block, _netlist, original) = target();
    // Cut the tail off: the module loses its output assign and
    // endmodule. Parsing must fail — and that refusal is the detection.
    let cut_at = original.find("assign out0").unwrap();
    assert!(parse_module(&original[..cut_at]).is_err());
}
