//! The batched multi-block driver must be **byte-identical** to the
//! sequential Problem-2 driver on real workloads, at every thread
//! count — parallelism is a wall-clock optimisation, never a result
//! change.

use isegen::core::{Generator, IseConfig, IsegenFinder, SearchConfig};
use isegen::ir::LatencyModel;
use isegen::workloads::{aes, random_application, RandomWorkloadConfig};

#[test]
fn batched_equals_sequential_on_aes() {
    let app = aes();
    let model = LatencyModel::paper_default();
    let config = IseConfig::paper_default();
    let search = SearchConfig::default();
    let sequential = Generator::new(config)
        .search(search.clone())
        .run(&app, &model);
    for threads in [1usize, 2, 4] {
        let batched = Generator::new(config)
            .search(search.clone())
            .threads(threads)
            .run(&app, &model);
        assert_eq!(
            batched, sequential,
            "AES selection diverged at {threads} threads"
        );
    }
}

#[test]
fn batched_equals_sequential_on_random_multiblock() {
    let model = LatencyModel::paper_default();
    let search = SearchConfig::default();
    for seed in [1u64, 42, 2026] {
        let app = random_application(&RandomWorkloadConfig {
            seed,
            blocks: 8,
            ops_per_block: 60,
            ..RandomWorkloadConfig::default()
        });
        for reuse in [false, true] {
            let config = IseConfig {
                reuse_matching: reuse,
                ..IseConfig::paper_default()
            };
            let finder = IsegenFinder::new(search.clone());
            let sequential = Generator::new(config)
                .finder(finder.clone())
                .run_sequential(&app, &model);
            let batched = Generator::new(config)
                .finder(finder)
                .threads(4)
                .run(&app, &model);
            assert_eq!(
                batched, sequential,
                "seed {seed} reuse {reuse}: batched diverged"
            );
        }
    }
}
