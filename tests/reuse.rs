//! Integration tests of the recurrence machinery on the structured
//! workloads: matched instances are disjoint, isomorphic and valid.

use isegen::matching::{find_disjoint_instances, Pattern};
use isegen::prelude::*;
use isegen::workloads::{aes, autcor00, fbital00, fft00};

/// fbital00 is four identical carrier updates: the `sub → sar → max`
/// water-filling prefix of one carrier recurs in all four.
#[test]
fn fbital_carrier_clusters_recur_four_times() {
    use isegen::graph::NodeSet;
    let app = fbital00();
    let block = app.critical_block().expect("has blocks");
    // pick the first carrier's sub/sar/max chain by opcode
    let dag = block.dag();
    let sub = dag
        .node_ids()
        .find(|&v| block.opcode(v) == Opcode::Sub)
        .expect("carrier sub exists");
    let sar = dag.succs(sub)[0];
    assert_eq!(block.opcode(sar), Opcode::Sar);
    let max = dag.succs(sar)[0];
    assert_eq!(block.opcode(max), Opcode::Max);
    let cut = NodeSet::from_ids(dag.node_count(), [sub, sar, max]);
    let pattern = Pattern::extract(block, &cut);
    let instances = find_disjoint_instances(block, &pattern, None);
    assert_eq!(
        instances.len(),
        4,
        "expected the 4 carrier clusters, found {}",
        instances.len()
    );
}

/// fft00 has ten isomorphic butterflies.
#[test]
fn fft_butterflies_recur_ten_times() {
    let model = LatencyModel::paper_default();
    let app = fft00();
    let block = app.critical_block().expect("has blocks");
    let ctx = BlockContext::new(block, &model);
    // one complex-multiply fragment under (4,2)
    let cut = Search::default().run(&ctx, IoConstraints::new(4, 2)).cut;
    assert!(!cut.is_empty());
    let pattern = Pattern::extract(block, cut.nodes());
    let instances = find_disjoint_instances(block, &pattern, None);
    assert!(
        instances.len() >= 10,
        "expected >= 10 butterfly fragments, found {}",
        instances.len()
    );
    for i in 0..instances.len() {
        assert!(ctx.is_convex(&instances[i]), "instance {i} non-convex");
        for j in (i + 1)..instances.len() {
            assert!(instances[i].is_disjoint(&instances[j]));
        }
    }
}

/// autcor00's two MAC chains admit a disconnected cut whose halves the
/// matcher can still pair up elsewhere.
#[test]
fn autcor_disconnected_cut_supported() {
    let model = LatencyModel::paper_default();
    let app = autcor00();
    let block = app.critical_block().expect("has blocks");
    let ctx = BlockContext::new(block, &model);
    // (8,4) is loose enough for a two-chain (disconnected) cut
    let cut = Search::default().run(&ctx, IoConstraints::new(8, 4)).cut;
    assert!(!cut.is_empty());
    assert!(ctx.is_convex(cut.nodes()));
    // whatever the shape, pattern extraction + self-match must find it
    let pattern = Pattern::extract(block, cut.nodes());
    let instances = find_disjoint_instances(block, &pattern, None);
    assert!(!instances.is_empty());
    assert!(instances.iter().any(|i| i == cut.nodes()));
}

/// AES end-to-end: with one AFU and reuse, ISEGEN must cover dozens of
/// sites; the signature of every instance equals the pattern's.
#[test]
fn aes_single_afu_covers_many_sites() {
    let model = LatencyModel::paper_default();
    let app = aes();
    let config = IseConfig {
        io: IoConstraints::new(4, 2),
        max_ises: 1,
        reuse_matching: true,
    };
    let sel = Generator::new(config).run(&app, &model);
    assert_eq!(sel.ises.len(), 1);
    let ise = &sel.ises[0];
    assert!(
        ise.instances.len() >= 8,
        "AES regularity should yield many instances, got {}",
        ise.instances.len()
    );
    let block = &app.blocks()[ise.block_index];
    let reference = Pattern::extract(block, ise.cut.nodes()).signature();
    for inst in &ise.instances {
        let sig = Pattern::extract(&app.blocks()[inst.block_index], &inst.nodes).signature();
        assert_eq!(sig, reference, "instance is not isomorphic to its ISE");
    }
    assert!(sel.speedup() > 1.2, "speedup {}", sel.speedup());
}
