//! **isegen** — generation of high-quality instruction set extensions by
//! iterative improvement.
//!
//! A from-scratch Rust reproduction of *"ISEGEN: Generation of
//! High-Quality Instruction Set Extensions by Iterative Improvement"*
//! (Biswas, Banerjee, Dutt, Pozzi, Ienne — DATE 2005). This facade crate
//! re-exports the whole workspace:
//!
//! * [`graph`] — DAG substrate: bitsets, reachability, convexity,
//!   critical paths.
//! * [`ir`] — instruction-level IR: opcodes, basic blocks, latency model.
//! * [`core`] — the ISEGEN algorithm: gain function, incremental toggle
//!   engine, Kernighan–Lin bi-partition, whole-application driver.
//! * [`matching`] — labelled subgraph isomorphism for ISE reuse.
//! * [`baselines`] — exact, iterative-exact and genetic comparison
//!   algorithms.
//! * [`workloads`] — the paper's benchmark suite (EEMBC, MediaBench,
//!   AES) as deterministic DFG builders.
//! * [`eval`] — experiment harness regenerating every figure.
//! * [`rtl`] — AFU datapath generation: netlists, synthesizable Verilog,
//!   area estimates, golden-model simulation (the paper's future work).
//! * [`serve`] — `ised`, the long-lived service front-end: text IR in,
//!   selections and Verilog out, with per-block context caching.
//! * [`analysis`] — static analysis: the IR lint registry (`A001`..)
//!   and the hostile-input [`BlockView`](analysis::BlockView) substrate.
//!
//! # Quickstart
//!
//! ```
//! use isegen::prelude::*;
//!
//! # fn main() -> Result<(), isegen::ir::BuildError> {
//! // Describe a kernel's data flow ...
//! let mut b = BlockBuilder::new("saxpy").frequency(10_000);
//! let (a, x, y) = (b.input("a"), b.input("x"), b.input("y"));
//! let p = b.op(Opcode::Mul, &[a, x])?;
//! b.op(Opcode::Add, &[p, y])?;
//! let mut app = Application::new("demo");
//! app.push_block(b.build()?);
//!
//! // ... and let ISEGEN pick the custom instructions.
//! let model = LatencyModel::paper_default();
//! let config = IseConfig {
//!     io: IoConstraints::new(4, 2),
//!     max_ises: 1,
//!     reuse_matching: true,
//! };
//! let selection = Generator::new(config).run(&app, &model);
//! assert!(selection.speedup() > 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use isegen_analysis as analysis;
pub use isegen_baselines as baselines;
pub use isegen_core as core;
pub use isegen_eval as eval;
pub use isegen_graph as graph;
pub use isegen_ir as ir;
pub use isegen_match as matching;
pub use isegen_rtl as rtl;
pub use isegen_serve as serve;
pub use isegen_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use isegen_core::{
        BlockContext, Cut, CutFinder, GainWeights, Generator, IoConstraints, IseConfig,
        IseSelection, Search, SearchConfig, SearchOutcome, SelectionStrategy,
    };
    pub use isegen_ir::{Application, BasicBlock, BlockBuilder, LatencyModel, Opcode};
    pub use isegen_match::{find_disjoint_instances, Pattern};
}
