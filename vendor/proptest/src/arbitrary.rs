//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// Only the types the workspace's `any::<T>()` call sites name; extend
// in lockstep with new call sites rather than speculatively.
macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u64, usize);

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
