//! Offline vendored shim for the subset of the `proptest` API used by this
//! workspace.
//!
//! The build container has no crates.io access, so the real `proptest`
//! cannot be fetched. This shim keeps the call-site surface the tests use —
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, [`arbitrary::any`], [`strategy::Just`], integer-range
//! and tuple strategies, [`collection::vec`], `prop_assert*!` and
//! [`prop_assume!`] — backed by a deterministic seeded generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case seed; re-running is
//!   fully deterministic, so the failure reproduces exactly.
//! * **Deterministic seeds.** Case `i` of test `t` always uses the same
//!   seed (FNV-1a of the test name mixed with `i`), so CI results are
//!   reproducible without a persistence file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over `cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                stringify!($name),
                &($cfg),
                |__proptest_rng| {
                    let ($($pat),+) =
                        $crate::strategy::Strategy::generate(&($($strat),+), __proptest_rng);
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (without panicking the generator loop directly)
/// when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// [`prop_assert!`] for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__pa_lhs, __pa_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__pa_lhs == *__pa_rhs,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __pa_lhs,
            __pa_rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__pa_lhs, __pa_rhs) = (&$lhs, &$rhs);
        let __pa_msg = format!($($fmt)+);
        $crate::prop_assert!(
            *__pa_lhs == *__pa_rhs,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __pa_lhs,
            __pa_rhs,
            __pa_msg
        );
    }};
}

/// [`prop_assert!`] for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__pa_lhs, __pa_rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__pa_lhs != *__pa_rhs,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __pa_lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__pa_lhs, __pa_rhs) = (&$lhs, &$rhs);
        let __pa_msg = format!($($fmt)+);
        $crate::prop_assert!(
            *__pa_lhs != *__pa_rhs,
            "assertion failed: `left != right`\n  both: `{:?}`\n{}",
            __pa_lhs,
            __pa_msg
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
