//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking and no `ValueTree`; a
/// strategy is simply a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u64, usize, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A B);
impl_tuple_strategy!(A B C);
impl_tuple_strategy!(A B C D);
impl_tuple_strategy!(A B C D E);
impl_tuple_strategy!(A B C D E F);
