//! Case execution: configuration, the per-case RNG and the runner loop.

use rand::{RngCore, SeedableRng, StdRng};

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is not counted.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: generates cases until `cfg.cases` pass,
/// panicking on the first failure with a reproducible case seed.
pub fn run_proptest<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut attempt: u64 = 0;
    while passed < cfg.cases {
        let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        attempt += 1;
        let mut rng = TestRng::seed(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                let cap = u64::from(cfg.cases) * 256 + 1024;
                assert!(
                    rejected <= cap,
                    "proptest `{name}`: too many prop_assume! rejections ({rejected}) \
                     for {} target cases",
                    cfg.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {passed} (case seed {seed:#x}):\n{msg}")
            }
        }
    }
}
