//! Case execution: configuration, the per-case RNG and the runner loop.

use rand::{RngCore, SeedableRng, StdRng};

/// Runner configuration. Only `cases` is honoured by the shim.
///
/// The `PROPTEST_CASES` environment variable, when set to a positive
/// integer, overrides `cases` for every property test — including those
/// that pass an explicit `with_cases` — so CI can pin one deterministic
/// case budget across the whole workspace. (Upstream proptest only
/// folds the variable into the *default* config; the shim gives the
/// environment the last word because reproducible CI runtimes are what
/// the knob exists for here.)
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required to pass.
    pub cases: u32,
}

/// The `PROPTEST_CASES` override, if set and parseable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it is not counted.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property test: generates cases until `cfg.cases` pass
/// (or `PROPTEST_CASES` cases when the environment override is set),
/// panicking on the first failure with a reproducible case seed.
pub fn run_proptest<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let cases = env_cases().unwrap_or(cfg.cases);
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut attempt: u64 = 0;
    while passed < cases {
        let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        attempt += 1;
        let mut rng = TestRng::seed(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                let cap = u64::from(cases) * 256 + 1024;
                assert!(
                    rejected <= cap,
                    "proptest `{name}`: too many prop_assume! rejections ({rejected}) \
                     for {cases} target cases"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {passed} (case seed {seed:#x}):\n{msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The only test in this crate touching the process environment, so
    // no cross-test race on the variable.
    #[test]
    fn env_var_overrides_configured_cases() {
        std::env::set_var("PROPTEST_CASES", "7");
        let mut ran = 0u32;
        run_proptest("env_override", &ProptestConfig::with_cases(64), |_| {
            ran += 1;
            Ok(())
        });
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ran, 7, "PROPTEST_CASES must win over with_cases");

        let mut ran = 0u32;
        run_proptest("no_env", &ProptestConfig::with_cases(5), |_| {
            ran += 1;
            Ok(())
        });
        assert_eq!(ran, 5, "configured cases apply without the override");
    }
}
