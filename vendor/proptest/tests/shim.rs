//! Self-tests of the proptest shim: the macro surface compiles, values
//! respect their strategies, rejection works, and — critically — failing
//! properties actually fail (no vacuous green).

use proptest::collection;
use proptest::prelude::*;
use proptest::test_runner::{run_proptest, ProptestConfig, TestCaseError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranges_stay_in_bounds(a in 3usize..9, b in 10u64..=20) {
        prop_assert!((3..9).contains(&a));
        prop_assert!((10..=20).contains(&b));
    }

    #[test]
    fn vec_lengths_respect_size_range(v in collection::vec(any::<bool>(), 2..7)) {
        prop_assert!((2..7).contains(&v.len()));
    }

    #[test]
    fn flat_map_sees_inner_value((n, v) in (1usize..5).prop_flat_map(|n| {
        (Just(n), collection::vec(any::<u64>(), n))
    })) {
        prop_assert_eq!(v.len(), n);
    }

    #[test]
    fn prop_map_applies(doubled in (0usize..50).prop_map(|x| x * 2)) {
        prop_assert!(doubled % 2 == 0);
        prop_assert!(doubled < 100);
        prop_assert_ne!(doubled, 99);
    }

    #[test]
    fn assume_rejects_without_failing(n in 0usize..100) {
        prop_assume!(n % 2 == 0);
        prop_assert!(n % 2 == 0);
    }
}

#[test]
fn failing_property_panics_with_seed() {
    let result = std::panic::catch_unwind(|| {
        run_proptest(
            "always_fails",
            &ProptestConfig::with_cases(8),
            |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::fail("intentional failure")) },
        );
    });
    let err = result.expect_err("failing property must panic");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload is a String");
    assert!(msg.contains("intentional failure"), "lost message: {msg}");
    assert!(msg.contains("case seed"), "lost repro seed: {msg}");
}

#[test]
fn over_rejection_panics() {
    let result = std::panic::catch_unwind(|| {
        run_proptest(
            "always_rejects",
            &ProptestConfig::with_cases(4),
            |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::reject("never holds")) },
        );
    });
    assert!(result.is_err(), "unbounded rejection must abort");
}

#[test]
fn cases_are_deterministic_across_runs() {
    let collect = || {
        let mut seen = Vec::new();
        run_proptest(
            "determinism_probe",
            &ProptestConfig::with_cases(16),
            |rng| {
                seen.push(Strategy::generate(&(0u64..1_000_000), rng));
                Ok(())
            },
        );
        seen
    };
    assert_eq!(collect(), collect());
}
