//! Offline vendored shim for the subset of the `rand` 0.8 API used by this
//! workspace: [`Rng::gen_range`] / [`Rng::gen_bool`] over a seedable
//! [`rngs::StdRng`].
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` cannot be fetched. This shim keeps the same call-site syntax
//! (`use rand::{Rng, SeedableRng}; StdRng::seed_from_u64(..)`) backed by a
//! xoshiro256++ generator. Streams are deterministic per seed but do **not**
//! bit-match the real `StdRng`; everything in-tree treats seeds as opaque,
//! so only determinism matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

// Only the integer types the workspace actually samples (the shims
// extend in lockstep with call sites; see ROADMAP). Width and offset
// arithmetic runs in i128 so ranges wider than the type's own MAX
// (e.g. `i32::MIN..i32::MAX`) neither overflow nor bias.
macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u64, usize, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform draw in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_u128(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
    loop {
        let draw = u128::from(rng.next_u64());
        if draw < zone {
            return draw % span;
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn gen_range_survives_full_width_signed_range() {
        // A span wider than i32::MAX must not overflow the span or the
        // offset arithmetic (regression: the span was once computed in
        // the sampled type itself).
        let mut rng = StdRng::seed_from_u64(11);
        let (mut saw_neg, mut saw_pos) = (false, false);
        for _ in 0..200 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            saw_neg |= v < 0;
            saw_pos |= v > 0;
        }
        assert!(saw_neg && saw_pos, "full-width draws look truncated");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "suspicious bias: {hits}");
    }
}
