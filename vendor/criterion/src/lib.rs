//! Offline vendored shim for the subset of the `criterion` API used by the
//! workspace's bench targets.
//!
//! The build container has no crates.io access. This shim keeps the
//! call-site surface (`criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`black_box`]) and implements an honest, minimal timing loop: each
//! benchmark is warmed up once, then timed over a bounded number of
//! iterations, and the mean per-iteration wall time is printed. There is no
//! statistical analysis, outlier rejection or HTML report — the point is
//! that `cargo bench` runs and prints comparable numbers, cheaply.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many iterations a benchmark is timed for (bounded so `cargo bench`
/// on the full paper suite stays interactive).
const MAX_TIMED_ITERS: u64 = 20;
/// Target wall time per benchmark before the iteration cap kicks in.
const TARGET_TIME: Duration = Duration::from_millis(500);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    #[allow(dead_code)]
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// iteration budget is fixed).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares group throughput (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Builds an identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Throughput declaration (accepted and ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, accumulating per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed) iteration.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= MAX_TIMED_ITERS || start.elapsed() >= TARGET_TIME {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total / u32::try_from(b.iters).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!("bench: {label:<60} {mean:>12.3?}/iter ({} iters)", b.iters);
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
