//! The lint pass registry (A001..A011).
//!
//! Every pass runs over a raw [`BlockView`] and must survive arbitrary
//! garbage: out-of-range operand indices, forward references, cycles,
//! mismatched arities. A pass that assumes a well-formed block is a bug
//! — `tests/analysis_lint.rs` drives the registry with mutated and
//! hand-built hostile views to enforce that.

use crate::{BlockView, Diagnostic, LintOptions, Severity};
use isegen_ir::text::MAX_FREQUENCY;
use isegen_ir::Opcode;
use std::collections::HashMap;

/// A single lint rule.
///
/// Implementations push zero or more [`Diagnostic`]s per block; they
/// must never panic, whatever the view contains.
pub trait Pass {
    /// Stable diagnostic code (`A001`..).
    fn code(&self) -> &'static str;
    /// Default severity of this rule's findings.
    fn severity(&self) -> Severity;
    /// One-line description for docs and reports.
    fn summary(&self) -> &'static str;
    /// Runs the rule over one block.
    fn run(&self, view: &BlockView, opts: &LintOptions, out: &mut Vec<Diagnostic>);
}

/// The full pass registry, in code order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(DeadNode),
        Box::new(UnusedInput),
        Box::new(DuplicateOp),
        Box::new(FoldableOp),
        Box::new(CombinationalCycle),
        Box::new(RankInconsistency),
        Box::new(IoInfeasible),
        Box::new(InvalidLatency),
        Box::new(UnprofitableLatency),
        Box::new(SuspiciousFrequency),
        Box::new(DuplicateInputLabel),
    ]
}

fn diag(pass: &dyn Pass, view: &BlockView, node: Option<usize>, message: String) -> Diagnostic {
    Diagnostic {
        code: pass.code(),
        severity: pass.severity(),
        block: view.name().to_string(),
        node,
        line: node.and_then(|n| view.line_of(n)).or(view.header_line()),
        message,
    }
}

/// Opcodes whose first two operands commute (used to normalize operand
/// lists before structural comparison).
fn is_commutative(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Add
            | Opcode::Mul
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Eq
            | Opcode::Min
            | Opcode::Max
    )
}

// ---------------------------------------------------------------------
// A001 — dead node
// ---------------------------------------------------------------------

/// A001: a non-input node from which no live-out value or store is
/// reachable — the search would happily include it, but its result can
/// never be observed.
struct DeadNode;

impl Pass for DeadNode {
    fn code(&self) -> &'static str {
        "A001"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "dead node: no live-out or store is reachable"
    }
    fn run(&self, view: &BlockView, _opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let n = view.len();
        // useful = live-out or side-effecting, closed backwards over
        // operand edges. A worklist (not a single reverse sweep)
        // because hostile views may contain forward references.
        let mut useful = vec![false; n];
        for (i, u) in useful.iter_mut().enumerate() {
            if view.is_live_out(i) || view.opcode(i) == Some(Opcode::Store) {
                *u = true;
            }
        }
        let mut work: Vec<usize> = (0..n).filter(|&i| useful[i]).collect();
        while let Some(i) = work.pop() {
            for &p in view.preds(i) {
                if p < n && !useful[p] {
                    useful[p] = true;
                    work.push(p);
                }
            }
        }
        for (i, &u) in useful.iter().enumerate() {
            if !u && view.opcode(i).is_some_and(|op| !op.is_input()) {
                out.push(diag(
                    self,
                    view,
                    Some(i),
                    format!(
                        "dead node: no live-out or store is reachable from n{i} ({})",
                        view.opcode(i).map_or("?", |op| op.mnemonic())
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// A002 — unused input
// ---------------------------------------------------------------------

/// A002: an input that no operation consumes and that is not live-out.
struct UnusedInput;

impl Pass for UnusedInput {
    fn code(&self) -> &'static str {
        "A002"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "unused input: no consumer and not live-out"
    }
    fn run(&self, view: &BlockView, _opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let n = view.len();
        let mut referenced = vec![false; n];
        for i in 0..n {
            for &p in view.preds(i) {
                if p < n {
                    referenced[p] = true;
                }
            }
        }
        for (i, &referenced) in referenced.iter().enumerate() {
            if view.opcode(i) == Some(Opcode::Input) && !referenced && !view.is_live_out(i) {
                let label = view.label(i).map_or(String::new(), |l| format!(" ({l:?})"));
                out.push(diag(
                    self,
                    view,
                    Some(i),
                    format!("unused input: n{i}{label} has no consumer and is not live-out"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// A003 — duplicate structurally-identical operation
// ---------------------------------------------------------------------

/// A003: two operations with the same opcode, label and (commutatively
/// normalized) operand list — one of them is redundant work the AFU
/// would duplicate in silicon.
struct DuplicateOp;

impl Pass for DuplicateOp {
    fn code(&self) -> &'static str {
        "A003"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "duplicate structurally-identical operation"
    }
    fn run(&self, view: &BlockView, _opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let mut seen: HashMap<(Opcode, Vec<usize>, Option<String>), usize> = HashMap::new();
        for i in 0..view.len() {
            let Some(op) = view.opcode(i) else { continue };
            if op.is_input() {
                continue; // duplicate inputs are A011's business
            }
            let mut preds = view.preds(i).to_vec();
            if is_commutative(op) {
                preds.sort_unstable();
            }
            let key = (op, preds, view.label(i).map(str::to_string));
            match seen.entry(key) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    let j = *first.get();
                    out.push(diag(
                        self,
                        view,
                        Some(i),
                        format!(
                            "duplicate operation: n{i} ({}) is structurally identical to n{j}",
                            op.mnemonic()
                        ),
                    ));
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// A004 — algebraically foldable operation
// ---------------------------------------------------------------------

/// A004: an operation whose result is a constant or a copy of its
/// operand (`x^x`, `x-x`, `x&x`, `min(x,x)`, `not(not(x))`, …) — a
/// constant-foldable subgraph the front-end should have simplified.
struct FoldableOp;

impl Pass for FoldableOp {
    fn code(&self) -> &'static str {
        "A004"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "algebraically foldable operation"
    }
    fn run(&self, view: &BlockView, _opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        for i in 0..view.len() {
            let Some(op) = view.opcode(i) else { continue };
            let preds = view.preds(i);
            let same_binary = preds.len() == 2 && preds[0] == preds[1];
            let reason = match op {
                Opcode::Sub | Opcode::Xor if same_binary => {
                    Some(format!("{}(x, x) is always zero", op.mnemonic()))
                }
                Opcode::And | Opcode::Or | Opcode::Min | Opcode::Max if same_binary => {
                    Some(format!("{}(x, x) is just x", op.mnemonic()))
                }
                Opcode::Eq if same_binary => Some("eq(x, x) is always true".to_string()),
                Opcode::Not | Opcode::Neg
                    if preds.len() == 1 && view.opcode(preds[0]) == Some(op) =>
                {
                    Some(format!("{0}({0}(x)) cancels out", op.mnemonic()))
                }
                Opcode::Abs if preds.len() == 1 && view.opcode(preds[0]) == Some(op) => {
                    Some("abs(abs(x)) is abs(x)".to_string())
                }
                _ => None,
            };
            if let Some(reason) = reason {
                out.push(diag(
                    self,
                    view,
                    Some(i),
                    format!("foldable operation: {reason}"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// A005 — combinational cycle
// ---------------------------------------------------------------------

/// A005: the operand edges contain a cycle. The whole toolchain — rank
/// orders, reachability closures, the toggle engine's hull propagation
/// — assumes a DAG; a cyclic block must be rejected before any of it
/// runs.
struct CombinationalCycle;

impl Pass for CombinationalCycle {
    fn code(&self) -> &'static str {
        "A005"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "combinational cycle"
    }
    fn run(&self, view: &BlockView, _opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let n = view.len();
        // Iterative 3-color DFS over operand edges (in-range only).
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; n];
        let mut on_cycle = vec![false; n];
        for root in 0..n {
            if color[root] != WHITE {
                continue;
            }
            // Stack of (node, next-pred-index).
            let mut stack = vec![(root, 0usize)];
            color[root] = GRAY;
            while let Some(&(v, next)) = stack.last() {
                let preds = view.preds(v);
                if next >= preds.len() {
                    color[v] = BLACK;
                    stack.pop();
                    continue;
                }
                if let Some(top) = stack.last_mut() {
                    top.1 += 1;
                }
                let p = preds[next];
                if p >= n {
                    continue; // out-of-range: A006's finding
                }
                match color[p] {
                    WHITE => {
                        color[p] = GRAY;
                        stack.push((p, 0));
                    }
                    GRAY => on_cycle[p] = true, // back edge
                    _ => {}
                }
            }
        }
        for (i, &cyc) in on_cycle.iter().enumerate() {
            if cyc {
                out.push(diag(
                    self,
                    view,
                    Some(i),
                    format!("combinational cycle through n{i}"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// A006 — rank inconsistency
// ---------------------------------------------------------------------

/// A006: an operand reference that breaks the definition-before-use
/// rank order (out of range, forward, or self), or an operand count
/// that does not match the opcode's arity.
struct RankInconsistency;

impl Pass for RankInconsistency {
    fn code(&self) -> &'static str {
        "A006"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "rank inconsistency: out-of-range/forward operand or arity mismatch"
    }
    fn run(&self, view: &BlockView, _opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let n = view.len();
        for i in 0..n {
            let Some(op) = view.opcode(i) else { continue };
            let preds = view.preds(i);
            if preds.len() != op.arity() {
                out.push(diag(
                    self,
                    view,
                    Some(i),
                    format!(
                        "arity mismatch: {} takes {} operand(s), n{i} has {}",
                        op.mnemonic(),
                        op.arity(),
                        preds.len()
                    ),
                ));
            }
            for &p in preds {
                if p >= n {
                    out.push(diag(
                        self,
                        view,
                        Some(i),
                        format!(
                            "operand reference out of range: n{i} uses n{p} (block has {n} nodes)"
                        ),
                    ));
                } else if p == i {
                    out.push(diag(
                        self,
                        view,
                        Some(i),
                        format!("self-reference: n{i} uses its own result"),
                    ));
                } else if p > i {
                    out.push(diag(
                        self,
                        view,
                        Some(i),
                        format!("rank inconsistency: operand n{p} does not precede n{i}"),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// A007 — I/O infeasibility pre-flight
// ---------------------------------------------------------------------

/// A007: no nonempty cut can satisfy the port budget, so the search is
/// guaranteed to return the empty cut.
///
/// Soundness: any nonempty cut of a DAG has a rank-minimal member `u`,
/// and every operand of `u` is outside the cut, so the cut's input
/// count is at least `u`'s distinct-operand count. If every eligible
/// node has more than `N_in` distinct operands, every cut overflows.
/// (Output feasibility never binds: a single-node cut has one output
/// and `N_out >= 1` by construction.)
struct IoInfeasible;

impl Pass for IoInfeasible {
    fn code(&self) -> &'static str {
        "A007"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "I/O infeasibility: no nonempty cut fits the port budget"
    }
    fn run(&self, view: &BlockView, opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let mut eligible = 0usize;
        let mut min_inputs: Option<(usize, usize)> = None; // (count, node)
        for i in 0..view.len() {
            if !view.opcode(i).is_some_and(Opcode::is_ise_eligible) {
                continue;
            }
            eligible += 1;
            let mut distinct = view.preds(i).to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            let count = distinct.len();
            if min_inputs.is_none_or(|(best, _)| count < best) {
                min_inputs = Some((count, i));
            }
        }
        if eligible == 0 {
            if !view.is_empty() {
                out.push(diag(
                    self,
                    view,
                    None,
                    "no ISE-eligible operation: every cut is empty".to_string(),
                ));
            }
            return;
        }
        let max_in = opts.io.max_inputs() as usize;
        if let Some((count, node)) = min_inputs {
            if count > max_in {
                out.push(diag(
                    self,
                    view,
                    Some(node),
                    format!(
                        "I/O infeasible: every eligible operation needs at least {count} inputs, \
                         but the budget allows {max_in} — no nonempty cut can exist"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// A008 — invalid latency
// ---------------------------------------------------------------------

/// A008: an opcode used by this block has a NaN, infinite or negative
/// hardware delay in the configured model — merit arithmetic downstream
/// would silently produce NaN cuts.
struct InvalidLatency;

impl Pass for InvalidLatency {
    fn code(&self) -> &'static str {
        "A008"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn summary(&self) -> &'static str {
        "invalid latency: NaN/infinite/negative hardware delay"
    }
    fn run(&self, view: &BlockView, opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let mut reported = [false; Opcode::ALL.len()];
        for i in 0..view.len() {
            let Some(op) = view.opcode(i) else { continue };
            if reported[op.as_index()] {
                continue;
            }
            let hw = opts.model.hw_delay(op);
            if !hw.is_finite() || hw < 0.0 {
                reported[op.as_index()] = true;
                out.push(diag(
                    self,
                    view,
                    Some(i),
                    format!(
                        "invalid latency: {} has hardware delay {hw} in the configured model",
                        op.mnemonic()
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// A009 — unprofitable latency
// ---------------------------------------------------------------------

/// A009: an eligible opcode whose hardware delay is at least its
/// software cycle count (or whose software cost is zero) — including it
/// in a cut can never reduce latency, which usually means a
/// miscalibrated model.
struct UnprofitableLatency;

impl Pass for UnprofitableLatency {
    fn code(&self) -> &'static str {
        "A009"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "unprofitable latency: hardware delay >= software cycles"
    }
    fn run(&self, view: &BlockView, opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let mut reported = [false; Opcode::ALL.len()];
        for i in 0..view.len() {
            let Some(op) = view.opcode(i) else { continue };
            if !op.is_ise_eligible() || reported[op.as_index()] {
                continue;
            }
            let sw = opts.model.sw_cycles(op);
            let hw = opts.model.hw_delay(op);
            if sw == 0 {
                reported[op.as_index()] = true;
                out.push(diag(
                    self,
                    view,
                    Some(i),
                    format!(
                        "unprofitable latency: {} costs zero software cycles",
                        op.mnemonic()
                    ),
                ));
            } else if hw.is_finite() && hw >= sw as f64 {
                reported[op.as_index()] = true;
                out.push(diag(
                    self,
                    view,
                    Some(i),
                    format!(
                        "unprofitable latency: {} hardware delay {hw} >= {sw} software cycle(s)",
                        op.mnemonic()
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// A010 — suspicious frequency
// ---------------------------------------------------------------------

/// A010: a block frequency of zero (the block never runs, so every
/// merit is zero) or above the text-IR `MAX_FREQUENCY` bound.
struct SuspiciousFrequency;

impl Pass for SuspiciousFrequency {
    fn code(&self) -> &'static str {
        "A010"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "suspicious frequency: zero or above MAX_FREQUENCY"
    }
    fn run(&self, view: &BlockView, _opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let freq = view.frequency();
        if freq == 0 {
            out.push(diag(
                self,
                view,
                None,
                "suspicious frequency: block never executes (frequency 0)".to_string(),
            ));
        } else if freq > MAX_FREQUENCY {
            out.push(diag(
                self,
                view,
                None,
                format!("suspicious frequency: {freq} exceeds MAX_FREQUENCY ({MAX_FREQUENCY})"),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// A011 — duplicate input label
// ---------------------------------------------------------------------

/// A011: two inputs carry the same label — almost certainly the same
/// logical value declared twice, which inflates the block's apparent
/// input pressure.
struct DuplicateInputLabel;

impl Pass for DuplicateInputLabel {
    fn code(&self) -> &'static str {
        "A011"
    }
    fn severity(&self) -> Severity {
        Severity::Warning
    }
    fn summary(&self) -> &'static str {
        "duplicate input label"
    }
    fn run(&self, view: &BlockView, _opts: &LintOptions, out: &mut Vec<Diagnostic>) {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for i in 0..view.len() {
            if view.opcode(i) != Some(Opcode::Input) {
                continue;
            }
            let Some(label) = view.label(i) else { continue };
            match seen.entry(label) {
                std::collections::hash_map::Entry::Occupied(first) => {
                    let j = *first.get();
                    out.push(diag(
                        self,
                        view,
                        Some(i),
                        format!("duplicate input label: n{i} ({label:?}) repeats n{j}"),
                    ));
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i);
                }
            }
        }
    }
}
