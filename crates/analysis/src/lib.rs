//! Static analysis for ISEGEN IR: a lint framework that diagnoses
//! degenerate or hostile dataflow blocks *before* the K-L search sees
//! them.
//!
//! The paper's flow (Biswas et al., DATE 2005) trusts its input blocks:
//! the search assumes an acyclic, rank-ordered DFG with sane latencies
//! and at least one ISE-eligible operation. With external front-ends on
//! the roadmap (BLIF, text IR over the `ised` wire), that trust has to
//! be earned — this crate turns the implicit preconditions into named,
//! testable diagnostics.
//!
//! # Architecture
//!
//! Lints run over a [`BlockView`] — a *raw*, unvalidated mirror of a
//! basic block (opcodes, operand indices, live-out flags, frequency).
//! Unlike [`isegen_ir::BlockBuilder`] and the text parser, a view can
//! encode anything: cycles, forward references, out-of-range operands,
//! dead nodes. That is the point — the validated `Application` path can
//! never exhibit half of the defects below, but future front-ends (and
//! the firing tests in `tests/analysis_lint.rs`) can, so the passes are
//! written against the hostile representation and [`analyze`] merely
//! projects a well-formed [`Application`](isegen_ir::Application) into
//! it.
//!
//! Every pass is bounds-checked end to end: [`analyze`] and
//! [`analyze_view`] never panic, whatever the input.
//!
//! # Diagnostic registry
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | A001 | warning  | dead node: no live-out or store is reachable |
//! | A002 | warning  | unused input: no consumer and not live-out |
//! | A003 | warning  | duplicate structurally-identical operation |
//! | A004 | warning  | algebraically foldable operation (`x^x`, `not(not(x))`, …) |
//! | A005 | error    | combinational cycle |
//! | A006 | error    | rank inconsistency: out-of-range/forward operand or arity mismatch |
//! | A007 | warning  | I/O infeasibility: no nonempty cut fits the port budget |
//! | A008 | error    | invalid latency: NaN/infinite/negative hardware delay |
//! | A009 | warning  | unprofitable latency: hardware delay ≥ software cycles |
//! | A010 | warning  | suspicious frequency: zero or above `MAX_FREQUENCY` |
//! | A011 | warning  | duplicate input label |
//!
//! Line numbers refer to the *canonical* text-IR serialization
//! ([`isegen_ir::write_application`]), which is deterministic, so spans
//! are computed arithmetically from the block shapes without
//! re-serializing.
//!
//! # Quickstart
//!
//! ```
//! use isegen_analysis::{analyze, Severity};
//! use isegen_ir::{BlockBuilder, Application, Opcode};
//!
//! # fn main() -> Result<(), isegen_ir::BuildError> {
//! let mut b = BlockBuilder::new("bb");
//! let x = b.input("x");
//! let unused = b.input("y"); // never consumed -> A002
//! let _ = unused;
//! b.op(Opcode::Xor, &[x, x])?; // x^x is always zero -> A004
//! let mut app = Application::new("demo");
//! app.push_block(b.build()?);
//!
//! let diags = analyze(&app);
//! assert!(diags.iter().any(|d| d.code == "A002"));
//! assert!(diags.iter().any(|d| d.code == "A004"));
//! assert!(diags.iter().all(|d| d.severity == Severity::Warning));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod passes;
mod view;

pub use passes::{registry, Pass};
pub use view::BlockView;

use isegen_core::IoConstraints;
use isegen_ir::{Application, LatencyModel};
use std::fmt;

/// How bad a finding is.
///
/// `Error` findings gate `lint_report` (exit 1) and mean the block
/// violates a structural precondition of the search; `Warning` findings
/// are legal-but-suspicious constructs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Legal input, but almost certainly not what the author meant.
    Warning,
    /// Violates a structural precondition of the toolchain.
    Error,
}

impl Severity {
    /// Lowercase name, as emitted on the wire and in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`A001`..): the contract clients key on.
    pub code: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Name of the block the finding is in.
    pub block: String,
    /// Node index within the block, if the finding is node-anchored.
    pub node: Option<usize>,
    /// 1-based line in the canonical text-IR serialization, when known.
    pub line: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [block {:?}", self.code, self.severity, self.block)?;
        if let Some(n) = self.node {
            write!(f, " n{n}")?;
        }
        if let Some(l) = self.line {
            write!(f, " line {l}")?;
        }
        write!(f, "]: {}", self.message)
    }
}

/// Configuration the environment-dependent passes (A007..A009) lint
/// against.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Register-file port budget the search will run under.
    pub io: IoConstraints,
    /// Latency model the search will score with.
    pub model: LatencyModel,
}

impl Default for LintOptions {
    /// The paper's configuration: a `(4, 2)` port budget and the
    /// default latency table.
    fn default() -> Self {
        LintOptions {
            io: IoConstraints::new(4, 2),
            model: LatencyModel::paper_default(),
        }
    }
}

/// Runs the full registry over every block of `app` with
/// [`LintOptions::default`].
///
/// Never panics, whatever `app` contains.
pub fn analyze(app: &Application) -> Vec<Diagnostic> {
    analyze_with(app, &LintOptions::default())
}

/// Runs the full registry over every block of `app` with explicit
/// options.
pub fn analyze_with(app: &Application, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for view in view::app_views(app) {
        run_registry(&view, opts, &mut out);
    }
    sort_diagnostics(&mut out);
    out
}

/// Runs the full registry over one raw [`BlockView`].
///
/// This is the hostile-input entry point: the view may contain cycles,
/// forward references and out-of-range operands, and the passes must
/// (and do) survive all of it.
pub fn analyze_view(view: &BlockView, opts: &LintOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    run_registry(view, opts, &mut out);
    sort_diagnostics(&mut out);
    out
}

fn run_registry(view: &BlockView, opts: &LintOptions, out: &mut Vec<Diagnostic>) {
    for pass in registry() {
        pass.run(view, opts, out);
    }
}

fn sort_diagnostics(out: &mut [Diagnostic]) {
    out.sort_by(|a, b| {
        (a.line.unwrap_or(usize::MAX), a.node, a.code, &a.block).cmp(&(
            b.line.unwrap_or(usize::MAX),
            b.node,
            b.code,
            &b.block,
        ))
    });
}
