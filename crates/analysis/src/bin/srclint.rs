//! `srclint` — source-pattern lint gate for the isegen workspace.
//!
//! Scans first-party Rust sources (`crates/*/src` and the facade's
//! `src/`, vendored shims excluded) for panic-prone patterns that have
//! bitten this codebase before, and fails (exit 1) on any hit that is
//! not covered by the allowlist:
//!
//! * `partial-cmp-unwrap` — `partial_cmp(..).unwrap()` anywhere: NaN
//!   input turns it into a panic (the pre-`total_cmp` restart-seed
//!   sorter had exactly this bug).
//! * `serve-unwrap` — `.unwrap()` / `.expect(` in `crates/serve/src`:
//!   the daemon's request paths must return typed `ProtoError`s, never
//!   panic on hostile input.
//! * `serve-index` — numeric-literal indexing (`xs[0]`) in
//!   `crates/serve/src`: out-of-range payloads must be range-checked,
//!   not trusted.
//!
//! Test code is exempt: scanning stops at the conventional trailing
//! `#[cfg(test)]` module, and `tests/` trees are never visited.
//!
//! Known-good hits live in `srclint.allow` at the workspace root, one
//! per line: `<rule> <path> <trimmed source line>`. An entry matches by
//! content, not line number, so ordinary edits don't invalidate it;
//! stale entries are reported (but don't fail the gate).
//!
//! Usage: `srclint [--root DIR] [--allow FILE]` — exit 0 clean, 1 on
//! violations, 2 on usage/IO errors.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const USAGE: &str = "usage: srclint [--root DIR] [--allow FILE]
  --root DIR    workspace root to scan (default: current directory)
  --allow FILE  allowlist file (default: <root>/srclint.allow)";

fn usage_error(message: &str) -> ! {
    eprintln!("srclint: {message}\n{USAGE}");
    std::process::exit(2);
}

/// One banned-pattern rule.
struct Rule {
    name: &'static str,
    /// Path prefix (relative to the root, `/`-separated) the rule is
    /// scoped to; empty = whole workspace.
    scope: &'static str,
    matches: fn(&str) -> bool,
    why: &'static str,
}

// Split out so the matcher bodies don't trip the global rule on
// srclint's own source.
const UNWRAP_CALL: &str = ".unwrap()";
const EXPECT_CALL: &str = ".expect(";

fn has_partial_cmp_unwrap(line: &str) -> bool {
    line.contains("partial_cmp") && line.contains(UNWRAP_CALL)
}

fn has_unwrap_or_expect(line: &str) -> bool {
    line.contains(UNWRAP_CALL) || line.contains(EXPECT_CALL)
}

/// Numeric-literal indexing: `[` preceded by an identifier character,
/// `)`, or `]`, containing only digits up to the closing `]`. Misses
/// computed indices on purpose — those usually carry a nearby bound —
/// and never matches array types/literals like `[0u8; 4]`.
fn has_literal_index(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']') {
            continue;
        }
        let rest = &bytes[i + 1..];
        let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits > 0 && rest.get(digits) == Some(&b']') {
            return true;
        }
    }
    false
}

const RULES: &[Rule] = &[
    Rule {
        name: "partial-cmp-unwrap",
        scope: "",
        matches: has_partial_cmp_unwrap,
        why: "panics on NaN; use total_cmp or handle None",
    },
    Rule {
        name: "serve-unwrap",
        scope: "crates/serve/src",
        matches: has_unwrap_or_expect,
        why: "request paths must return ProtoError, not panic",
    },
    Rule {
        name: "serve-index",
        scope: "crates/serve/src",
        matches: has_literal_index,
        why: "hostile payloads must be range-checked, not indexed",
    },
];

struct Violation {
    rule: &'static str,
    path: String,
    line_no: usize,
    trimmed: String,
    why: &'static str,
}

/// Collects the `.rs` files srclint owns: `crates/*/src/**` plus the
/// facade `src/**`. Vendored shims and `tests/` trees are not product
/// code and are skipped.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            let src = krate.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        walk(&facade, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn scan_file(root: &Path, path: &Path, out: &mut Vec<Violation>) -> std::io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    let rel = relative(root, path);
    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim();
        // The workspace convention keeps unit tests in one trailing
        // `#[cfg(test)]` module — everything after it is test code.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") || trimmed.is_empty() {
            continue;
        }
        for rule in RULES {
            if !rule.scope.is_empty() && !rel.starts_with(rule.scope) {
                continue;
            }
            if (rule.matches)(trimmed) {
                out.push(Violation {
                    rule: rule.name,
                    path: rel.clone(),
                    line_no: idx + 1,
                    trimmed: trimmed.to_string(),
                    why: rule.why,
                });
            }
        }
    }
    Ok(())
}

/// Allowlist entries: `<rule> <path> <trimmed source line>`.
fn load_allowlist(path: &Path) -> std::io::Result<Vec<(String, String, String)>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let mut entries = Vec::new();
    for raw in std::fs::read_to_string(path)?.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(file), Some(source)) => {
                entries.push((
                    rule.to_string(),
                    file.to_string(),
                    source.trim().to_string(),
                ));
            }
            _ => eprintln!("srclint: malformed allowlist entry ignored: {line:?}"),
        }
    }
    Ok(entries)
}

fn main() {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => usage_error("--root needs a directory"),
            },
            "--allow" => match args.next() {
                Some(file) => allow_path = Some(PathBuf::from(file)),
                None => usage_error("--allow needs a file"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let allow_path = allow_path.unwrap_or_else(|| root.join("srclint.allow"));

    let files = match collect_sources(&root) {
        Ok(files) => files,
        Err(e) => usage_error(&format!("cannot scan {}: {e}", root.display())),
    };
    if files.is_empty() {
        usage_error(&format!("no sources under {}", root.display()));
    }
    let allowlist = match load_allowlist(&allow_path) {
        Ok(entries) => entries,
        Err(e) => usage_error(&format!("cannot read {}: {e}", allow_path.display())),
    };

    let mut violations = Vec::new();
    for file in &files {
        if let Err(e) = scan_file(&root, file, &mut violations) {
            usage_error(&format!("cannot read {}: {e}", file.display()));
        }
    }

    let mut used = vec![false; allowlist.len()];
    let mut failing = Vec::new();
    for v in &violations {
        let hit = allowlist.iter().position(|(rule, path, source)| {
            rule == v.rule && path == &v.path && source == &v.trimmed
        });
        match hit {
            Some(i) => used[i] = true,
            None => failing.push(v),
        }
    }

    let mut report = String::new();
    for v in &failing {
        let _ = writeln!(
            report,
            "{}:{}: [{}] {}\n    {}",
            v.path, v.line_no, v.rule, v.why, v.trimmed
        );
    }
    print!("{report}");
    for (i, (rule, path, source)) in allowlist.iter().enumerate() {
        if !used[i] {
            println!("srclint: stale allowlist entry (no longer matches): {rule} {path} {source}");
        }
    }
    println!(
        "srclint: {} file(s), {} hit(s), {} allowlisted, {} failing",
        files.len(),
        violations.len(),
        violations.len() - failing.len(),
        failing.len()
    );
    if !failing.is_empty() {
        std::process::exit(1);
    }
}
