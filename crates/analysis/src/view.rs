//! Raw block representation the lint passes run over.
//!
//! [`BlockView`] deliberately re-encodes a basic block without any of
//! the invariants [`isegen_ir`] enforces at construction time: operand
//! indices are plain `usize`s that may point forward, at the node
//! itself, or out of range entirely. Valid [`Application`]s project
//! into valid views; tests and future unvalidated front-ends can build
//! arbitrary ones.

use isegen_graph::NodeId;
use isegen_ir::{Application, BasicBlock, Opcode};

/// One node of a [`BlockView`].
#[derive(Debug, Clone)]
struct NodeView {
    opcode: Opcode,
    label: Option<String>,
    preds: Vec<usize>,
    live_out: bool,
}

/// A raw, unvalidated mirror of a basic block.
///
/// Build one with [`BlockView::new`] + [`BlockView::push_node`] (tests,
/// hostile front-ends) or project a validated block via
/// [`BlockView::from_block`]. Nothing is checked at construction; the
/// lint passes bounds-check every access instead.
#[derive(Debug, Clone)]
pub struct BlockView {
    name: String,
    frequency: u64,
    /// 1-based line of the `block` header in the canonical text
    /// serialization, when this view came from a full application.
    header_line: Option<usize>,
    nodes: Vec<NodeView>,
}

impl BlockView {
    /// Creates an empty view with the given name and execution
    /// frequency.
    pub fn new(name: impl Into<String>, frequency: u64) -> Self {
        BlockView {
            name: name.into(),
            frequency,
            header_line: None,
            nodes: Vec::new(),
        }
    }

    /// Appends a node and returns its index.
    ///
    /// `preds` are operand indices in operand order; they are *not*
    /// validated — out-of-range and forward references are exactly what
    /// the error-severity passes exist to catch.
    pub fn push_node(&mut self, opcode: Opcode, label: Option<&str>, preds: &[usize]) -> usize {
        self.nodes.push(NodeView {
            opcode,
            label: label.map(str::to_string),
            preds: preds.to_vec(),
            live_out: false,
        });
        self.nodes.len() - 1
    }

    /// Marks `node` live-out (silently ignored when out of range — a
    /// view is allowed to be nonsense, the passes report on it).
    pub fn set_live_out(&mut self, node: usize, live: bool) {
        if let Some(n) = self.nodes.get_mut(node) {
            n.live_out = live;
        }
    }

    /// Pins the canonical-text line of this block's `block` header.
    pub fn set_header_line(&mut self, line: usize) {
        self.header_line = Some(line);
    }

    /// Projects a validated block into a view.
    ///
    /// `header_line` is the 1-based canonical-text line of the block
    /// header, or `None` when the enclosing application is unknown.
    pub fn from_block(block: &BasicBlock, header_line: Option<usize>) -> Self {
        let dag = block.dag();
        let mut view = BlockView {
            name: block.name().to_string(),
            frequency: block.frequency(),
            header_line,
            nodes: Vec::with_capacity(dag.node_count()),
        };
        for i in 0..dag.node_count() {
            let id = NodeId::from_index(i);
            let op = dag.weight(id);
            view.nodes.push(NodeView {
                opcode: op.opcode(),
                label: op.label().map(str::to_string),
                preds: dag.preds(id).iter().map(|p| p.index()).collect(),
                live_out: block.is_live_out(id),
            });
        }
        view
    }

    /// Block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution frequency.
    pub fn frequency(&self) -> u64 {
        self.frequency
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the view has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Opcode of `node`, or `None` when out of range.
    pub fn opcode(&self, node: usize) -> Option<Opcode> {
        self.nodes.get(node).map(|n| n.opcode)
    }

    /// Label of `node`, when present.
    pub fn label(&self, node: usize) -> Option<&str> {
        self.nodes.get(node).and_then(|n| n.label.as_deref())
    }

    /// Operand indices of `node` (empty when out of range).
    pub fn preds(&self, node: usize) -> &[usize] {
        self.nodes.get(node).map_or(&[], |n| n.preds.as_slice())
    }

    /// Whether `node` is marked live-out.
    pub fn is_live_out(&self, node: usize) -> bool {
        self.nodes.get(node).is_some_and(|n| n.live_out)
    }

    /// Number of `live` lines this block serializes to.
    pub fn live_out_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.live_out).count()
    }

    /// Canonical-text line of `node`'s definition, when the header line
    /// is known: the serializer emits the header, then one line per
    /// node in index order.
    pub fn line_of(&self, node: usize) -> Option<usize> {
        self.header_line.map(|h| h + 1 + node)
    }

    /// Canonical-text line of the block header itself, when known.
    pub fn header_line(&self) -> Option<usize> {
        self.header_line
    }
}

/// Projects every block of `app` into a view, with canonical-text
/// header lines assigned to match [`isegen_ir::write_application`]:
/// line 1 is the `app` header, and each block contributes its header,
/// one line per node, one line per live-out, and an `end` line.
pub(crate) fn app_views(app: &Application) -> Vec<BlockView> {
    let mut views = Vec::with_capacity(app.blocks().len());
    let mut line = 2; // line 1 is `app "name"`
    for block in app.blocks() {
        let view = BlockView::from_block(block, Some(line));
        line += 1 + view.len() + view.live_out_count() + 1;
        views.push(view);
    }
    views
}
