use crate::{Dag, NodeId, NodeSet, TopoOrder};

/// Transitive closure of a [`Dag`]: per-node ancestor and descendant
/// bitsets.
///
/// Built once per basic block in O(V·E/64); afterwards convexity tests and
/// "is there a path" queries are O(n/64) and O(1) respectively. This is the
/// data structure behind the paper's fast convexity-violation checks
/// (§4.3).
///
/// ```
/// use isegen_graph::{Dag, TopoOrder, Reachability};
///
/// # fn main() -> Result<(), isegen_graph::GraphError> {
/// let mut dag: Dag<()> = Dag::new();
/// let a = dag.add_node(());
/// let b = dag.add_node(());
/// let c = dag.add_node(());
/// dag.add_edge(a, b)?;
/// dag.add_edge(b, c)?;
/// let reach = Reachability::new(&dag, &TopoOrder::new(&dag));
/// assert!(reach.reaches(a, c));
/// assert!(!reach.reaches(c, a));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reachability {
    desc: Vec<NodeSet>,
    anc: Vec<NodeSet>,
}

impl Reachability {
    /// Computes the transitive closure of `dag` using `topo`.
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `dag`.
    pub fn new<N>(dag: &Dag<N>, topo: &TopoOrder) -> Self {
        let n = dag.node_count();
        assert_eq!(topo.len(), n, "topological order does not match graph");
        let mut desc = vec![NodeSet::new(n); n];
        // Reverse topological order: descendants of v = succs ∪ their descendants.
        for &v in topo.order().iter().rev() {
            let mut set = NodeSet::new(n);
            for &s in dag.succs(v) {
                set.insert(s);
                // Clone-free union: split_at_mut not possible across Vec<NodeSet>
                // of different indices cheaply; use a scratch borrow instead.
                let succ_desc = desc[s.index()].clone();
                set.union_with(&succ_desc);
            }
            desc[v.index()] = set;
        }
        let mut anc = vec![NodeSet::new(n); n];
        for &v in topo.order() {
            let mut set = NodeSet::new(n);
            for &p in dag.preds(v) {
                set.insert(p);
                let pred_anc = anc[p.index()].clone();
                set.union_with(&pred_anc);
            }
            anc[v.index()] = set;
        }
        Reachability { desc, anc }
    }

    /// Strict descendants of `v` (excluding `v`).
    #[inline]
    pub fn descendants(&self, v: NodeId) -> &NodeSet {
        &self.desc[v.index()]
    }

    /// Strict ancestors of `v` (excluding `v`).
    #[inline]
    pub fn ancestors(&self, v: NodeId) -> &NodeSet {
        &self.anc[v.index()]
    }

    /// Returns `true` when a path of one or more edges `from ⇝ to` exists.
    #[inline]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.desc[from.index()].contains(to)
    }

    /// Number of nodes covered.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.desc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_closure() {
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        let c = d.add_node(());
        let e = d.add_node(());
        d.add_edge(a, b).unwrap();
        d.add_edge(a, c).unwrap();
        d.add_edge(b, e).unwrap();
        d.add_edge(c, e).unwrap();
        let r = Reachability::new(&d, &TopoOrder::new(&d));
        assert!(r.reaches(a, e));
        assert!(r.reaches(a, b));
        assert!(!r.reaches(b, c));
        assert!(!r.reaches(e, a));
        assert!(!r.reaches(a, a), "strict closure excludes self");
        assert_eq!(r.descendants(a).len(), 3);
        assert_eq!(r.ancestors(e).len(), 3);
        assert_eq!(r.ancestors(a).len(), 0);
    }

    #[test]
    fn matches_dfs_on_parallel_edges() {
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        d.add_edge(a, b).unwrap();
        d.add_edge(a, b).unwrap();
        let r = Reachability::new(&d, &TopoOrder::new(&d));
        assert!(r.reaches(a, b));
        assert_eq!(r.descendants(a).len(), 1);
    }
}
