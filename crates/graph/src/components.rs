//! Connected components of a cut-induced subgraph.
//!
//! ISEGEN deliberately allows a cut to be a union of **independent
//! subgraphs** (paper §3, §4.2 "Independent Cuts"); the gain function needs
//! to know, for every hardware node, which connected component it belongs
//! to and how valuable the *other* components are.

use crate::{Dag, NodeId, NodeSet};

/// Component labelling of the subgraph induced by a cut.
///
/// Edges are considered undirected for the purpose of connectivity, as in
/// the paper's notion of "independently connected subgraphs".
///
/// ```
/// use isegen_graph::{Dag, NodeSet, components::Components};
///
/// # fn main() -> Result<(), isegen_graph::GraphError> {
/// let mut dag: Dag<()> = Dag::new();
/// let a = dag.add_node(());
/// let b = dag.add_node(());
/// let c = dag.add_node(());
/// dag.add_edge(a, b)?;
/// // c is isolated from {a, b}
/// let cut = NodeSet::from_ids(3, [a, b, c]);
/// let comps = Components::within(&dag, &cut);
/// assert_eq!(comps.count(), 2);
/// assert_eq!(comps.component_of(a), comps.component_of(b));
/// assert_ne!(comps.component_of(a), comps.component_of(c));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Components {
    /// Component index per node; `u32::MAX` for nodes outside the cut.
    label: Vec<u32>,
    count: usize,
}

/// Sentinel label for nodes outside the cut.
pub const OUTSIDE: u32 = u32::MAX;

impl Components {
    /// Labels the connected components of the subgraph induced by `cut`.
    ///
    /// O(V + E) via breadth-first search over cut-internal edges in both
    /// directions.
    pub fn within<N>(dag: &Dag<N>, cut: &NodeSet) -> Self {
        let n = dag.node_count();
        let mut label = vec![OUTSIDE; n];
        let mut count = 0usize;
        let mut queue: Vec<NodeId> = Vec::new();
        for start in cut.iter() {
            if label[start.index()] != OUTSIDE {
                continue;
            }
            let comp = count as u32;
            count += 1;
            label[start.index()] = comp;
            queue.clear();
            queue.push(start);
            while let Some(v) = queue.pop() {
                for &w in dag.preds(v).iter().chain(dag.succs(v)) {
                    if cut.contains(w) && label[w.index()] == OUTSIDE {
                        label[w.index()] = comp;
                        queue.push(w);
                    }
                }
            }
        }
        Components { label, count }
    }

    /// Number of connected components in the cut.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component index of `node`, or [`OUTSIDE`] if it is not in the cut.
    #[inline]
    pub fn component_of(&self, node: NodeId) -> u32 {
        self.label[node.index()]
    }

    /// Collects the members of every component.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &l) in self.label.iter().enumerate() {
            if l != OUTSIDE {
                out[l as usize].push(NodeId::from_index(i));
            }
        }
        out
    }

    /// The members of every component as [`NodeSet`]s of capacity
    /// `capacity` (the graph's node count).
    pub fn member_sets(&self, capacity: usize) -> Vec<NodeSet> {
        let mut out = vec![NodeSet::new(capacity); self.count];
        for (i, &l) in self.label.iter().enumerate() {
            if l != OUTSIDE {
                out[l as usize].insert(NodeId::from_index(i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cut_has_no_components() {
        let mut d: Dag<()> = Dag::new();
        d.add_node(());
        let comps = Components::within(&d, &NodeSet::new(1));
        assert_eq!(comps.count(), 0);
        assert_eq!(comps.component_of(NodeId::from_index(0)), OUTSIDE);
    }

    #[test]
    fn connectivity_ignores_direction() {
        // a -> c <- b : a and b are connected through c when all are in cut.
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        let c = d.add_node(());
        d.add_edge(a, c).unwrap();
        d.add_edge(b, c).unwrap();
        let comps = Components::within(&d, &NodeSet::full(3));
        assert_eq!(comps.count(), 1);
    }

    #[test]
    fn outside_nodes_split_components() {
        // chain a-b-c; cut {a, c} has two components (b outside).
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        let c = d.add_node(());
        d.add_edge(a, b).unwrap();
        d.add_edge(b, c).unwrap();
        let cut = NodeSet::from_ids(3, [a, c]);
        let comps = Components::within(&d, &cut);
        assert_eq!(comps.count(), 2);
        let members = comps.members();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0], vec![a]);
        assert_eq!(members[1], vec![c]);
        let sets = comps.member_sets(3);
        assert!(sets[0].contains(a) && sets[1].contains(c));
    }
}
