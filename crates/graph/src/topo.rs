use crate::{Dag, NodeId};

/// A topological order of a [`Dag`], with O(1) rank lookup.
///
/// ```
/// use isegen_graph::{Dag, TopoOrder};
///
/// # fn main() -> Result<(), isegen_graph::GraphError> {
/// let mut dag: Dag<()> = Dag::new();
/// let a = dag.add_node(());
/// let b = dag.add_node(());
/// dag.add_edge(a, b)?;
/// let topo = TopoOrder::new(&dag);
/// assert!(topo.rank(a) < topo.rank(b));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoOrder {
    order: Vec<NodeId>,
    rank: Vec<u32>,
}

impl TopoOrder {
    /// Computes a topological order with Kahn's algorithm.
    ///
    /// Ties are broken by node index, so the order is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (possible only after
    /// [`Dag::add_edge_assume_acyclic`] misuse).
    pub fn new<N>(dag: &Dag<N>) -> Self {
        let n = dag.node_count();
        let mut indeg: Vec<usize> = (0..n)
            .map(|i| dag.in_degree(NodeId::from_index(i)))
            .collect();
        // BinaryHeap would give smallest-index-first; a simple bucket queue
        // scanning forward is O(V+E) because ids only ever decrease locally.
        let mut ready: Vec<NodeId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(NodeId::from_index)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut rank = vec![0u32; n];
        let mut head = 0;
        while head < ready.len() {
            let v = ready[head];
            head += 1;
            rank[v.index()] = order.len() as u32;
            order.push(v);
            for &s in dag.succs(v) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        assert_eq!(order.len(), n, "graph contains a cycle");
        TopoOrder { order, rank }
    }

    /// The nodes in topological order.
    #[inline]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The position of `node` in the topological order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn rank(&self, node: NodeId) -> u32 {
        self.rank[node.index()]
    }

    /// Number of nodes covered by this order.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` for the order of an empty graph.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_edges() {
        let mut d: Dag<()> = Dag::new();
        let n: Vec<NodeId> = (0..5).map(|_| d.add_node(())).collect();
        d.add_edge(n[3], n[1]).unwrap();
        d.add_edge(n[1], n[0]).unwrap();
        d.add_edge(n[4], n[0]).unwrap();
        d.add_edge(n[3], n[2]).unwrap();
        let topo = TopoOrder::new(&d);
        assert_eq!(topo.len(), 5);
        for (src, dst) in d.edges() {
            assert!(topo.rank(src) < topo.rank(dst), "{src} before {dst}");
        }
        // order()[rank(v)] == v
        for v in d.node_ids() {
            assert_eq!(topo.order()[topo.rank(v) as usize], v);
        }
    }

    #[test]
    fn deterministic_tie_break() {
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        let c = d.add_node(());
        let topo = TopoOrder::new(&d);
        assert_eq!(topo.order(), &[a, b, c]);
    }

    #[test]
    fn empty_graph() {
        let d: Dag<()> = Dag::new();
        let topo = TopoOrder::new(&d);
        assert!(topo.is_empty());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        d.add_edge_assume_acyclic(a, b);
        d.add_edge_assume_acyclic(b, a); // invariant violation on purpose
        let _ = TopoOrder::new(&d);
    }
}
