//! Longest-path (critical-path) and barrier-distance computations.
//!
//! The merit function of the paper estimates a cut's hardware latency as
//! the critical path of per-operation hardware delays through the cut, and
//! the "Large Cut" gain component measures each node's distance to the
//! nearest *barrier* (external input, output boundary, memory operation).

use crate::{Dag, NodeId, NodeSet, TopoOrder};

/// Longest-path arrays within a cut.
///
/// `up[v]` is the largest delay sum of a path that starts anywhere in the
/// cut and ends at `v` (inclusive), using only cut-internal edges;
/// `down[v]` symmetrically for paths starting at `v`. Both are `0.0` for
/// nodes outside the cut. The cut's critical path is
/// `max_v (up[v] + down[v] − delay(v))`.
#[derive(Debug, Clone)]
pub struct UpDown {
    /// Longest delay path ending at each node (inclusive).
    pub up: Vec<f64>,
    /// Longest delay path starting at each node (inclusive).
    pub down: Vec<f64>,
    /// The cut's critical-path delay.
    pub critical: f64,
}

/// Computes [`UpDown`] longest-path arrays for the subgraph induced by
/// `cut`, with per-node delays given by `delay`.
///
/// O(V + E) over the whole graph (non-cut nodes are skipped).
///
/// # Panics
///
/// Panics if `topo` does not match `dag`.
pub fn up_down_within<N>(
    dag: &Dag<N>,
    topo: &TopoOrder,
    cut: &NodeSet,
    mut delay: impl FnMut(NodeId) -> f64,
) -> UpDown {
    let n = dag.node_count();
    assert_eq!(topo.len(), n, "topological order does not match graph");
    let mut up = vec![0.0f64; n];
    let mut down = vec![0.0f64; n];
    let mut critical = 0.0f64;
    for &v in topo.order() {
        if !cut.contains(v) {
            continue;
        }
        let mut best = 0.0f64;
        for &p in dag.preds(v) {
            if cut.contains(p) && up[p.index()] > best {
                best = up[p.index()];
            }
        }
        up[v.index()] = best + delay(v);
    }
    for &v in topo.order().iter().rev() {
        if !cut.contains(v) {
            continue;
        }
        let mut best = 0.0f64;
        for &s in dag.succs(v) {
            if cut.contains(s) && down[s.index()] > best {
                best = down[s.index()];
            }
        }
        let d = delay(v);
        down[v.index()] = best + d;
        let through = up[v.index()] + down[v.index()] - d;
        if through > critical {
            critical = through;
        }
    }
    UpDown { up, down, critical }
}

/// Critical-path delay of the subgraph induced by `cut`.
///
/// Convenience wrapper around [`up_down_within`].
pub fn critical_path_within<N>(
    dag: &Dag<N>,
    topo: &TopoOrder,
    cut: &NodeSet,
    delay: impl FnMut(NodeId) -> f64,
) -> f64 {
    up_down_within(dag, topo, cut, delay).critical
}

/// Saturating distance (in edges) from each node **up** to the nearest
/// barrier ancestor.
///
/// Barrier nodes themselves get distance 0. A node whose predecessors are
/// all non-barriers gets `1 + min(preds)`. Nodes with no predecessors and
/// no barrier above get [`u32::MAX`] (no growth limit in that direction).
pub fn barrier_distance_up<N>(
    dag: &Dag<N>,
    topo: &TopoOrder,
    mut is_barrier: impl FnMut(NodeId) -> bool,
) -> Vec<u32> {
    let n = dag.node_count();
    let mut dist = vec![u32::MAX; n];
    for &v in topo.order() {
        if is_barrier(v) {
            dist[v.index()] = 0;
            continue;
        }
        let mut best = u32::MAX;
        for &p in dag.preds(v) {
            let d = dist[p.index()].saturating_add(1);
            if d < best {
                best = d;
            }
        }
        dist[v.index()] = best;
    }
    dist
}

/// Saturating distance (in edges) from each node **down** to the nearest
/// barrier descendant. Mirror of [`barrier_distance_up`].
pub fn barrier_distance_down<N>(
    dag: &Dag<N>,
    topo: &TopoOrder,
    mut is_barrier: impl FnMut(NodeId) -> bool,
) -> Vec<u32> {
    let n = dag.node_count();
    let mut dist = vec![u32::MAX; n];
    for &v in topo.order().iter().rev() {
        if is_barrier(v) {
            dist[v.index()] = 0;
            continue;
        }
        let mut best = u32::MAX;
        for &s in dag.succs(v) {
            let d = dist[s.index()].saturating_add(1);
            if d < best {
                best = d;
            }
        }
        dist[v.index()] = best;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_delays(delays: &[f64]) -> (Dag<f64>, Vec<NodeId>) {
        let mut d = Dag::new();
        let ids: Vec<NodeId> = delays.iter().map(|&w| d.add_node(w)).collect();
        for w in ids.windows(2) {
            d.add_edge(w[0], w[1]).unwrap();
        }
        (d, ids)
    }

    #[test]
    fn chain_critical_path() {
        let (d, ids) = chain_with_delays(&[1.0, 2.0, 3.0]);
        let topo = TopoOrder::new(&d);
        let all = NodeSet::full(3);
        let cp = critical_path_within(&d, &topo, &all, |v| *d.weight(v));
        assert!((cp - 6.0).abs() < 1e-12);
        // Dropping the middle node splits the cut: cp = max(1, 3).
        let cut = NodeSet::from_ids(3, [ids[0], ids[2]]);
        let cp = critical_path_within(&d, &topo, &cut, |v| *d.weight(v));
        assert!((cp - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_takes_longer_branch() {
        let mut d: Dag<f64> = Dag::new();
        let a = d.add_node(1.0);
        let b = d.add_node(5.0);
        let c = d.add_node(1.0);
        let e = d.add_node(1.0);
        d.add_edge(a, b).unwrap();
        d.add_edge(a, c).unwrap();
        d.add_edge(b, e).unwrap();
        d.add_edge(c, e).unwrap();
        let topo = TopoOrder::new(&d);
        let cp = critical_path_within(&d, &topo, &NodeSet::full(4), |v| *d.weight(v));
        assert!((cp - 7.0).abs() < 1e-12);
    }

    #[test]
    fn up_down_consistency() {
        let (d, _) = chain_with_delays(&[1.0, 1.0, 1.0, 1.0]);
        let topo = TopoOrder::new(&d);
        let all = NodeSet::full(4);
        let ud = up_down_within(&d, &topo, &all, |v| *d.weight(v));
        for v in d.node_ids() {
            // up + down - delay == total path through v == critical here
            let through = ud.up[v.index()] + ud.down[v.index()] - *d.weight(v);
            assert!((through - ud.critical).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_cut_zero_critical() {
        let (d, _) = chain_with_delays(&[1.0, 1.0]);
        let topo = TopoOrder::new(&d);
        let ud = up_down_within(&d, &topo, &NodeSet::new(2), |_| 1.0);
        assert_eq!(ud.critical, 0.0);
    }

    #[test]
    fn barrier_distances() {
        // b0 -> x -> y -> z, b0 is a barrier; z's nearest down barrier: none.
        let mut d: Dag<()> = Dag::new();
        let b0 = d.add_node(());
        let x = d.add_node(());
        let y = d.add_node(());
        let z = d.add_node(());
        d.add_edge(b0, x).unwrap();
        d.add_edge(x, y).unwrap();
        d.add_edge(y, z).unwrap();
        let topo = TopoOrder::new(&d);
        let up = barrier_distance_up(&d, &topo, |v| v == b0);
        assert_eq!(up[b0.index()], 0);
        assert_eq!(up[x.index()], 1);
        assert_eq!(up[y.index()], 2);
        assert_eq!(up[z.index()], 3);
        let down = barrier_distance_down(&d, &topo, |v| v == b0);
        assert_eq!(down[z.index()], u32::MAX);
        assert_eq!(down[b0.index()], 0);
        let down_z = barrier_distance_down(&d, &topo, |v| v == z);
        assert_eq!(down_z[b0.index()], 3);
        assert_eq!(down_z[y.index()], 1);
    }
}
