//! Random DAG generation for property tests and scaling studies.

use crate::{Dag, NodeId};
use rand::Rng;

/// Configuration for [`random_dag`].
///
/// Nodes are emitted in topological order and each non-source node picks
/// its predecessors uniformly from a sliding window of earlier nodes,
/// which produces the layered, locally-connected shape typical of
/// basic-block data-flow graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDagConfig {
    /// Number of nodes to generate.
    pub nodes: usize,
    /// Minimum in-degree of non-source nodes.
    pub min_fanin: usize,
    /// Maximum in-degree of non-source nodes.
    pub max_fanin: usize,
    /// How far back (in node indices) a predecessor may be; `0` means
    /// unlimited.
    pub window: usize,
    /// Fraction of nodes (after the first) forced to be sources, i.e.
    /// external-input-like nodes with no predecessors. In `0.0..=1.0`.
    pub source_fraction: f64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            nodes: 32,
            min_fanin: 1,
            max_fanin: 2,
            window: 12,
            source_fraction: 0.1,
        }
    }
}

/// Generates a random DAG per `config` using `rng`.
///
/// The result is acyclic by construction (edges always point from lower to
/// higher node index). Node payloads are unit; callers map payloads on as
/// needed.
///
/// # Panics
///
/// Panics if `config.min_fanin > config.max_fanin` or
/// `config.source_fraction` is outside `0.0..=1.0`.
pub fn random_dag(rng: &mut impl Rng, config: &RandomDagConfig) -> Dag<()> {
    assert!(
        config.min_fanin <= config.max_fanin,
        "min_fanin {} > max_fanin {}",
        config.min_fanin,
        config.max_fanin
    );
    assert!(
        (0.0..=1.0).contains(&config.source_fraction),
        "source_fraction {} outside 0..=1",
        config.source_fraction
    );
    let mut dag = Dag::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let v = dag.add_node(());
        if i == 0 || rng.gen_bool(config.source_fraction) {
            continue;
        }
        let lo = if config.window == 0 {
            0
        } else {
            i.saturating_sub(config.window)
        };
        let fanin = rng.gen_range(config.min_fanin..=config.max_fanin).min(i);
        for _ in 0..fanin {
            let p = NodeId::from_index(rng.gen_range(lo..i));
            dag.add_edge_assume_acyclic(p, v);
        }
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopoOrder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_acyclic_graph_of_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = RandomDagConfig {
            nodes: 100,
            ..RandomDagConfig::default()
        };
        let dag = random_dag(&mut rng, &cfg);
        assert_eq!(dag.node_count(), 100);
        // TopoOrder panics on cycles; completing is the acyclicity proof.
        let topo = TopoOrder::new(&dag);
        assert_eq!(topo.len(), 100);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomDagConfig::default();
        let a = random_dag(&mut StdRng::seed_from_u64(42), &cfg);
        let b = random_dag(&mut StdRng::seed_from_u64(42), &cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn respects_fanin_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandomDagConfig {
            nodes: 200,
            min_fanin: 2,
            max_fanin: 3,
            window: 0,
            source_fraction: 0.0,
        };
        let dag = random_dag(&mut rng, &cfg);
        for v in dag.node_ids().skip(2) {
            let d = dag.in_degree(v);
            assert!((2..=3).contains(&d), "node {v} has fanin {d}");
        }
    }

    #[test]
    #[should_panic(expected = "min_fanin")]
    fn invalid_fanin_panics() {
        let cfg = RandomDagConfig {
            min_fanin: 3,
            max_fanin: 1,
            ..RandomDagConfig::default()
        };
        let _ = random_dag(&mut StdRng::seed_from_u64(0), &cfg);
    }
}
