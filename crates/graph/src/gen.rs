//! Random DAG generation for property tests and scaling studies.

use crate::{Dag, NodeId};
use rand::Rng;

/// Configuration for [`random_dag`].
///
/// Nodes are emitted in topological order and each non-source node picks
/// its predecessors uniformly from a sliding window of earlier nodes,
/// which produces the layered, locally-connected shape typical of
/// basic-block data-flow graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDagConfig {
    /// Number of nodes to generate.
    pub nodes: usize,
    /// Minimum in-degree of non-source nodes.
    pub min_fanin: usize,
    /// Maximum in-degree of non-source nodes.
    pub max_fanin: usize,
    /// How far back (in node indices) a predecessor may be; `0` means
    /// unlimited.
    pub window: usize,
    /// Fraction of nodes (after the first) forced to be sources, i.e.
    /// external-input-like nodes with no predecessors. In `0.0..=1.0`.
    pub source_fraction: f64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            nodes: 32,
            min_fanin: 1,
            max_fanin: 2,
            window: 12,
            source_fraction: 0.1,
        }
    }
}

/// Generates a random DAG per `config` using `rng`.
///
/// The result is acyclic by construction (edges always point from lower to
/// higher node index). Node payloads are unit; callers map payloads on as
/// needed.
///
/// # Panics
///
/// Panics if `config.min_fanin > config.max_fanin` or
/// `config.source_fraction` is outside `0.0..=1.0`.
pub fn random_dag(rng: &mut impl Rng, config: &RandomDagConfig) -> Dag<()> {
    assert!(
        config.min_fanin <= config.max_fanin,
        "min_fanin {} > max_fanin {}",
        config.min_fanin,
        config.max_fanin
    );
    assert!(
        (0.0..=1.0).contains(&config.source_fraction),
        "source_fraction {} outside 0..=1",
        config.source_fraction
    );
    let mut dag = Dag::with_capacity(config.nodes);
    for i in 0..config.nodes {
        let v = dag.add_node(());
        if i == 0 || rng.gen_bool(config.source_fraction) {
            continue;
        }
        let lo = if config.window == 0 {
            0
        } else {
            i.saturating_sub(config.window)
        };
        let fanin = rng.gen_range(config.min_fanin..=config.max_fanin).min(i);
        for _ in 0..fanin {
            let p = NodeId::from_index(rng.gen_range(lo..i));
            dag.add_edge_assume_acyclic(p, v);
        }
    }
    dag
}

/// Number of structural choices node `i` (0-indexed, in topological
/// order) has in the [`enumerate_dags`] scheme: be a source, take one
/// predecessor among the `i` earlier nodes, or take an unordered pair of
/// earlier nodes *with repetition* (a node may consume the same value
/// twice, matching the DAG's parallel-edge support).
fn node_choices(i: u64) -> u64 {
    1 + i + i * (i + 1) / 2
}

/// Number of DAGs [`enumerate_dags`] yields for `n` nodes.
///
/// The enumeration covers every DAG on `n` topologically ordered nodes
/// with in-degree ≤ 2 (the shape of binary-operator data-flow graphs);
/// each node independently picks one of [`node_choices`] predecessor
/// sets, so the count is the product over nodes.
pub fn enumeration_count(n: usize) -> u64 {
    (0..n as u64).map(node_choices).product()
}

/// Builds the DAG at `index` in the deterministic enumeration order of
/// [`enumerate_dags`]; `index` is interpreted in the mixed-radix system
/// whose digit `i` has base [`node_choices`]`(i)`.
///
/// # Panics
///
/// Panics if `index >= enumeration_count(n)`.
pub fn nth_dag(n: usize, index: u64) -> Dag<()> {
    assert!(
        index < enumeration_count(n),
        "index {index} out of range for {n}-node enumeration"
    );
    let mut rest = index;
    let mut dag = Dag::with_capacity(n);
    for i in 0..n as u64 {
        let v = dag.add_node(());
        let digit = rest % node_choices(i);
        rest /= node_choices(i);
        if digit == 0 {
            continue; // source node
        }
        if digit <= i {
            // one predecessor: node digit-1
            dag.add_edge_assume_acyclic(NodeId::from_index((digit - 1) as usize), v);
            continue;
        }
        // pair index in 0..i*(i+1)/2 over (j, k) with j <= k < i
        let mut p = digit - 1 - i;
        let mut j = 0u64;
        while p >= i - j {
            p -= i - j;
            j += 1;
        }
        let k = j + p;
        dag.add_edge_assume_acyclic(NodeId::from_index(j as usize), v);
        dag.add_edge_assume_acyclic(NodeId::from_index(k as usize), v);
    }
    dag
}

/// Enumerates every DAG on `n` topologically ordered nodes with
/// in-degree ≤ 2, in a deterministic order.
///
/// Intended for exhaustive oracle tests at small `n`: the count grows as
/// roughly `(n²/2)!^(1/n)` per node (1, 3, 18, 180, 2 700, 56 700,
/// 1 587 600 for n = 1..=7), so callers wanting `n ≥ 6` coverage should
/// stride-sample indices via [`nth_dag`] instead of draining the
/// iterator.
pub fn enumerate_dags(n: usize) -> impl Iterator<Item = Dag<()>> {
    (0..enumeration_count(n)).map(move |i| nth_dag(n, i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopoOrder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_acyclic_graph_of_requested_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = RandomDagConfig {
            nodes: 100,
            ..RandomDagConfig::default()
        };
        let dag = random_dag(&mut rng, &cfg);
        assert_eq!(dag.node_count(), 100);
        // TopoOrder panics on cycles; completing is the acyclicity proof.
        let topo = TopoOrder::new(&dag);
        assert_eq!(topo.len(), 100);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomDagConfig::default();
        let a = random_dag(&mut StdRng::seed_from_u64(42), &cfg);
        let b = random_dag(&mut StdRng::seed_from_u64(42), &cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn respects_fanin_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = RandomDagConfig {
            nodes: 200,
            min_fanin: 2,
            max_fanin: 3,
            window: 0,
            source_fraction: 0.0,
        };
        let dag = random_dag(&mut rng, &cfg);
        for v in dag.node_ids().skip(2) {
            let d = dag.in_degree(v);
            assert!((2..=3).contains(&d), "node {v} has fanin {d}");
        }
    }

    #[test]
    fn enumeration_counts_match_formula() {
        for (n, expected) in [(0, 1), (1, 1), (2, 3), (3, 18), (4, 180), (5, 2700)] {
            assert_eq!(enumeration_count(n), expected, "n = {n}");
        }
        assert_eq!(enumeration_count(6), 56_700);
        assert_eq!(enumeration_count(7), 1_587_600);
    }

    #[test]
    fn enumerated_dags_are_distinct_acyclic_and_bounded() {
        for n in 1..=4 {
            let mut seen = std::collections::HashSet::new();
            let mut count = 0u64;
            for dag in enumerate_dags(n) {
                assert_eq!(dag.node_count(), n);
                let topo = TopoOrder::new(&dag); // completes <=> acyclic
                assert_eq!(topo.len(), n);
                for v in dag.node_ids() {
                    assert!(dag.in_degree(v) <= 2, "in-degree above 2 at {v}");
                }
                let key: Vec<(usize, usize)> =
                    dag.edges().map(|(a, b)| (a.index(), b.index())).collect();
                assert!(seen.insert(key), "duplicate structure in enumeration");
                count += 1;
            }
            assert_eq!(count, enumeration_count(n));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_dag_rejects_out_of_range_index() {
        let _ = nth_dag(3, enumeration_count(3));
    }

    #[test]
    #[should_panic(expected = "min_fanin")]
    fn invalid_fanin_panics() {
        let cfg = RandomDagConfig {
            min_fanin: 3,
            max_fanin: 1,
            ..RandomDagConfig::default()
        };
        let _ = random_dag(&mut StdRng::seed_from_u64(0), &cfg);
    }
}
