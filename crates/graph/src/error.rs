use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced by graph mutation.
///
/// ```
/// use isegen_graph::{Dag, GraphError};
///
/// let mut dag: Dag<()> = Dag::new();
/// let a = dag.add_node(());
/// let b = dag.add_node(());
/// dag.add_edge(a, b).unwrap();
/// assert!(matches!(dag.add_edge(b, a), Err(GraphError::WouldCycle { .. })));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Adding the edge would create a directed cycle.
    WouldCycle {
        /// Source endpoint of the rejected edge.
        src: NodeId,
        /// Destination endpoint of the rejected edge.
        dst: NodeId,
    },
    /// A node id does not belong to the graph.
    NodeOutOfBounds {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop (edge from a node to itself) was requested.
    SelfLoop {
        /// The node for which the self-loop was requested.
        node: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::WouldCycle { src, dst } => {
                write!(f, "edge {src} -> {dst} would create a cycle")
            }
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed in a dag")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::WouldCycle {
            src: NodeId::from_index(1),
            dst: NodeId::from_index(2),
        };
        assert_eq!(e.to_string(), "edge n1 -> n2 would create a cycle");

        let e = GraphError::NodeOutOfBounds {
            node: NodeId::from_index(9),
            node_count: 3,
        };
        assert_eq!(
            e.to_string(),
            "node n9 out of bounds for graph with 3 nodes"
        );

        let e = GraphError::SelfLoop {
            node: NodeId::from_index(0),
        };
        assert_eq!(
            e.to_string(),
            "self-loop on node n0 is not allowed in a dag"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
