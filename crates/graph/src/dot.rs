//! Graphviz DOT export for debugging and figures.

use crate::{Dag, NodeId, NodeSet};
use std::fmt::Write as _;

/// Renders a [`Dag`] to Graphviz DOT, optionally highlighting a cut.
///
/// Highlighted nodes are drawn filled; the label of each node is produced
/// by `label`.
///
/// ```
/// use isegen_graph::{Dag, dot};
///
/// # fn main() -> Result<(), isegen_graph::GraphError> {
/// let mut dag: Dag<&str> = Dag::new();
/// let a = dag.add_node("add");
/// let b = dag.add_node("mul");
/// dag.add_edge(a, b)?;
/// let text = dot::to_dot(&dag, |_, w| w.to_string(), None);
/// assert!(text.contains("digraph"));
/// assert!(text.contains("add"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot<N>(
    dag: &Dag<N>,
    mut label: impl FnMut(NodeId, &N) -> String,
    highlight: Option<&NodeSet>,
) -> String {
    let mut out = String::new();
    out.push_str("digraph dfg {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for (id, w) in dag.nodes() {
        let lbl = label(id, w).replace('"', "\\\"");
        let style = match highlight {
            Some(cut) if cut.contains(id) => ", style=filled, fillcolor=lightblue",
            _ => "",
        };
        let _ = writeln!(out, "  {} [label=\"{}\"{}];", id.index(), lbl, style);
    }
    for (src, dst) in dag.edges() {
        let _ = writeln!(out, "  {} -> {};", src.index(), dst.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_edges_and_highlight() {
        let mut d: Dag<u32> = Dag::new();
        let a = d.add_node(1);
        let b = d.add_node(2);
        d.add_edge(a, b).unwrap();
        let cut = NodeSet::from_ids(2, [b]);
        let text = to_dot(&d, |id, w| format!("{id}:{w}"), Some(&cut));
        assert!(text.contains("0 [label=\"n0:1\"];"));
        assert!(text.contains("1 [label=\"n1:2\", style=filled"));
        assert!(text.contains("0 -> 1;"));
    }

    #[test]
    fn escapes_quotes() {
        let mut d: Dag<&str> = Dag::new();
        d.add_node("say \"hi\"");
        let text = to_dot(&d, |_, w| w.to_string(), None);
        assert!(text.contains("say \\\"hi\\\""));
    }
}
