//! Convexity tests for cuts.
//!
//! A cut `C` is *convex* when there is no path from a node in `C` to
//! another node in `C` that passes through a node outside `C` (paper §2).
//! Convexity is the architectural-feasibility condition for an ISE: all
//! inputs must be available when the custom instruction issues.

use crate::{Dag, NodeId, NodeSet, Reachability};

/// Tests whether `cut` is convex using precomputed reachability.
///
/// Runs in O(|cut| · n/64): the cut is convex iff no node outside it is
/// simultaneously a descendant of some cut node and an ancestor of some cut
/// node.
///
/// ```
/// use isegen_graph::{Dag, NodeSet, TopoOrder, Reachability, convex};
///
/// # fn main() -> Result<(), isegen_graph::GraphError> {
/// let mut dag: Dag<()> = Dag::new();
/// let a = dag.add_node(());
/// let b = dag.add_node(());
/// let c = dag.add_node(());
/// dag.add_edge(a, b)?;
/// dag.add_edge(b, c)?;
/// let reach = Reachability::new(&dag, &TopoOrder::new(&dag));
/// let hole = NodeSet::from_ids(3, [a, c]);
/// assert!(!convex::is_convex(&reach, &hole));
/// # Ok(())
/// # }
/// ```
pub fn is_convex(reach: &Reachability, cut: &NodeSet) -> bool {
    violators(reach, cut).is_empty()
}

/// Returns the set of nodes outside `cut` that lie on a path between two
/// cut nodes — the witnesses of a convexity violation. Empty iff convex.
pub fn violators(reach: &Reachability, cut: &NodeSet) -> NodeSet {
    let n = reach.node_count();
    let mut below = NodeSet::new(n);
    let mut above = NodeSet::new(n);
    for v in cut.iter() {
        below.union_with(reach.descendants(v));
        above.union_with(reach.ancestors(v));
    }
    below.intersect_with(&above);
    below.subtract(cut);
    below
}

/// Reference convexity check by explicit path search, used to validate
/// [`is_convex`] in tests. O(|cut| · (V+E)).
pub fn is_convex_brute<N>(dag: &Dag<N>, cut: &NodeSet) -> bool {
    // For every cut node u, walk forward through non-cut nodes only;
    // reaching a cut node that way is a violation.
    for u in cut.iter() {
        let mut stack: Vec<NodeId> = dag
            .succs(u)
            .iter()
            .copied()
            .filter(|s| !cut.contains(*s))
            .collect();
        let mut visited = vec![false; dag.node_count()];
        while let Some(v) = stack.pop() {
            if visited[v.index()] {
                continue;
            }
            visited[v.index()] = true;
            for &s in dag.succs(v) {
                if cut.contains(s) {
                    return false;
                }
                stack.push(s);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopoOrder;

    fn chain(n: usize) -> Dag<()> {
        let mut d = Dag::new();
        let ids: Vec<NodeId> = (0..n).map(|_| d.add_node(())).collect();
        for w in ids.windows(2) {
            d.add_edge(w[0], w[1]).unwrap();
        }
        d
    }

    #[test]
    fn empty_and_singleton_are_convex() {
        let d = chain(3);
        let r = Reachability::new(&d, &TopoOrder::new(&d));
        assert!(is_convex(&r, &NodeSet::new(3)));
        let single = NodeSet::from_ids(3, [NodeId::from_index(1)]);
        assert!(is_convex(&r, &single));
    }

    #[test]
    fn hole_in_chain_is_not_convex() {
        let d = chain(5);
        let r = Reachability::new(&d, &TopoOrder::new(&d));
        let cut = NodeSet::from_ids(5, [NodeId::from_index(0), NodeId::from_index(4)]);
        assert!(!is_convex(&r, &cut));
        let v = violators(&r, &cut);
        assert_eq!(v.len(), 3);
        assert!(!is_convex_brute(&d, &cut));
    }

    #[test]
    fn disconnected_but_convex() {
        // Two independent chains; picking one node from each is convex:
        // no path connects them at all.
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        let c = d.add_node(());
        let e = d.add_node(());
        d.add_edge(a, b).unwrap();
        d.add_edge(c, e).unwrap();
        let r = Reachability::new(&d, &TopoOrder::new(&d));
        let cut = NodeSet::from_ids(4, [a, c]);
        assert!(is_convex(&r, &cut));
        assert!(is_convex_brute(&d, &cut));
    }

    #[test]
    fn reconverging_paths() {
        // a -> b -> d, a -> c -> d. Cut {a, d} escapes through both b and c.
        let mut g: Dag<()> = Dag::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        let r = Reachability::new(&g, &TopoOrder::new(&g));
        let cut = NodeSet::from_ids(4, [a, d]);
        assert!(!is_convex(&r, &cut));
        assert_eq!(violators(&r, &cut).len(), 2);
        // {a, b, d} still escapes through c.
        let cut = NodeSet::from_ids(4, [a, b, d]);
        assert!(!is_convex(&r, &cut));
        // full diamond is convex.
        let cut = NodeSet::from_ids(4, [a, b, c, d]);
        assert!(is_convex(&r, &cut));
    }
}
