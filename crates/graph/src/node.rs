use std::fmt;

/// Identifier of a node inside a [`Dag`](crate::Dag).
///
/// Node ids are dense indices assigned in insertion order, which lets every
/// per-node attribute live in a plain `Vec` and every node set in a
/// [`NodeSet`](crate::NodeSet) bitset.
///
/// ```
/// use isegen_graph::Dag;
///
/// let mut dag: Dag<()> = Dag::new();
/// let n = dag.add_node(());
/// assert_eq!(n.index(), 0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Mostly useful when reconstructing ids from serialized data or dense
    /// per-node tables; ids handed out by [`Dag::add_node`](crate::Dag::add_node)
    /// should be preferred.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn display_and_debug() {
        let id = NodeId::from_index(7);
        assert_eq!(format!("{id}"), "n7");
        assert_eq!(format!("{id:?}"), "n7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn oversized_index_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
