//! Cluster contraction: the quotient-graph machinery under the
//! multilevel (coarsen → search → uncoarsen) pipeline.
//!
//! A [`Contraction`] partitions a DAG's nodes into clusters and renumbers
//! the clusters topologically, so the quotient graph can be built with
//! the unchecked fast edge path and downstream code keeps the repo-wide
//! invariant that node indices are emitted in topological order. The
//! *caller* is responsible for choosing a path-closed clustering (no
//! directed path may leave a cluster and re-enter it); a clustering that
//! violates this makes the quotient cyclic, which [`Contraction::new`]
//! detects and rejects.

use crate::{Dag, NodeId, NodeSet};

/// A partition of a DAG's nodes into contractible clusters, with the
/// clusters renumbered in a topological order of the quotient graph.
///
/// ```
/// use isegen_graph::{Contraction, Dag};
///
/// # fn main() -> Result<(), isegen_graph::GraphError> {
/// let mut dag: Dag<u32> = Dag::new();
/// let a = dag.add_node(1);
/// let b = dag.add_node(2);
/// let c = dag.add_node(4);
/// dag.add_edge(a, b)?;
/// dag.add_edge(b, c)?;
/// // Merge a and b; keep c alone. Labels are arbitrary per-cluster tags.
/// let con = Contraction::new(&dag, &[7, 7, 9]).expect("path-closed");
/// assert_eq!(con.coarse_count(), 2);
/// let coarse = con.quotient(&dag, |_, members| {
///     members.iter().map(|&m| dag.weight(m)).sum::<u32>()
/// });
/// assert_eq!(coarse.node_count(), 2);
/// assert_eq!(*coarse.weight(con.coarse_of(a)), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Contraction {
    /// Fine node index → coarse node id.
    coarse_of: Vec<NodeId>,
    /// Coarse node id → member fine nodes, ascending by index.
    members: Vec<Vec<NodeId>>,
}

impl Contraction {
    /// Builds the contraction of `dag` under `cluster`: fine nodes `i`
    /// and `j` merge iff `cluster[i] == cluster[j]`. Labels are arbitrary
    /// (they only need to be equal within a cluster); coarse ids are
    /// assigned along a topological order of the quotient, so every
    /// quotient edge runs from a lower to a higher coarse id.
    ///
    /// Returns `None` when the quotient graph has a directed cycle, i.e.
    /// the clustering was not path-closed.
    ///
    /// # Panics
    ///
    /// Panics if `cluster.len()` differs from the DAG's node count.
    pub fn new<N>(dag: &Dag<N>, cluster: &[u32]) -> Option<Contraction> {
        let n = dag.node_count();
        assert_eq!(cluster.len(), n, "one cluster label per node");
        // Densify labels in first-seen (node index) order — deterministic
        // whatever the caller's labelling scheme.
        let mut dense_of_label: std::collections::HashMap<u32, u32> =
            std::collections::HashMap::new();
        let mut dense = vec![0u32; n];
        let mut k = 0u32;
        for i in 0..n {
            let d = *dense_of_label.entry(cluster[i]).or_insert_with(|| {
                let d = k;
                k += 1;
                d
            });
            dense[i] = d;
        }
        let k = k as usize;
        // Quotient in-degrees with multiplicity (intra-cluster edges drop).
        let mut indeg = vec![0usize; k];
        let mut q_succs: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (src, dst) in dag.edges() {
            let (a, b) = (dense[src.index()], dense[dst.index()]);
            if a != b {
                q_succs[a as usize].push(b);
                indeg[b as usize] += 1;
            }
        }
        // Kahn over the provisional quotient; ties to the lowest
        // provisional id so the renumbering is deterministic.
        let mut ready: Vec<u32> = (0..k as u32).filter(|&d| indeg[d as usize] == 0).collect();
        let mut rank = vec![u32::MAX; k];
        let mut head = 0;
        let mut placed = 0u32;
        while head < ready.len() {
            let d = ready[head];
            head += 1;
            rank[d as usize] = placed;
            placed += 1;
            for &s in &q_succs[d as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        if placed as usize != k {
            return None; // quotient has a cycle: clustering not path-closed
        }
        let mut coarse_of = Vec::with_capacity(n);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for i in 0..n {
            let c = rank[dense[i] as usize];
            coarse_of.push(NodeId::from_index(c as usize));
            members[c as usize].push(NodeId::from_index(i));
        }
        Some(Contraction { coarse_of, members })
    }

    /// Number of clusters (coarse nodes).
    #[inline]
    pub fn coarse_count(&self) -> usize {
        self.members.len()
    }

    /// Number of fine nodes this contraction was built over.
    #[inline]
    pub fn fine_count(&self) -> usize {
        self.coarse_of.len()
    }

    /// The coarse node that `fine` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `fine` is out of bounds.
    #[inline]
    pub fn coarse_of(&self, fine: NodeId) -> NodeId {
        self.coarse_of[fine.index()]
    }

    /// The fine members of `coarse`, ascending by fine index.
    ///
    /// # Panics
    ///
    /// Panics if `coarse` is out of bounds.
    #[inline]
    pub fn members(&self, coarse: NodeId) -> &[NodeId] {
        &self.members[coarse.index()]
    }

    /// Builds the quotient DAG: one node per cluster (weight summarized
    /// from the members by `summarize`), one edge per inter-cluster fine
    /// edge **with multiplicity preserved** (operand-slot counting needs
    /// it), intra-cluster edges dropped. Coarse ids are topologically
    /// ordered by construction.
    pub fn quotient<N, M>(
        &self,
        dag: &Dag<N>,
        mut summarize: impl FnMut(NodeId, &[NodeId]) -> M,
    ) -> Dag<M> {
        let mut coarse = Dag::with_capacity(self.coarse_count());
        for (c, members) in self.members.iter().enumerate() {
            coarse.add_node(summarize(NodeId::from_index(c), members));
        }
        for (src, dst) in dag.edges() {
            let (a, b) = (self.coarse_of(src), self.coarse_of(dst));
            if a != b {
                // Safe: coarse ids follow a quotient topological order.
                coarse.add_edge_assume_acyclic(a, b);
            }
        }
        coarse
    }

    /// Projects a coarse node set down to the fine level: the union of
    /// the members of every set cluster.
    ///
    /// # Panics
    ///
    /// Panics if `coarse_set`'s capacity differs from
    /// [`Contraction::coarse_count`].
    pub fn project(&self, coarse_set: &NodeSet) -> NodeSet {
        assert_eq!(
            coarse_set.capacity(),
            self.coarse_count(),
            "coarse set does not match contraction"
        );
        let mut fine = NodeSet::new(self.fine_count());
        for c in coarse_set.iter() {
            for &m in self.members(c) {
                fine.insert(m);
            }
        }
        fine
    }

    /// Lifts a fine node set up to the coarse level: the set of clusters
    /// with at least one member in `fine_set`.
    ///
    /// # Panics
    ///
    /// Panics if `fine_set`'s capacity differs from
    /// [`Contraction::fine_count`].
    pub fn lift(&self, fine_set: &NodeSet) -> NodeSet {
        assert_eq!(
            fine_set.capacity(),
            self.fine_count(),
            "fine set does not match contraction"
        );
        let mut coarse = NodeSet::new(self.coarse_count());
        for v in fine_set.iter() {
            coarse.insert(self.coarse_of(v));
        }
        coarse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a → b → c, plus a → c.
    fn chain_with_skip() -> (Dag<u32>, [NodeId; 3]) {
        let mut d = Dag::new();
        let a = d.add_node(1);
        let b = d.add_node(2);
        let c = d.add_node(4);
        d.add_edge(a, b).unwrap();
        d.add_edge(b, c).unwrap();
        d.add_edge(a, c).unwrap();
        (d, [a, b, c])
    }

    #[test]
    fn simple_pair_contracts() {
        let (d, [a, b, c]) = chain_with_skip();
        let con = Contraction::new(&d, &[5, 5, 8]).expect("b,c path-closed? no: a,b");
        assert_eq!(con.coarse_count(), 2);
        assert_eq!(con.coarse_of(a), con.coarse_of(b));
        assert_ne!(con.coarse_of(a), con.coarse_of(c));
        let q = con.quotient(&d, |_, ms| ms.iter().map(|&m| d.weight(m)).sum::<u32>());
        assert_eq!(q.node_count(), 2);
        // Two fine edges land on c: b→c and a→c; multiplicity preserved.
        assert_eq!(q.edge_count(), 2);
        assert_eq!(*q.weight(con.coarse_of(a)), 3);
        assert_eq!(*q.weight(con.coarse_of(c)), 4);
    }

    #[test]
    fn non_path_closed_cluster_rejected() {
        let (d, _) = chain_with_skip();
        // {a, c} is not path-closed: a → b → c leaves and re-enters.
        assert!(Contraction::new(&d, &[5, 8, 5]).is_none());
    }

    #[test]
    fn coarse_ids_are_topo_ordered() {
        // Build a graph where naive first-member numbering would break
        // the topological invariant: z (index 0) consumes both x and y.
        let mut d: Dag<()> = Dag::new();
        let z = d.add_node(());
        let x = d.add_node(());
        let y = d.add_node(());
        d.add_edge(x, z).unwrap();
        d.add_edge(y, z).unwrap();
        let con = Contraction::new(&d, &[0, 1, 2]).unwrap();
        let q = con.quotient(&d, |_, _| ());
        for (s, t) in q.edges() {
            assert!(s.index() < t.index(), "quotient edge {s}→{t} not topo");
        }
        assert_eq!(q.node_count(), 3);
        assert_eq!(q.edge_count(), 2);
    }

    #[test]
    fn project_and_lift_roundtrip() {
        let (d, [a, b, c]) = chain_with_skip();
        let con = Contraction::new(&d, &[5, 5, 8]).unwrap();
        let mut coarse = NodeSet::new(con.coarse_count());
        coarse.insert(con.coarse_of(a));
        let fine = con.project(&coarse);
        assert!(fine.contains(a) && fine.contains(b) && !fine.contains(c));
        assert_eq!(con.lift(&fine), coarse);
    }

    #[test]
    fn singleton_identity() {
        let (d, [a, b, c]) = chain_with_skip();
        let con = Contraction::new(&d, &[0, 1, 2]).unwrap();
        assert_eq!(con.coarse_count(), 3);
        let q = con.quotient(&d, |_, ms| {
            assert_eq!(ms.len(), 1);
            *d.weight(ms[0])
        });
        assert_eq!(q.node_count(), 3);
        assert_eq!(q.edge_count(), 3);
        for v in [a, b, c] {
            assert_eq!(con.members(con.coarse_of(v)), &[v]);
        }
    }
}
