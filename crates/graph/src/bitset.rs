use crate::NodeId;
use std::fmt;

const WORD_BITS: usize = 64;

/// Words per chunk of the word-algebra kernels. Four `u64`s is one
/// 256-bit vector register; the fixed-trip inner loops below compile to
/// straight-line vector code on AVX2-class targets (and two 128-bit ops
/// on NEON) without any explicit SIMD, keeping the crate dependency-free.
const LANES: usize = 4;

/// Applies `op` word-wise (`dst[i] ← op(dst[i], src[i])`) and returns the
/// total popcount of the result — the shared kernel of the in-place set
/// algebra. Fusing the recount into the same pass halves the memory
/// traffic of the old `zip-then-recount` shape.
#[inline]
fn zip_apply_count(dst: &mut [u64], src: &[u64], op: impl Fn(u64, u64) -> u64 + Copy) -> usize {
    debug_assert_eq!(dst.len(), src.len());
    let mut ones = 0usize;
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (dc, sc) in d.by_ref().zip(s.by_ref()) {
        for l in 0..LANES {
            let w = op(dc[l], sc[l]);
            dc[l] = w;
            ones += w.count_ones() as usize;
        }
    }
    for (dw, &sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        let w = op(*dw, sw);
        *dw = w;
        ones += w.count_ones() as usize;
    }
    ones
}

/// Folds `op` word-wise over two sets and reduces with `|`, short-circuit
/// checking `!= 0` once per chunk — the kernel behind
/// [`NodeSet::is_disjoint`] / [`NodeSet::is_subset`]. The chunk-level
/// early exit keeps the common "hit in the first cache line" cost of the
/// old per-word loop while letting the chunk body vectorize.
#[inline]
fn zip_any_nonzero(a: &[u64], b: &[u64], op: impl Fn(u64, u64) -> u64 + Copy) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (aw, bw) in ac.by_ref().zip(bc.by_ref()) {
        let mut hit = 0u64;
        for l in 0..LANES {
            hit |= op(aw[l], bw[l]);
        }
        if hit != 0 {
            return true;
        }
    }
    ac.remainder()
        .iter()
        .zip(bc.remainder())
        .any(|(&x, &y)| op(x, y) != 0)
}

/// Word-wise popcount reduction of `op` over two sets — the kernel of
/// [`NodeSet::intersection_len`].
#[inline]
fn zip_count(a: &[u64], b: &[u64], op: impl Fn(u64, u64) -> u64 + Copy) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut ones = 0usize;
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (aw, bw) in ac.by_ref().zip(bc.by_ref()) {
        for l in 0..LANES {
            ones += op(aw[l], bw[l]).count_ones() as usize;
        }
    }
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        ones += op(x, y).count_ones() as usize;
    }
    ones
}

/// A dense bitset over the node ids of one graph.
///
/// `NodeSet` is the workhorse of the ISE algorithms: cuts, marks, barrier
/// masks and reachability rows are all `NodeSet`s, so set algebra
/// (union/intersection/difference) runs word-parallel. The capacity is fixed
/// at construction to the node count of the graph the set indexes into.
///
/// ```
/// use isegen_graph::{NodeSet, NodeId};
///
/// let mut set = NodeSet::new(100);
/// set.insert(NodeId::from_index(3));
/// set.insert(NodeId::from_index(64));
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(NodeId::from_index(3)));
/// let ids: Vec<usize> = set.iter().map(|n| n.index()).collect();
/// assert_eq!(ids, vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl Default for NodeSet {
    /// An empty set of capacity 0 — the placeholder state of pooled
    /// arena buffers before [`NodeSet::reset`] sizes them to a block.
    fn default() -> Self {
        NodeSet::new(0)
    }
}

impl NodeSet {
    /// Creates an empty set able to hold node indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
            len: 0,
        }
    }

    /// Creates a set containing every node index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut set = NodeSet::new(capacity);
        for w in set.words.iter_mut() {
            *w = u64::MAX;
        }
        set.mask_tail();
        set.len = capacity;
        set
    }

    /// Builds a set of the given capacity from an iterator of node ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of bounds for `capacity`.
    pub fn from_ids<I: IntoIterator<Item = NodeId>>(capacity: usize, ids: I) -> Self {
        let mut set = NodeSet::new(capacity);
        for id in ids {
            set.insert(id);
        }
        set
    }

    /// Number of node indices this set can hold (`0..capacity`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of nodes currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the set contains no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, id: NodeId) {
        assert!(
            id.index() < self.capacity,
            "node {id} out of bounds for NodeSet of capacity {}",
            self.capacity
        );
    }

    /// Inserts a node; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds for this set's capacity.
    #[inline]
    pub fn insert(&mut self, id: NodeId) -> bool {
        self.check(id);
        let (w, b) = (id.index() / WORD_BITS, id.index() % WORD_BITS);
        let mask = 1u64 << b;
        let was_absent = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += was_absent as usize;
        was_absent
    }

    /// Removes a node; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds for this set's capacity.
    #[inline]
    pub fn remove(&mut self, id: NodeId) -> bool {
        self.check(id);
        let (w, b) = (id.index() / WORD_BITS, id.index() % WORD_BITS);
        let mask = 1u64 << b;
        let was_present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        self.len -= was_present as usize;
        was_present
    }

    /// Toggles membership of a node; returns `true` if it is now present.
    #[inline]
    pub fn toggle(&mut self, id: NodeId) -> bool {
        if self.contains(id) {
            self.remove(id);
            false
        } else {
            self.insert(id);
            true
        }
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        let idx = id.index();
        if idx >= self.capacity {
            return false;
        }
        self.words[idx / WORD_BITS] & (1u64 << (idx % WORD_BITS)) != 0
    }

    /// Removes every node from the set.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
        self.len = 0;
    }

    /// Re-initialises the set as empty with a (possibly different)
    /// capacity, reusing the word buffer — the arena path: resetting to a
    /// capacity the buffer has already held never allocates.
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(WORD_BITS), 0);
        self.capacity = capacity;
        self.len = 0;
    }

    /// Makes `self` an exact copy of `other` (capacity included),
    /// reusing the word buffer where possible.
    pub fn copy_from(&mut self, other: &NodeSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.capacity = other.capacity;
        self.len = other.len;
    }

    /// Inserts every node index in `0..capacity` — the in-place
    /// counterpart of [`NodeSet::full`].
    pub fn insert_all(&mut self) {
        for w in self.words.iter_mut() {
            *w = u64::MAX;
        }
        self.mask_tail();
        self.len = self.capacity;
    }

    /// In-place union: `self ← self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &NodeSet) {
        self.check_same(other);
        self.len = zip_apply_count(&mut self.words, &other.words, |a, b| a | b);
    }

    /// In-place intersection: `self ← self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        self.check_same(other);
        self.len = zip_apply_count(&mut self.words, &other.words, |a, b| a & b);
    }

    /// In-place difference: `self ← self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn subtract(&mut self, other: &NodeSet) {
        self.check_same(other);
        self.len = zip_apply_count(&mut self.words, &other.words, |a, b| a & !b);
    }

    /// Returns `true` when the two sets share no node.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        self.check_same(other);
        !zip_any_nonzero(&self.words, &other.words, |a, b| a & b)
    }

    /// Returns `true` when the two sets share at least one node.
    ///
    /// Word-parallel with early exit — the fast path for "does this
    /// candidate's hull touch the cut" style queries, which would
    /// otherwise materialise an intersection or count every word.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[inline]
    pub fn intersects(&self, other: &NodeSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Returns `true` when every node of `self` is also in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.check_same(other);
        !zip_any_nonzero(&self.words, &other.words, |a, b| a & !b)
    }

    /// Number of nodes in `self ∩ other` without materialising the result.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersection_len(&self, other: &NodeSet) -> usize {
        self.check_same(other);
        zip_count(&self.words, &other.words, |a, b| a & b)
    }

    /// The smallest node id in the set, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.first_set().map(NodeId::from_index)
    }

    /// The smallest set *index* in the set, if any: the word-level
    /// primitive behind [`NodeSet::first`].
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// The `i`-th 64-bit word of the backing storage (bit `b` of word `i`
    /// is node index `64·i + b`). Low-level companion of
    /// [`NodeSet::for_each_word`] for zipping two sets word by word.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Unions `bits` into the `i`-th backing word — the write-side
    /// companion of [`NodeSet::word`] for callers that assemble a mask
    /// from several sets' words (`a.word(i) & !b.word(i)`) and fold it
    /// in without materialising a scratch set. `bits` must not address
    /// indices beyond this set's capacity.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn union_word(&mut self, i: usize, bits: u64) {
        debug_assert!(
            i + 1 < self.words.len()
                || self.capacity.is_multiple_of(WORD_BITS)
                || bits & !((1u64 << (self.capacity % WORD_BITS)) - 1) == 0,
            "union_word bits past capacity {}",
            self.capacity
        );
        let w = &mut self.words[i];
        self.len += (bits & !*w).count_ones() as usize;
        *w |= bits;
    }

    /// Number of 64-bit words in the backing storage.
    #[inline]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Calls `f(word_index, word)` for every **non-zero** word of the set,
    /// in increasing word order. This is the allocation-free way to walk a
    /// set (or an intersection, by masking with [`NodeSet::word`] of a
    /// second set) without paying per-bit iterator overhead on sparse
    /// sets.
    #[inline]
    pub fn for_each_word(&self, mut f: impl FnMut(usize, u64)) {
        // One OR per chunk decides whether any of its four words need the
        // per-word callback, so sparse sets skip 256 bits per branch.
        let mut chunks = self.words.chunks_exact(LANES);
        let mut wi = 0usize;
        for c in chunks.by_ref() {
            if (c[0] | c[1] | c[2] | c[3]) != 0 {
                for (l, &w) in c.iter().enumerate() {
                    if w != 0 {
                        f(wi + l, w);
                    }
                }
            }
            wi += LANES;
        }
        for (l, &w) in chunks.remainder().iter().enumerate() {
            if w != 0 {
                f(wi + l, w);
            }
        }
    }

    /// Iterates the node ids in the set in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn check_same(&self, other: &NodeSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "NodeSet capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }

    fn mask_tail(&mut self) {
        let tail = self.capacity % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Iterator over the node ids of a [`NodeSet`], produced by
/// [`NodeSet::iter`].
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId::from_index(self.word_idx * WORD_BITS + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(id(0)));
        assert!(!s.insert(id(0)));
        assert!(s.insert(id(129)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(id(0)));
        assert!(s.contains(id(129)));
        assert!(!s.contains(id(64)));
        assert!(s.remove(id(0)));
        assert!(!s.remove(id(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn toggle_flips_membership() {
        let mut s = NodeSet::new(8);
        assert!(s.toggle(id(3)));
        assert!(s.contains(id(3)));
        assert!(!s.toggle(id(3)));
        assert!(!s.contains(id(3)));
    }

    #[test]
    fn full_masks_tail_bits() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        assert_eq!(s.iter().count(), 70);
        assert!(s.contains(id(69)));
        assert!(!s.contains(id(70)));
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_ids(10, [id(1), id(2), id(3)]);
        let b = NodeSet::from_ids(10, [id(3), id(4)]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u, NodeSet::from_ids(10, [id(1), id(2), id(3), id(4)]));

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i, NodeSet::from_ids(10, [id(3)]));

        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d, NodeSet::from_ids(10, [id(1), id(2)]));

        assert_eq!(a.intersection_len(&b), 1);
        assert!(!a.is_disjoint(&b));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn disjoint_sets() {
        let a = NodeSet::from_ids(200, [id(0), id(100)]);
        let b = NodeSet::from_ids(200, [id(1), id(199)]);
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn iter_in_order_across_words() {
        let ids = [id(0), id(63), id(64), id(65), id(127), id(128)];
        let s = NodeSet::from_ids(200, ids);
        let collected: Vec<NodeId> = s.iter().collect();
        assert_eq!(collected, ids);
    }

    #[test]
    fn first_and_empty() {
        let mut s = NodeSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        s.insert(id(77));
        s.insert(id(80));
        assert_eq!(s.first(), Some(id(77)));
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = NodeSet::new(4);
        assert!(!s.contains(id(10)));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_range_panics() {
        let mut s = NodeSet::new(4);
        s.insert(id(4));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn algebra_capacity_mismatch_panics() {
        let mut a = NodeSet::new(4);
        let b = NodeSet::new(5);
        a.union_with(&b);
    }

    #[test]
    fn extend_collects() {
        let mut s = NodeSet::new(10);
        s.extend([id(1), id(2)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn intersects_agrees_with_is_disjoint() {
        let a = NodeSet::from_ids(200, [id(0), id(100)]);
        let b = NodeSet::from_ids(200, [id(1), id(199)]);
        let c = NodeSet::from_ids(200, [id(100), id(150)]);
        assert!(!a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(c.intersects(&a));
        let empty = NodeSet::new(200);
        assert!(!a.intersects(&empty));
        assert!(!empty.intersects(&empty));
        // exhaustive agreement on a few random-ish patterns
        for shift in 0..8usize {
            let x = NodeSet::from_ids(130, (0..130).step_by(3 + shift).map(id));
            let y = NodeSet::from_ids(130, (1..130).step_by(5).map(id));
            assert_eq!(x.intersects(&y), !x.is_disjoint(&y));
        }
    }

    #[test]
    fn first_set_matches_first() {
        let mut s = NodeSet::new(200);
        assert_eq!(s.first_set(), None);
        s.insert(id(150));
        assert_eq!(s.first_set(), Some(150));
        s.insert(id(64));
        assert_eq!(s.first_set(), Some(64));
        assert_eq!(s.first(), Some(id(64)));
        s.insert(id(0));
        assert_eq!(s.first_set(), Some(0));
    }

    #[test]
    fn for_each_word_walks_nonzero_words_in_order() {
        let s = NodeSet::from_ids(260, [id(3), id(65), id(66), id(256)]);
        let mut seen = Vec::new();
        s.for_each_word(|wi, w| seen.push((wi, w)));
        assert_eq!(seen, vec![(0, 1u64 << 3), (1, (1 << 1) | (1 << 2)), (4, 1)]);
        // rebuilding the set from the word walk round-trips
        let mut rebuilt = NodeSet::new(260);
        s.for_each_word(|wi, mut w| {
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                rebuilt.insert(id(wi * 64 + b));
            }
        });
        assert_eq!(rebuilt, s);
    }

    #[test]
    fn word_accessors() {
        let s = NodeSet::from_ids(130, [id(0), id(64), id(129)]);
        assert_eq!(s.word_count(), 3);
        assert_eq!(s.word(0), 1);
        assert_eq!(s.word(1), 1);
        assert_eq!(s.word(2), 2);
    }

    #[test]
    fn reset_recapacities_and_empties() {
        let mut s = NodeSet::from_ids(200, [id(3), id(130)]);
        s.reset(64);
        assert_eq!(s.capacity(), 64);
        assert!(s.is_empty());
        s.insert(id(63));
        assert!(s.contains(id(63)));
        // growing again behaves like a fresh set of the larger capacity
        s.reset(300);
        assert_eq!(s.capacity(), 300);
        assert!(s.is_empty());
        s.insert(id(299));
        assert_eq!(s.len(), 1);
        assert_eq!(NodeSet::default().capacity(), 0);
    }

    #[test]
    fn copy_from_matches_assignment() {
        let src = NodeSet::from_ids(150, [id(0), id(64), id(149)]);
        let mut dst = NodeSet::from_ids(17, [id(2)]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.capacity(), 150);
        assert_eq!(dst.len(), 3);
    }
}
