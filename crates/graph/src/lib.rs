//! Directed-acyclic-graph substrate for instruction-set-extension (ISE)
//! identification.
//!
//! This crate provides the graph machinery the ISEGEN algorithm (Biswas et
//! al., DATE 2005) and its baselines are built on:
//!
//! * [`Dag`] — a compact adjacency-list DAG with cycle-checked edge
//!   insertion and parallel-edge support (an operation may consume the same
//!   value twice, e.g. `x * x`).
//! * [`NodeSet`] — a dense bitset over node ids; cuts, marks and masks are
//!   all `NodeSet`s so the hot loops of the toggle engine are word-parallel.
//! * [`TopoOrder`] — cached topological order and ranks.
//! * [`Reachability`] — per-node ancestor/descendant bitsets (transitive
//!   closure) enabling O(n/64) convexity tests.
//! * [`convex`] — the architectural-feasibility test of the paper
//!   (a cut is *convex* when no path leaves and re-enters it).
//! * [`components`] — connected components of a cut-induced subgraph
//!   (ISEGEN explicitly supports disconnected cuts).
//! * [`Contraction`] — topologically-renumbered cluster quotients, the
//!   substrate of the multilevel coarsen→search→uncoarsen pipeline.
//! * [`path`] — critical-path and barrier-distance computations used by the
//!   merit function and the directional-growth gain component.
//! * [`gen`] — layered random DAG generation for property tests and scaling
//!   benchmarks.
//!
//! # Example
//!
//! ```
//! use isegen_graph::{Dag, NodeSet, TopoOrder, Reachability, convex};
//!
//! # fn main() -> Result<(), isegen_graph::GraphError> {
//! let mut dag: Dag<&str> = Dag::new();
//! let a = dag.add_node("a");
//! let b = dag.add_node("b");
//! let c = dag.add_node("c");
//! dag.add_edge(a, b)?;
//! dag.add_edge(b, c)?;
//!
//! let topo = TopoOrder::new(&dag);
//! let reach = Reachability::new(&dag, &topo);
//!
//! // {a, c} is not convex: the path a -> b -> c escapes through b.
//! let mut cut = NodeSet::new(dag.node_count());
//! cut.insert(a);
//! cut.insert(c);
//! assert!(!convex::is_convex(&reach, &cut));
//! cut.insert(b);
//! assert!(convex::is_convex(&reach, &cut));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod dag;
mod error;
mod node;
mod topo;

pub mod components;
mod contract;
pub mod convex;
pub mod dot;
pub mod gen;
pub mod path;
mod reach;

pub use bitset::NodeSet;
pub use contract::Contraction;
pub use dag::Dag;
pub use error::GraphError;
pub use node::NodeId;
pub use reach::Reachability;
pub use topo::TopoOrder;
