use crate::{GraphError, NodeId};
use std::fmt;

/// A directed acyclic graph with per-node payloads and adjacency lists.
///
/// Edges are directed from producer to consumer (data-flow direction).
/// **Parallel edges are allowed** — an instruction can consume the same
/// value on two operand positions (`x * x`) and input/output counting must
/// see one producer but two operand slots.
///
/// Acyclicity is an invariant: [`Dag::add_edge`] rejects edges that would
/// close a cycle. Construction code that adds edges strictly from
/// lower-indexed to higher-indexed nodes can use
/// [`Dag::add_edge_assume_acyclic`] to skip the O(V+E) check.
///
/// ```
/// use isegen_graph::Dag;
///
/// # fn main() -> Result<(), isegen_graph::GraphError> {
/// let mut dag: Dag<u32> = Dag::new();
/// let a = dag.add_node(10);
/// let b = dag.add_node(20);
/// dag.add_edge(a, b)?;
/// assert_eq!(dag.node_count(), 2);
/// assert_eq!(dag.edge_count(), 1);
/// assert_eq!(dag.succs(a), &[b]);
/// assert_eq!(*dag.weight(b), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Dag<N> {
    weights: Vec<N>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl<N> Dag<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dag {
            weights: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Dag {
            weights: Vec::with_capacity(nodes),
            preds: Vec::with_capacity(nodes),
            succs: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Adds a node carrying `weight` and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId::from_index(self.weights.len());
        self.weights.push(weight);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Adds a directed edge `src -> dst`, verifying acyclicity.
    ///
    /// Parallel edges are permitted and counted with multiplicity.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfBounds`] if either endpoint does not exist.
    /// * [`GraphError::SelfLoop`] if `src == dst`.
    /// * [`GraphError::WouldCycle`] if a path `dst ⇝ src` already exists.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<(), GraphError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        if src == dst {
            return Err(GraphError::SelfLoop { node: src });
        }
        if self.has_path(dst, src) {
            return Err(GraphError::WouldCycle { src, dst });
        }
        self.push_edge(src, dst);
        Ok(())
    }

    /// Adds a directed edge without the acyclicity check.
    ///
    /// Intended for bulk construction where edges provably go from earlier
    /// to later nodes (e.g. generators emitting nodes in topological order).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds or `src == dst`.
    /// Violating acyclicity is not detected here but will make
    /// [`TopoOrder::new`](crate::TopoOrder::new) panic later.
    pub fn add_edge_assume_acyclic(&mut self, src: NodeId, dst: NodeId) {
        assert!(src.index() < self.weights.len(), "src {src} out of bounds");
        assert!(dst.index() < self.weights.len(), "dst {dst} out of bounds");
        assert_ne!(src, dst, "self-loop on {src}");
        self.push_edge(src, dst);
    }

    fn push_edge(&mut self, src: NodeId, dst: NodeId) {
        self.succs[src.index()].push(dst);
        self.preds[dst.index()].push(src);
        self.edge_count += 1;
    }

    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() < self.weights.len() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfBounds {
                node,
                node_count: self.weights.len(),
            })
        }
    }

    /// Returns `true` when a (possibly empty) directed path `from ⇝ to`
    /// exists. `has_path(v, v)` is `true`.
    pub fn has_path(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.weights.len()];
        let mut stack = vec![from];
        visited[from.index()] = true;
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v.index()] {
                if s == to {
                    return true;
                }
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of edges, counting parallel edges with multiplicity.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The payload of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn weight(&self, node: NodeId) -> &N {
        &self.weights[node.index()]
    }

    /// Mutable access to the payload of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn weight_mut(&mut self, node: NodeId) -> &mut N {
        &mut self.weights[node.index()]
    }

    /// The predecessors (operand producers) of a node, with multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn preds(&self, node: NodeId) -> &[NodeId] {
        &self.preds[node.index()]
    }

    /// The successors (value consumers) of a node, with multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn succs(&self, node: NodeId) -> &[NodeId] {
        &self.succs[node.index()]
    }

    /// In-degree of a node (operand slots), counting parallel edges.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.preds[node.index()].len()
    }

    /// Out-degree of a node (use count), counting parallel edges.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.succs[node.index()].len()
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.weights.len()).map(NodeId::from_index)
    }

    /// Iterates `(id, &weight)` pairs in index order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &N)> {
        self.weights
            .iter()
            .enumerate()
            .map(|(i, w)| (NodeId::from_index(i), w))
    }

    /// Iterates all edges `(src, dst)` with multiplicity.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs.iter().enumerate().flat_map(|(i, succs)| {
            let src = NodeId::from_index(i);
            succs.iter().map(move |&dst| (src, dst))
        })
    }

    /// Maps node payloads, preserving ids and edges.
    pub fn map<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> Dag<M> {
        Dag {
            weights: self
                .weights
                .iter()
                .enumerate()
                .map(|(i, w)| f(NodeId::from_index(i), w))
                .collect(),
            preds: self.preds.clone(),
            succs: self.succs.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Nodes with no predecessors.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.in_degree(v) == 0)
            .collect()
    }

    /// Nodes with no successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&v| self.out_degree(v) == 0)
            .collect()
    }
}

impl<N> Default for Dag<N> {
    fn default() -> Self {
        Dag::new()
    }
}

impl<N: fmt::Debug> fmt::Debug for Dag<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Dag {{ nodes: {}, edges: {} }}",
            self.node_count(),
            self.edge_count()
        )?;
        for (id, w) in self.nodes() {
            writeln!(f, "  {id}: {w:?} -> {:?}", self.succs(id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Dag<u32>, [NodeId; 4]) {
        let mut d = Dag::new();
        let a = d.add_node(0);
        let b = d.add_node(1);
        let c = d.add_node(2);
        let e = d.add_node(3);
        d.add_edge(a, b).unwrap();
        d.add_edge(a, c).unwrap();
        d.add_edge(b, e).unwrap();
        d.add_edge(c, e).unwrap();
        (d, [a, b, c, e])
    }

    #[test]
    fn build_and_query() {
        let (d, [a, b, c, e]) = diamond();
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.succs(a), &[b, c]);
        assert_eq!(d.preds(e), &[b, c]);
        assert_eq!(d.in_degree(a), 0);
        assert_eq!(d.out_degree(e), 0);
        assert_eq!(d.sources(), vec![a]);
        assert_eq!(d.sinks(), vec![e]);
    }

    #[test]
    fn cycle_rejected() {
        let (mut d, [a, _, _, e]) = diamond();
        assert_eq!(
            d.add_edge(e, a),
            Err(GraphError::WouldCycle { src: e, dst: a })
        );
        // graph unchanged after rejection
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn self_loop_rejected() {
        let (mut d, [a, ..]) = diamond();
        assert_eq!(d.add_edge(a, a), Err(GraphError::SelfLoop { node: a }));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let ghost = NodeId::from_index(5);
        assert!(matches!(
            d.add_edge(a, ghost),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        d.add_edge(a, b).unwrap();
        d.add_edge(a, b).unwrap();
        assert_eq!(d.edge_count(), 2);
        assert_eq!(d.preds(b), &[a, a]);
        assert_eq!(d.in_degree(b), 2);
    }

    #[test]
    fn has_path() {
        let (d, [a, b, c, e]) = diamond();
        assert!(d.has_path(a, e));
        assert!(d.has_path(a, a));
        assert!(!d.has_path(b, c));
        assert!(!d.has_path(e, a));
    }

    #[test]
    fn map_preserves_structure() {
        let (d, [a, _, _, e]) = diamond();
        let m = d.map(|_, w| w * 10);
        assert_eq!(*m.weight(a), 0);
        assert_eq!(*m.weight(e), 30);
        assert_eq!(m.edge_count(), d.edge_count());
    }

    #[test]
    fn edges_iterator() {
        let (d, [a, b, c, e]) = diamond();
        let edges: Vec<_> = d.edges().collect();
        assert_eq!(edges, vec![(a, b), (a, c), (b, e), (c, e)]);
    }

    #[test]
    fn assume_acyclic_fast_path() {
        let mut d: Dag<()> = Dag::new();
        let a = d.add_node(());
        let b = d.add_node(());
        d.add_edge_assume_acyclic(a, b);
        assert_eq!(d.edge_count(), 1);
    }
}
