//! Property-based tests for the graph substrate.

use isegen_graph::gen::{random_dag, RandomDagConfig};
use isegen_graph::{convex, path, Dag, NodeId, NodeSet, Reachability, TopoOrder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_dag() -> impl Strategy<Value = Dag<()>> {
    (2usize..60, 1usize..3, any::<u64>()).prop_map(|(nodes, fanin, seed)| {
        let cfg = RandomDagConfig {
            nodes,
            min_fanin: 1,
            max_fanin: fanin.max(1),
            window: 8,
            source_fraction: 0.15,
        };
        random_dag(&mut StdRng::seed_from_u64(seed), &cfg)
    })
}

fn arb_cut(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), n)
}

fn to_set(bits: &[bool]) -> NodeSet {
    NodeSet::from_ids(
        bits.len(),
        bits.iter()
            .enumerate()
            .filter(|(_, b)| **b)
            .map(|(i, _)| NodeId::from_index(i)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topo_order_respects_all_edges(dag in arb_dag()) {
        let topo = TopoOrder::new(&dag);
        for (src, dst) in dag.edges() {
            prop_assert!(topo.rank(src) < topo.rank(dst));
        }
    }

    #[test]
    fn reachability_matches_dfs(dag in arb_dag()) {
        let topo = TopoOrder::new(&dag);
        let reach = Reachability::new(&dag, &topo);
        for a in dag.node_ids() {
            for b in dag.node_ids() {
                if a == b { continue; }
                prop_assert_eq!(reach.reaches(a, b), dag.has_path(a, b),
                    "reachability mismatch {} -> {}", a, b);
            }
        }
    }

    #[test]
    fn convexity_matches_brute_force((dag, bits) in arb_dag().prop_flat_map(|d| {
        let n = d.node_count();
        (Just(d), arb_cut(n))
    })) {
        let topo = TopoOrder::new(&dag);
        let reach = Reachability::new(&dag, &topo);
        let cut = to_set(&bits);
        prop_assert_eq!(
            convex::is_convex(&reach, &cut),
            convex::is_convex_brute(&dag, &cut)
        );
    }

    #[test]
    fn ancestors_and_descendants_are_duals(dag in arb_dag()) {
        let topo = TopoOrder::new(&dag);
        let reach = Reachability::new(&dag, &topo);
        for a in dag.node_ids() {
            for b in reach.descendants(a).iter() {
                prop_assert!(reach.ancestors(b).contains(a));
            }
        }
    }

    #[test]
    fn critical_path_bounded_by_delay_sum((dag, bits) in arb_dag().prop_flat_map(|d| {
        let n = d.node_count();
        (Just(d), arb_cut(n))
    })) {
        let topo = TopoOrder::new(&dag);
        let cut = to_set(&bits);
        let cp = path::critical_path_within(&dag, &topo, &cut, |_| 1.0);
        prop_assert!(cp <= cut.len() as f64 + 1e-9);
        if !cut.is_empty() {
            prop_assert!(cp >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn critical_path_monotone_under_growth((dag, bits) in arb_dag().prop_flat_map(|d| {
        let n = d.node_count();
        (Just(d), arb_cut(n))
    })) {
        let topo = TopoOrder::new(&dag);
        let cut = to_set(&bits);
        let cp_small = path::critical_path_within(&dag, &topo, &cut, |_| 1.0);
        let all = NodeSet::full(dag.node_count());
        let cp_all = path::critical_path_within(&dag, &topo, &all, |_| 1.0);
        prop_assert!(cp_small <= cp_all + 1e-9);
    }

    #[test]
    fn nodeset_algebra_laws(bits_a in proptest::collection::vec(any::<bool>(), 80),
                            bits_b in proptest::collection::vec(any::<bool>(), 80)) {
        let a = to_set(&bits_a);
        let b = to_set(&bits_b);

        // |A ∪ B| + |A ∩ B| == |A| + |B|
        let mut u = a.clone();
        u.union_with(&b);
        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(u.len() + i.len(), a.len() + b.len());

        // A \ B disjoint from B, and (A \ B) ∪ (A ∩ B) == A
        let mut d = a.clone();
        d.subtract(&b);
        prop_assert!(d.is_disjoint(&b));
        let mut rebuilt = d.clone();
        rebuilt.union_with(&i);
        prop_assert_eq!(rebuilt, a.clone());

        // iteration round-trips
        let c = NodeSet::from_ids(80, a.iter());
        prop_assert_eq!(c, a);
    }

    #[test]
    fn barrier_distances_are_consistent(dag in arb_dag()) {
        let topo = TopoOrder::new(&dag);
        // every 5th node is a barrier
        let barrier = |v: NodeId| v.index().is_multiple_of(5);
        let up = path::barrier_distance_up(&dag, &topo, barrier);
        for v in dag.node_ids() {
            if barrier(v) {
                prop_assert_eq!(up[v.index()], 0);
            } else {
                let best = dag
                    .preds(v)
                    .iter()
                    .map(|p| up[p.index()].saturating_add(1))
                    .min()
                    .unwrap_or(u32::MAX);
                prop_assert_eq!(up[v.index()], best);
            }
        }
    }
}
