//! Scalar-reference equivalence for the chunked (SIMD-friendly) word
//! algebra of `NodeSet`.
//!
//! The in-place algebra, the disjointness/subset predicates, the
//! intersection popcount and the word walk all run as chunk-of-4 `u64`
//! loops; these properties pin them to naive per-index references across
//! capacities that exercise every alignment case — empty sets, full
//! sets, capacities straddling the 64-bit word and the 256-bit chunk
//! boundaries, and tail words whose high bits must stay masked.

use isegen_graph::{NodeId, NodeSet};
use proptest::prelude::*;

fn id(i: usize) -> NodeId {
    NodeId::from_index(i)
}

/// Capacities hitting word/chunk alignment edge cases: 0, sub-word,
/// exact word multiples, exact chunk multiples (4 words = 256 bits),
/// off-by-one straddles of both boundaries, and arbitrary sizes.
fn arb_capacity() -> impl Strategy<Value = usize> {
    (0usize..9, 1usize..400).prop_map(|(pick, random)| match pick {
        0 => 0,
        1 => 1,
        2 => 63,
        3 => 64,
        4 => 65,
        5 => 255,
        6 => 256,
        7 => 257,
        _ => random,
    })
}

/// A pair of same-capacity membership vectors. Each side is biased to
/// sometimes collapse to the all-false or all-true vector, so empty and
/// full sets are exercised alongside random ones.
fn arb_pair() -> impl Strategy<Value = (usize, Vec<bool>, Vec<bool>)> {
    arb_capacity().prop_flat_map(|n| {
        let side = |mode_and_bits: (usize, Vec<bool>)| -> Vec<bool> {
            let (mode, bits) = mode_and_bits;
            match mode {
                0 => vec![false; bits.len()],
                1 => vec![true; bits.len()],
                _ => bits,
            }
        };
        (
            Just(n),
            (0usize..6, proptest::collection::vec(any::<bool>(), n)).prop_map(side),
            (0usize..6, proptest::collection::vec(any::<bool>(), n)).prop_map(side),
        )
    })
}

fn to_set(n: usize, bits: &[bool]) -> NodeSet {
    NodeSet::from_ids(
        n,
        bits.iter()
            .enumerate()
            .filter(|(_, b)| **b)
            .map(|(i, _)| id(i)),
    )
}

/// Naive per-index reference of a binary set operation.
fn ref_op(n: usize, a: &[bool], b: &[bool], op: impl Fn(bool, bool) -> bool) -> NodeSet {
    NodeSet::from_ids(n, (0..n).filter(|&i| op(a[i], b[i])).map(id))
}

/// Every id in the set is below capacity and the iterator agrees with
/// `len()` — the trailing-word mask invariant.
fn assert_tail_clean(s: &NodeSet) {
    assert_eq!(s.iter().count(), s.len(), "len out of sync with contents");
    for v in s.iter() {
        assert!(v.index() < s.capacity(), "bit beyond capacity: {v}");
    }
    // the backing words past the tail must be zero
    let mut from_words = 0usize;
    for wi in 0..s.word_count() {
        from_words += s.word(wi).count_ones() as usize;
    }
    assert_eq!(from_words, s.len(), "tail word carries bits past capacity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn chunked_algebra_matches_scalar_reference((n, ba, bb) in arb_pair()) {
        let a = to_set(n, &ba);
        let b = to_set(n, &bb);

        let mut u = a.clone();
        u.union_with(&b);
        prop_assert_eq!(&u, &ref_op(n, &ba, &bb, |x, y| x | y));
        assert_tail_clean(&u);

        let mut i = a.clone();
        i.intersect_with(&b);
        prop_assert_eq!(&i, &ref_op(n, &ba, &bb, |x, y| x & y));
        assert_tail_clean(&i);

        let mut d = a.clone();
        d.subtract(&b);
        prop_assert_eq!(&d, &ref_op(n, &ba, &bb, |x, y| x & !y));
        assert_tail_clean(&d);
    }

    #[test]
    fn chunked_predicates_match_scalar_reference((n, ba, bb) in arb_pair()) {
        let a = to_set(n, &ba);
        let b = to_set(n, &bb);

        let ref_disjoint = (0..n).all(|i| !(ba[i] && bb[i]));
        prop_assert_eq!(a.is_disjoint(&b), ref_disjoint);
        prop_assert_eq!(a.intersects(&b), !ref_disjoint);

        let ref_subset = (0..n).all(|i| !ba[i] || bb[i]);
        prop_assert_eq!(a.is_subset(&b), ref_subset);

        let ref_ilen = (0..n).filter(|&i| ba[i] && bb[i]).count();
        prop_assert_eq!(a.intersection_len(&b), ref_ilen);
    }

    #[test]
    fn chunked_word_walk_matches_scalar_reference((n, ba, _) in arb_pair()) {
        let a = to_set(n, &ba);
        // reference: every non-zero word, in increasing order
        let mut expect = Vec::new();
        for wi in 0..a.word_count() {
            let w = a.word(wi);
            if w != 0 {
                expect.push((wi, w));
            }
        }
        let mut seen = Vec::new();
        a.for_each_word(|wi, w| seen.push((wi, w)));
        prop_assert_eq!(seen, expect);
    }

    #[test]
    fn full_and_empty_are_fixed_points(n in arb_capacity()) {
        let full = NodeSet::full(n);
        let empty = NodeSet::new(n);
        assert_tail_clean(&full);

        let mut u = full.clone();
        u.union_with(&empty);
        prop_assert_eq!(&u, &full);
        u.union_with(&full);
        prop_assert_eq!(&u, &full);

        let mut i = full.clone();
        i.intersect_with(&empty);
        prop_assert_eq!(&i, &empty);

        let mut d = full.clone();
        d.subtract(&full);
        prop_assert_eq!(&d, &empty);
        assert_tail_clean(&d);

        prop_assert!(empty.is_subset(&full));
        prop_assert_eq!(full.is_subset(&empty), n == 0);
        prop_assert!(empty.is_disjoint(&full));
        prop_assert_eq!(full.intersects(&full), n > 0);
        prop_assert_eq!(full.intersection_len(&full), n);
    }
}
