use isegen_graph::NodeId;
use isegen_ir::Opcode;
use std::error::Error;
use std::fmt;

/// Errors of AFU datapath generation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtlError {
    /// The cut contains no operations.
    EmptyCut,
    /// The cut contains a node that cannot be implemented in an AFU
    /// datapath (memory operations, external-input markers).
    IneligibleNode {
        /// The offending node.
        node: NodeId,
        /// Its opcode.
        opcode: Opcode,
    },
    /// A node's operand count disagrees with its opcode's arity — a
    /// malformed DFG that must surface as a structured error (the `ised`
    /// daemon turns it into an error response), never a panic in the
    /// emitter.
    ArityMismatch {
        /// The offending node.
        node: NodeId,
        /// Its opcode.
        opcode: Opcode,
        /// Operands the opcode requires.
        expected: usize,
        /// Operands the node actually has.
        got: usize,
    },
    /// An input vector handed to [`crate::Netlist::evaluate`] disagrees
    /// with the netlist's port count — a malformed stimulus that must
    /// surface as a structured error on the serve path, never a panic.
    InputCountMismatch {
        /// Input ports the netlist has.
        expected: usize,
        /// Values the caller supplied.
        got: usize,
    },
    /// A cell references a signal that does not exist (an input port or
    /// earlier cell index out of range) — a hand-built or corrupted
    /// netlist that `from_cut` can never produce.
    DanglingSignal {
        /// Index of the cell with the dangling operand.
        cell: usize,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::EmptyCut => write!(f, "cannot generate a datapath from an empty cut"),
            RtlError::IneligibleNode { node, opcode } => {
                write!(f, "node {node} ({opcode}) cannot be implemented in an AFU")
            }
            RtlError::ArityMismatch {
                node,
                opcode,
                expected,
                got,
            } => write!(
                f,
                "node {node} ({opcode}) has {got} operands, expected {expected}"
            ),
            RtlError::InputCountMismatch { expected, got } => {
                write!(
                    f,
                    "netlist has {expected} input port(s), got {got} value(s)"
                )
            }
            RtlError::DanglingSignal { cell } => {
                write!(f, "cell {cell} references a signal that does not exist")
            }
        }
    }
}

impl Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            RtlError::EmptyCut.to_string(),
            "cannot generate a datapath from an empty cut"
        );
        let e = RtlError::IneligibleNode {
            node: NodeId::from_index(3),
            opcode: Opcode::Load,
        };
        assert_eq!(
            e.to_string(),
            "node n3 (ld) cannot be implemented in an AFU"
        );
        let e = RtlError::ArityMismatch {
            node: NodeId::from_index(1),
            opcode: Opcode::Add,
            expected: 2,
            got: 5,
        };
        assert_eq!(e.to_string(), "node n1 (add) has 5 operands, expected 2");
        let e = RtlError::InputCountMismatch {
            expected: 2,
            got: 3,
        };
        assert_eq!(e.to_string(), "netlist has 2 input port(s), got 3 value(s)");
        let e = RtlError::DanglingSignal { cell: 4 };
        assert_eq!(
            e.to_string(),
            "cell 4 references a signal that does not exist"
        );
    }
}
