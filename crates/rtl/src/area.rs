use crate::Netlist;
use isegen_ir::Opcode;

/// NAND2-equivalent gate-count estimates per 32-bit operator.
///
/// Companion to [`LatencyModel`](isegen_ir::LatencyModel)'s delays: the
/// paper synthesised its operators on a 130 nm library; these are the
/// corresponding relative *area* magnitudes (multipliers dominate,
/// logic is nearly free), used to report AFU cost next to speedup.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    gates: [f64; Opcode::ALL.len()],
}

impl AreaModel {
    /// The default model with standard relative operator areas.
    pub fn paper_default() -> Self {
        use Opcode::*;
        let mut gates = [0.0f64; Opcode::ALL.len()];
        let table: &[(Opcode, f64)] = &[
            (Input, 0.0),
            (Add, 150.0),
            (Sub, 160.0),
            (Mul, 3200.0),
            (Mac, 3500.0),
            (And, 32.0),
            (Or, 32.0),
            (Xor, 48.0),
            (Not, 16.0),
            (Shl, 260.0), // barrel shifter
            (Shr, 260.0),
            (Sar, 280.0),
            (RotL, 300.0),
            (Eq, 70.0),
            (Lt, 90.0),
            (Min, 220.0),
            (Max, 220.0),
            (Abs, 190.0),
            (Neg, 160.0),
            (Select, 64.0),
            (SBox, 320.0), // LUT-mapped case table
            (Xtime, 10.0),
            (GfMul, 200.0),
            (Load, 0.0),
            (Store, 0.0),
        ];
        for &(op, g) in table {
            gates[op.as_index()] = g;
        }
        AreaModel { gates }
    }

    /// Gate count of one operator instance.
    #[inline]
    pub fn gates(&self, op: Opcode) -> f64 {
        self.gates[op.as_index()]
    }

    /// Total gate count of a datapath.
    pub fn netlist_gates(&self, netlist: &Netlist) -> f64 {
        netlist.cells().iter().map(|c| self.gates(c.opcode)).sum()
    }

    /// Returns a copy with one operator's area overridden.
    ///
    /// # Panics
    ///
    /// Panics if `gates` is negative or not finite.
    pub fn with_gates(mut self, op: Opcode, gates: f64) -> Self {
        assert!(
            gates.is_finite() && gates >= 0.0,
            "invalid gate count {gates}"
        );
        self.gates[op.as_index()] = gates;
        self
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_graph::NodeSet;
    use isegen_ir::BlockBuilder;

    #[test]
    fn relative_magnitudes() {
        let m = AreaModel::paper_default();
        assert!(m.gates(Opcode::Mul) > 10.0 * m.gates(Opcode::Add));
        assert!(m.gates(Opcode::Add) > m.gates(Opcode::Xor));
        assert_eq!(m.gates(Opcode::Load), 0.0);
    }

    #[test]
    fn netlist_sum() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op(Opcode::Mul, &[x, y]).unwrap();
        let s = b.op(Opcode::Add, &[p, x]).unwrap();
        let block = b.build().unwrap();
        let netlist = Netlist::from_cut(&block, &NodeSet::from_ids(4, [p, s])).unwrap();
        let m = AreaModel::paper_default();
        assert_eq!(m.netlist_gates(&netlist), 3200.0 + 150.0);
    }

    #[test]
    fn overrides() {
        let m = AreaModel::paper_default().with_gates(Opcode::Add, 99.0);
        assert_eq!(m.gates(Opcode::Add), 99.0);
    }

    #[test]
    #[should_panic(expected = "invalid gate count")]
    fn invalid_override_rejected() {
        let _ = AreaModel::paper_default().with_gates(Opcode::Add, f64::NAN);
    }
}
