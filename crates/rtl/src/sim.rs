//! A parser and evaluator for the combinational Verilog subset
//! [`crate::emit_verilog`] produces — the emitted *text* executed on
//! concrete bit-vectors, independent of the [`crate::Netlist`] it came
//! from.
//!
//! The structural golden model (`Netlist::evaluate`) shares code with
//! the emitter by construction, so agreement between the two proves
//! little about the Verilog itself. This module closes that gap: it
//! re-reads the emitted source like an external simulator would —
//! module header, port declarations, `wire` declarations, `assign`
//! continuous assignments, and the behavioural helper `function`s
//! (`sbox` case table, `xtime`, `gfmul` with its `for` loop) — and
//! evaluates it with Verilog-2001 width and sign semantics (context
//! sizing to the widest operand, signed comparison only when every
//! operand is signed, self-determined shift amounts, zero-filled
//! oversized shifts).
//!
//! Like everything reachable from the `ised` service boundary the
//! parser and evaluator are panic-free: hostile or corrupted text
//! produces a line-numbered [`SimError`], bounded loops guard against
//! runaway `for` statements, and combinational cycles are detected.
//!
//! ```
//! use isegen_graph::NodeSet;
//! use isegen_ir::{BlockBuilder, Opcode};
//! use isegen_rtl::{emit_verilog, sim, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = BlockBuilder::new("k");
//! let x = b.input("x");
//! let y = b.input("y");
//! let m = b.op(Opcode::Mul, &[x, y])?;
//! let block = b.build()?;
//! let netlist = Netlist::from_cut(&block, &NodeSet::from_ids(3, [m]))?;
//! let text = emit_verilog(&netlist, "mul_afu")?;
//! let module = sim::parse_module(&text)?;
//! assert_eq!(module.evaluate(&[6, 7])?, netlist.evaluate(&[6, 7])?);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Hard bound on behavioural statements executed per function call —
/// `gfmul`'s loop runs 8 iterations of 3 statements, so this is three
/// orders of magnitude of headroom while keeping a corrupted loop
/// bound from pinning a worker thread.
const MAX_FUNCTION_STEPS: usize = 65_536;

/// Maximum nested function-call depth (emitted code never nests calls;
/// the bound exists so hostile input cannot overflow the stack).
const MAX_CALL_DEPTH: usize = 16;

/// Maximum expression nesting depth accepted by the parser.
const MAX_EXPR_DEPTH: usize = 256;

/// A simulation failure: parse errors, unknown signals, combinational
/// loops, width overflows — always with the source line it was
/// detected on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// 1-based source line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl SimError {
    fn new(line: usize, message: impl Into<String>) -> SimError {
        SimError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verilog sim: line {}: {}", self.line, self.message)
    }
}

impl Error for SimError {}

// ---------------------------------------------------------------------
// Values: bit-vectors up to 64 bits with Verilog-2001 sign semantics.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Value {
    bits: u64,
    width: u32,
    signed: bool,
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl Value {
    fn new(bits: u64, width: u32, signed: bool) -> Value {
        Value {
            bits: bits & mask(width),
            width: width.min(64),
            signed,
        }
    }

    /// The value's bits zero- or sign-extended (by its *own* top bit)
    /// to `width`, used once the expression's sign has been decided.
    fn extended(self, width: u32, signed: bool) -> u64 {
        if signed && self.width < 64 && self.bits >> (self.width - 1) & 1 == 1 {
            (self.bits | !mask(self.width)) & mask(width)
        } else {
            self.bits
        }
    }

    /// Two's-complement interpretation at the value's own width.
    fn as_i64(self) -> i64 {
        if self.width < 64 && self.bits >> (self.width - 1) & 1 == 1 {
            (self.bits | !mask(self.width)) as i64
        } else {
            self.bits as i64
        }
    }

    fn is_true(self) -> bool {
        self.bits != 0
    }
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier or keyword (includes `$signed`).
    Ident(String),
    /// A resolved literal: `8'h1b`, `6'd32`, `1'b0`, bare `42`.
    Number { bits: u64, width: u32, signed: bool },
    /// Operator or punctuation, longest-match.
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

const PUNCTS: [&str; 28] = [
    ">>>", "<<", ">>", "==", "!=", "<=", ">=", "(", ")", "[", "]", "{", "}", ",", ";", ":", "?",
    "=", "+", "-", "*", "~", "&", "|", "^", "<", ">", "!",
];

fn lex(text: &str) -> Result<Vec<Token>, SimError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    'outer: while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'`' => {
                // Compiler directives (`timescale …`) span to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'$')
                {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(text[start..i].to_string()),
                    line,
                });
            }
            b'0'..=b'9' | b'\'' => {
                let start = i;
                let mut size_digits = String::new();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    size_digits.push(bytes[i] as char);
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'\'' {
                    // Based literal: [size]'[bdh]digits
                    i += 1;
                    let width: u32 = if size_digits.is_empty() {
                        32
                    } else {
                        size_digits
                            .parse()
                            .map_err(|_| SimError::new(line, "literal size out of range"))?
                    };
                    if width == 0 || width > 64 {
                        return Err(SimError::new(
                            line,
                            format!("unsupported literal width {width} (1..=64)"),
                        ));
                    }
                    let radix = match bytes.get(i) {
                        Some(b'b' | b'B') => 2,
                        Some(b'd' | b'D') => 10,
                        Some(b'h' | b'H') => 16,
                        Some(b'o' | b'O') => 8,
                        _ => return Err(SimError::new(line, "bad literal base")),
                    };
                    i += 1;
                    let dstart = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let digits: String = text[dstart..i].chars().filter(|&c| c != '_').collect();
                    if digits.is_empty() {
                        return Err(SimError::new(line, "literal needs digits"));
                    }
                    let bits = u64::from_str_radix(&digits, radix).map_err(|_| {
                        SimError::new(line, format!("bad literal {:?}", &text[start..i]))
                    })?;
                    if width < 64 && bits > mask(width) {
                        return Err(SimError::new(
                            line,
                            format!("literal {:?} does not fit its width", &text[start..i]),
                        ));
                    }
                    tokens.push(Token {
                        tok: Tok::Number {
                            bits,
                            width,
                            signed: false,
                        },
                        line,
                    });
                } else {
                    // Bare decimal: 32-bit signed (Verilog-2001).
                    let bits: u64 = size_digits
                        .parse::<u32>()
                        .map_err(|_| SimError::new(line, "decimal literal out of range"))?
                        .into();
                    tokens.push(Token {
                        tok: Tok::Number {
                            bits,
                            width: 32,
                            signed: true,
                        },
                        line,
                    });
                }
            }
            _ => {
                for p in PUNCTS {
                    if text[i..].starts_with(p) {
                        tokens.push(Token {
                            tok: Tok::Punct(p),
                            line,
                        });
                        i += p.len();
                        continue 'outer;
                    }
                }
                return Err(SimError::new(
                    line,
                    format!("unexpected character {:?}", c as char),
                ));
            }
        }
    }
    Ok(tokens)
}

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Ident(String),
    Literal {
        bits: u64,
        width: u32,
        signed: bool,
    },
    /// `base[high:low]` with constant bounds.
    Select {
        base: Box<Expr>,
        high: u32,
        low: u32,
    },
    /// `base[index]` with a computed index (`b[i]` in `gfmul`'s loop).
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Concat(Vec<Expr>),
    Unary {
        op: &'static str,
        operand: Box<Expr>,
    },
    Binary {
        op: &'static str,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Ternary {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    /// `$signed(e)`.
    Signed(Box<Expr>),
    Call {
        name: String,
        args: Vec<Expr>,
    },
}

#[derive(Debug, Clone)]
enum Stmt {
    /// `target = expr;` (blocking assignment).
    Assign {
        target: String,
        expr: Expr,
        line: usize,
    },
    If {
        cond: Expr,
        then: Box<Stmt>,
        els: Option<Box<Stmt>>,
    },
    For {
        init: Box<Stmt>,
        cond: Expr,
        step: Box<Stmt>,
        body: Box<Stmt>,
        line: usize,
    },
    Case {
        scrutinee: Expr,
        arms: Vec<(Expr, Stmt)>,
        default: Option<Box<Stmt>>,
        line: usize,
    },
    Block(Vec<Stmt>),
}

#[derive(Debug, Clone)]
struct Function {
    name: String,
    ret_width: u32,
    /// `(name, width)` in declaration order.
    inputs: Vec<(String, u32)>,
    /// `(name, width, signed)` — `integer` locals are 32-bit signed.
    locals: Vec<(String, u32, bool)>,
    body: Vec<Stmt>,
    line: usize,
}

/// One parsed combinational module: ports, wires, continuous
/// assignments and helper functions, ready to evaluate on concrete
/// input vectors.
#[derive(Debug, Clone)]
pub struct VerilogModule {
    name: String,
    /// `(port, width)` in declaration order.
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, u32)>,
    wires: HashMap<String, u32>,
    /// `target -> (expr, line)`; one driver per net, enforced at parse.
    assigns: HashMap<String, (Expr, usize)>,
    functions: HashMap<String, Function>,
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// A literal usable as a constant bit index.
fn constant_index(e: &Expr) -> Option<u32> {
    match e {
        Expr::Literal { bits, .. } if *bits <= 63 => Some(*bits as u32),
        _ => None,
    }
}

impl Parser {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(1, |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> SimError {
        SimError::new(self.line(), message)
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), SimError> {
        if self.at_punct(p) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SimError> {
        if self.at_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, SimError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn expect_index(&mut self) -> Result<u32, SimError> {
        match self.bump() {
            Some(Tok::Number { bits, .. }) if bits <= 63 => Ok(bits as u32),
            _ => Err(self.err("expected bit index 0..=63")),
        }
    }

    /// `[high:low]` (or nothing → scalar width 1).
    fn range(&mut self) -> Result<u32, SimError> {
        if !self.at_punct("[") {
            return Ok(1);
        }
        self.pos += 1;
        let high = self.expect_index()?;
        self.expect_punct(":")?;
        let low = self.expect_index()?;
        self.expect_punct("]")?;
        if low != 0 || high < low {
            return Err(self.err("only [N:0] declarations are supported"));
        }
        Ok(high - low + 1)
    }

    // ----- expressions ------------------------------------------------

    fn expr(&mut self, depth: usize) -> Result<Expr, SimError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.err("expression nesting too deep"));
        }
        let cond = self.binary(0, depth)?;
        if self.at_punct("?") {
            self.pos += 1;
            let then = self.expr(depth + 1)?;
            self.expect_punct(":")?;
            let els = self.expr(depth + 1)?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            });
        }
        Ok(cond)
    }

    /// Binary operators by precedence level (loosest first).
    fn binary(&mut self, level: usize, depth: usize) -> Result<Expr, SimError> {
        const LEVELS: [&[&str]; 6] = [
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>", ">>>"],
        ];
        if level == LEVELS.len() {
            return self.additive(depth);
        }
        let mut lhs = self.binary(level + 1, depth + 1)?;
        while let Some(Tok::Punct(p)) = self.peek() {
            let Some(&op) = LEVELS[level].iter().find(|&&q| q == *p) else {
                break;
            };
            self.pos += 1;
            let rhs = self.binary(level + 1, depth + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn additive(&mut self, depth: usize) -> Result<Expr, SimError> {
        let mut lhs = self.multiplicative(depth)?;
        while let Some(Tok::Punct(p @ ("+" | "-"))) = self.peek() {
            let op = *p;
            self.pos += 1;
            let rhs = self.multiplicative(depth)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self, depth: usize) -> Result<Expr, SimError> {
        let mut lhs = self.unary(depth)?;
        while let Some(Tok::Punct(p @ "*")) = self.peek() {
            let op = *p;
            self.pos += 1;
            let rhs = self.unary(depth)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self, depth: usize) -> Result<Expr, SimError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.err("expression nesting too deep"));
        }
        if let Some(Tok::Punct(p @ ("~" | "-" | "!"))) = self.peek() {
            let op = *p;
            self.pos += 1;
            let operand = self.unary(depth + 1)?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
            });
        }
        self.primary(depth)
    }

    fn primary(&mut self, depth: usize) -> Result<Expr, SimError> {
        let base = match self.peek().cloned() {
            Some(Tok::Number {
                bits,
                width,
                signed,
            }) => {
                self.pos += 1;
                Expr::Literal {
                    bits,
                    width,
                    signed,
                }
            }
            Some(Tok::Punct("(")) => {
                self.pos += 1;
                let inner = self.expr(depth + 1)?;
                self.expect_punct(")")?;
                inner
            }
            Some(Tok::Punct("{")) => {
                self.pos += 1;
                let mut parts = Vec::new();
                loop {
                    parts.push(self.expr(depth + 1)?);
                    if self.at_punct(",") {
                        self.pos += 1;
                        continue;
                    }
                    self.expect_punct("}")?;
                    break;
                }
                Expr::Concat(parts)
            }
            Some(Tok::Ident(name)) if name == "$signed" => {
                self.pos += 1;
                self.expect_punct("(")?;
                let inner = self.expr(depth + 1)?;
                self.expect_punct(")")?;
                Expr::Signed(Box::new(inner))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                if self.at_punct("(") {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr(depth + 1)?);
                            if self.at_punct(",") {
                                self.pos += 1;
                                continue;
                            }
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                    Expr::Call { name, args }
                } else {
                    Expr::Ident(name)
                }
            }
            _ => return Err(self.err("expected expression")),
        };
        // Bit / part select on the base.
        if self.at_punct("[") {
            self.pos += 1;
            let first = self.expr(depth + 1)?;
            if self.at_punct(":") {
                // Part selects need constant bounds.
                self.pos += 1;
                let high =
                    constant_index(&first).ok_or_else(|| self.err("expected bit index 0..=63"))?;
                let second = self.expr(depth + 1)?;
                let low =
                    constant_index(&second).ok_or_else(|| self.err("expected bit index 0..=63"))?;
                self.expect_punct("]")?;
                if high < low {
                    return Err(self.err("descending part select required"));
                }
                return Ok(Expr::Select {
                    base: Box::new(base),
                    high,
                    low,
                });
            }
            self.expect_punct("]")?;
            // Constant single-bit selects fold to a Select; computed
            // indices stay dynamic.
            if let Some(bit) = constant_index(&first) {
                return Ok(Expr::Select {
                    base: Box::new(base),
                    high: bit,
                    low: bit,
                });
            }
            return Ok(Expr::Index {
                base: Box::new(base),
                index: Box::new(first),
            });
        }
        Ok(base)
    }

    // ----- statements (function bodies) -------------------------------

    fn statement(&mut self, depth: usize) -> Result<Stmt, SimError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(self.err("statement nesting too deep"));
        }
        let line = self.line();
        if self.at_keyword("begin") {
            self.pos += 1;
            let mut stmts = Vec::new();
            while !self.at_keyword("end") {
                if self.peek().is_none() {
                    return Err(self.err("unterminated begin block"));
                }
                stmts.push(self.statement(depth + 1)?);
            }
            self.pos += 1; // end
            return Ok(Stmt::Block(stmts));
        }
        if self.at_keyword("if") {
            self.pos += 1;
            self.expect_punct("(")?;
            let cond = self.expr(0)?;
            self.expect_punct(")")?;
            let then = Box::new(self.statement(depth + 1)?);
            let els = if self.at_keyword("else") {
                self.pos += 1;
                Some(Box::new(self.statement(depth + 1)?))
            } else {
                None
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.at_keyword("for") {
            self.pos += 1;
            self.expect_punct("(")?;
            let init = Box::new(self.simple_assign()?);
            self.expect_punct(";")?;
            let cond = self.expr(0)?;
            self.expect_punct(";")?;
            let step = Box::new(self.simple_assign()?);
            self.expect_punct(")")?;
            let body = Box::new(self.statement(depth + 1)?);
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            });
        }
        if self.at_keyword("case") {
            self.pos += 1;
            self.expect_punct("(")?;
            let scrutinee = self.expr(0)?;
            self.expect_punct(")")?;
            let mut arms = Vec::new();
            let mut default = None;
            while !self.at_keyword("endcase") {
                if self.peek().is_none() {
                    return Err(self.err("unterminated case"));
                }
                if self.at_keyword("default") {
                    self.pos += 1;
                    self.expect_punct(":")?;
                    default = Some(Box::new(self.statement(depth + 1)?));
                } else {
                    let label = self.expr(0)?;
                    self.expect_punct(":")?;
                    let body = self.statement(depth + 1)?;
                    arms.push((label, body));
                }
            }
            self.pos += 1; // endcase
            return Ok(Stmt::Case {
                scrutinee,
                arms,
                default,
                line,
            });
        }
        let assign = self.simple_assign()?;
        self.expect_punct(";")?;
        Ok(assign)
    }

    /// `ident = expr` without the trailing semicolon (shared by plain
    /// statements and `for` headers).
    fn simple_assign(&mut self) -> Result<Stmt, SimError> {
        let line = self.line();
        let target = self.expect_ident()?;
        self.expect_punct("=")?;
        let expr = self.expr(0)?;
        Ok(Stmt::Assign { target, expr, line })
    }

    // ----- declarations ------------------------------------------------

    fn function(&mut self) -> Result<Function, SimError> {
        let line = self.line();
        self.expect_keyword("function")?;
        let ret_width = self.range()?;
        let name = self.expect_ident()?;
        self.expect_punct(";")?;
        let mut inputs = Vec::new();
        let mut locals = Vec::new();
        loop {
            if self.at_keyword("input") {
                self.pos += 1;
                let width = self.range()?;
                let pname = self.expect_ident()?;
                self.expect_punct(";")?;
                inputs.push((pname, width));
            } else if self.at_keyword("integer") {
                self.pos += 1;
                let vname = self.expect_ident()?;
                self.expect_punct(";")?;
                locals.push((vname, 32, true));
            } else if self.at_keyword("reg") {
                self.pos += 1;
                let width = self.range()?;
                let vname = self.expect_ident()?;
                self.expect_punct(";")?;
                locals.push((vname, width, false));
            } else {
                break;
            }
        }
        let body = match self.statement(0)? {
            Stmt::Block(stmts) => stmts,
            other => vec![other],
        };
        self.expect_keyword("endfunction")?;
        if inputs.is_empty() {
            return Err(SimError::new(
                line,
                format!("function {name} has no inputs"),
            ));
        }
        Ok(Function {
            name,
            ret_width,
            inputs,
            locals,
            body,
            line,
        })
    }

    fn module(&mut self) -> Result<VerilogModule, SimError> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut inputs = Vec::new();
        let mut outputs = Vec::new();
        loop {
            let is_input = if self.at_keyword("input") {
                true
            } else if self.at_keyword("output") {
                false
            } else {
                return Err(self.err("expected input/output port declaration"));
            };
            self.pos += 1;
            if self.at_keyword("wire") {
                self.pos += 1;
            }
            let width = self.range()?;
            let pname = self.expect_ident()?;
            if is_input {
                inputs.push((pname, width));
            } else {
                outputs.push((pname, width));
            }
            if self.at_punct(",") {
                self.pos += 1;
                continue;
            }
            break;
        }
        self.expect_punct(")")?;
        self.expect_punct(";")?;

        let mut wires: HashMap<String, u32> = HashMap::new();
        let mut assigns: HashMap<String, (Expr, usize)> = HashMap::new();
        let mut functions: HashMap<String, Function> = HashMap::new();
        loop {
            if self.at_keyword("endmodule") {
                self.pos += 1;
                break;
            }
            if self.at_keyword("function") {
                let f = self.function()?;
                let line = f.line;
                if functions.insert(f.name.clone(), f).is_some() {
                    return Err(SimError::new(line, "duplicate function"));
                }
                continue;
            }
            if self.at_keyword("wire") {
                self.pos += 1;
                let width = self.range()?;
                let wname = self.expect_ident()?;
                let line = self.line();
                self.expect_punct(";")?;
                if wires.insert(wname.clone(), width).is_some() {
                    return Err(SimError::new(line, format!("duplicate wire {wname}")));
                }
                continue;
            }
            if self.at_keyword("assign") {
                self.pos += 1;
                let line = self.line();
                let target = self.expect_ident()?;
                self.expect_punct("=")?;
                let expr = self.expr(0)?;
                self.expect_punct(";")?;
                if assigns.insert(target.clone(), (expr, line)).is_some() {
                    return Err(SimError::new(
                        line,
                        format!("multiple drivers for {target}"),
                    ));
                }
                continue;
            }
            if self.peek().is_none() {
                return Err(self.err("unterminated module (missing endmodule)"));
            }
            return Err(self.err("expected wire, assign, function or endmodule"));
        }
        Ok(VerilogModule {
            name,
            inputs,
            outputs,
            wires,
            assigns,
            functions,
        })
    }
}

/// Parses exactly one module from `text` (leading/trailing comments
/// allowed, anything else after the module is an error).
pub fn parse_module(text: &str) -> Result<VerilogModule, SimError> {
    let mut modules = parse_modules(text)?;
    match modules.len() {
        1 => Ok(modules.remove(0)),
        n => Err(SimError::new(1, format!("expected 1 module, found {n}"))),
    }
}

/// Parses every module in `text` — the shape of
/// [`crate::AfuLibrary::emit_verilog`]'s concatenated output.
pub fn parse_modules(text: &str) -> Result<Vec<VerilogModule>, SimError> {
    let tokens = lex(text)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut modules = Vec::new();
    while parser.peek().is_some() {
        modules.push(parser.module()?);
    }
    if modules.is_empty() {
        return Err(SimError::new(1, "no module found"));
    }
    Ok(modules)
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

struct Evaluator<'m> {
    module: &'m VerilogModule,
    /// Resolved net values by name (ports seeded, wires memoised).
    nets: HashMap<String, Value>,
    /// Nets currently being resolved (combinational-loop detection).
    resolving: Vec<String>,
}

impl<'m> Evaluator<'m> {
    fn net(&mut self, name: &str, line: usize) -> Result<Value, SimError> {
        if let Some(&v) = self.nets.get(name) {
            return Ok(v);
        }
        if self.resolving.iter().any(|n| n == name) {
            return Err(SimError::new(
                line,
                format!("combinational loop through {name}"),
            ));
        }
        let Some((expr, eline)) = self.module.assigns.get(name) else {
            return Err(SimError::new(line, format!("undriven signal {name}")));
        };
        let width = self
            .module
            .wires
            .get(name)
            .copied()
            .or_else(|| {
                self.module
                    .outputs
                    .iter()
                    .chain(&self.module.inputs)
                    .find(|(n, _)| n == name)
                    .map(|&(_, w)| w)
            })
            .ok_or_else(|| SimError::new(*eline, format!("undeclared signal {name}")))?;
        self.resolving.push(name.to_string());
        let value = self.eval(expr, *eline, 0)?;
        self.resolving.pop();
        // Continuous assignment truncates/extends to the net's width.
        let v = Value::new(value.extended(width, value.signed), width, false);
        self.nets.insert(name.to_string(), v);
        Ok(v)
    }

    fn eval(&mut self, expr: &Expr, line: usize, depth: usize) -> Result<Value, SimError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(SimError::new(line, "evaluation too deep"));
        }
        match expr {
            Expr::Literal {
                bits,
                width,
                signed,
            } => Ok(Value::new(*bits, *width, *signed)),
            Expr::Ident(name) => self.net(name, line),
            Expr::Select { base, high, low } => {
                let v = self.eval(base, line, depth + 1)?;
                if *high >= 64 {
                    return Err(SimError::new(line, "part select past bit 63"));
                }
                let width = high - low + 1;
                Ok(Value::new(v.bits >> low, width, false))
            }
            Expr::Index { base, index } => {
                let v = self.eval(base, line, depth + 1)?;
                let i = self.eval(index, line, depth + 1)?;
                let bit = if i.bits >= u64::from(v.width) {
                    0
                } else {
                    (v.bits >> i.bits) & 1
                };
                Ok(Value::new(bit, 1, false))
            }
            Expr::Concat(parts) => {
                let mut bits = 0u64;
                let mut width = 0u32;
                for part in parts {
                    let v = self.eval(part, line, depth + 1)?;
                    width += v.width;
                    if width > 64 {
                        return Err(SimError::new(line, "concatenation wider than 64 bits"));
                    }
                    bits = (bits << v.width) | v.bits;
                }
                Ok(Value::new(bits, width, false))
            }
            Expr::Signed(inner) => {
                let v = self.eval(inner, line, depth + 1)?;
                Ok(Value { signed: true, ..v })
            }
            Expr::Unary { op, operand } => {
                let v = self.eval(operand, line, depth + 1)?;
                Ok(match *op {
                    "~" => Value::new(!v.bits, v.width, v.signed),
                    "-" => Value::new(v.bits.wrapping_neg(), v.width, v.signed),
                    "!" => Value::new(u64::from(!v.is_true()), 1, false),
                    _ => return Err(SimError::new(line, "unsupported unary operator")),
                })
            }
            Expr::Ternary { cond, then, els } => {
                let c = self.eval(cond, line, depth + 1)?;
                // Both branches are context-sized together; evaluating
                // only the taken branch is safe because the subset is
                // side-effect free, but the width must consider both.
                let t = self.eval(then, line, depth + 1)?;
                let e = self.eval(els, line, depth + 1)?;
                let width = t.width.max(e.width);
                let signed = t.signed && e.signed;
                let v = if c.is_true() { t } else { e };
                Ok(Value::new(v.extended(width, signed), width, signed))
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, line, depth + 1)?;
                let b = self.eval(rhs, line, depth + 1)?;
                binary_op(op, a, b, line)
            }
            Expr::Call { name, args } => {
                if depth > MAX_CALL_DEPTH * 16 {
                    return Err(SimError::new(line, "call nesting too deep"));
                }
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval(arg, line, depth + 1)?);
                }
                self.call(name, &values, line, depth)
            }
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Value],
        line: usize,
        depth: usize,
    ) -> Result<Value, SimError> {
        let Some(function) = self.module.functions.get(name) else {
            return Err(SimError::new(line, format!("unknown function {name}")));
        };
        if args.len() != function.inputs.len() {
            return Err(SimError::new(
                line,
                format!(
                    "{name} takes {} argument(s), got {}",
                    function.inputs.len(),
                    args.len()
                ),
            ));
        }
        let mut vars: HashMap<&str, Value> = HashMap::new();
        for ((pname, width), &arg) in function.inputs.iter().zip(args) {
            vars.insert(pname, Value::new(arg.bits, *width, false));
        }
        for (vname, width, signed) in &function.locals {
            vars.insert(vname, Value::new(0, *width, *signed));
        }
        // The function name is the return variable.
        vars.insert(&function.name, Value::new(0, function.ret_width, false));
        let mut steps = 0usize;
        for stmt in &function.body {
            self.exec(function, stmt, &mut vars, &mut steps, depth)?;
        }
        Ok(vars[function.name.as_str()])
    }

    /// Evaluates an expression inside a function body: local variables
    /// shadow module nets.
    fn eval_in(
        &mut self,
        function: &Function,
        expr: &Expr,
        vars: &HashMap<&str, Value>,
        line: usize,
        depth: usize,
    ) -> Result<Value, SimError> {
        match expr {
            Expr::Ident(name) => {
                if let Some(&v) = vars.get(name.as_str()) {
                    return Ok(v);
                }
                Err(SimError::new(
                    line,
                    format!("unknown variable {name} in function {}", function.name),
                ))
            }
            Expr::Literal { .. } => self.eval(expr, line, depth),
            Expr::Select { base, high, low } => {
                let v = self.eval_in(function, base, vars, line, depth + 1)?;
                if *high >= 64 {
                    return Err(SimError::new(line, "part select past bit 63"));
                }
                Ok(Value::new(v.bits >> low, high - low + 1, false))
            }
            Expr::Index { base, index } => {
                let v = self.eval_in(function, base, vars, line, depth + 1)?;
                let i = self.eval_in(function, index, vars, line, depth + 1)?;
                let bit = if i.bits >= u64::from(v.width) {
                    0
                } else {
                    (v.bits >> i.bits) & 1
                };
                Ok(Value::new(bit, 1, false))
            }
            Expr::Concat(parts) => {
                let mut bits = 0u64;
                let mut width = 0u32;
                for part in parts {
                    let v = self.eval_in(function, part, vars, line, depth + 1)?;
                    width += v.width;
                    if width > 64 {
                        return Err(SimError::new(line, "concatenation wider than 64 bits"));
                    }
                    bits = (bits << v.width) | v.bits;
                }
                Ok(Value::new(bits, width, false))
            }
            Expr::Signed(inner) => {
                let v = self.eval_in(function, inner, vars, line, depth + 1)?;
                Ok(Value { signed: true, ..v })
            }
            Expr::Unary { op, operand } => {
                let v = self.eval_in(function, operand, vars, line, depth + 1)?;
                Ok(match *op {
                    "~" => Value::new(!v.bits, v.width, v.signed),
                    "-" => Value::new(v.bits.wrapping_neg(), v.width, v.signed),
                    "!" => Value::new(u64::from(!v.is_true()), 1, false),
                    _ => return Err(SimError::new(line, "unsupported unary operator")),
                })
            }
            Expr::Ternary { cond, then, els } => {
                let c = self.eval_in(function, cond, vars, line, depth + 1)?;
                let t = self.eval_in(function, then, vars, line, depth + 1)?;
                let e = self.eval_in(function, els, vars, line, depth + 1)?;
                let width = t.width.max(e.width);
                let signed = t.signed && e.signed;
                let v = if c.is_true() { t } else { e };
                Ok(Value::new(v.extended(width, signed), width, signed))
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval_in(function, lhs, vars, line, depth + 1)?;
                let b = self.eval_in(function, rhs, vars, line, depth + 1)?;
                binary_op(op, a, b, line)
            }
            Expr::Call { name, args } => {
                let mut values = Vec::with_capacity(args.len());
                for arg in args {
                    values.push(self.eval_in(function, arg, vars, line, depth + 1)?);
                }
                self.call(name, &values, line, depth + 1)
            }
        }
    }

    fn exec<'f>(
        &mut self,
        function: &'f Function,
        stmt: &'f Stmt,
        vars: &mut HashMap<&'f str, Value>,
        steps: &mut usize,
        depth: usize,
    ) -> Result<(), SimError> {
        *steps += 1;
        if *steps > MAX_FUNCTION_STEPS {
            return Err(SimError::new(
                function.line,
                format!("function {} exceeded the step budget", function.name),
            ));
        }
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec(function, s, vars, steps, depth)?;
                }
            }
            Stmt::Assign { target, expr, line } => {
                let value = self.eval_in(function, expr, vars, *line, depth)?;
                let Some(slot) = vars.get_mut(target.as_str()) else {
                    return Err(SimError::new(
                        *line,
                        format!("assignment to unknown variable {target}"),
                    ));
                };
                *slot = Value::new(
                    value.extended(slot.width, value.signed),
                    slot.width,
                    slot.signed,
                );
            }
            Stmt::If { cond, then, els } => {
                let c = self.eval_in(function, cond, vars, function.line, depth)?;
                if c.is_true() {
                    self.exec(function, then, vars, steps, depth)?;
                } else if let Some(e) = els {
                    self.exec(function, e, vars, steps, depth)?;
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                line,
            } => {
                self.exec(function, init, vars, steps, depth)?;
                loop {
                    let c = self.eval_in(function, cond, vars, *line, depth)?;
                    if !c.is_true() {
                        break;
                    }
                    self.exec(function, body, vars, steps, depth)?;
                    self.exec(function, step, vars, steps, depth)?;
                    *steps += 1;
                    if *steps > MAX_FUNCTION_STEPS {
                        return Err(SimError::new(
                            *line,
                            format!("function {} exceeded the step budget", function.name),
                        ));
                    }
                }
            }
            Stmt::Case {
                scrutinee,
                arms,
                default,
                line,
            } => {
                let s = self.eval_in(function, scrutinee, vars, *line, depth)?;
                for (label, body) in arms {
                    let l = self.eval_in(function, label, vars, *line, depth)?;
                    let w = s.width.max(l.width);
                    if s.extended(w, false) == l.extended(w, false) {
                        return self.exec(function, body, vars, steps, depth);
                    }
                }
                if let Some(d) = default {
                    self.exec(function, d, vars, steps, depth)?;
                }
            }
        }
        Ok(())
    }
}

/// One Verilog-2001 binary operation with context sizing: the result
/// is as wide as the wider operand, signed only when both operands are
/// signed, and operands are sign-extended only in that signed case.
fn binary_op(op: &str, a: Value, b: Value, line: usize) -> Result<Value, SimError> {
    match op {
        "+" | "-" | "*" | "&" | "|" | "^" => {
            let width = a.width.max(b.width);
            let signed = a.signed && b.signed;
            let x = a.extended(width, signed);
            let y = b.extended(width, signed);
            let bits = match op {
                "+" => x.wrapping_add(y),
                "-" => x.wrapping_sub(y),
                "*" => x.wrapping_mul(y),
                "&" => x & y,
                "|" => x | y,
                _ => x ^ y,
            };
            Ok(Value::new(bits, width, signed))
        }
        "==" | "!=" | "<" | "<=" | ">" | ">=" => {
            let width = a.width.max(b.width);
            let signed = a.signed && b.signed;
            let (x, y) = if signed {
                let ext = |v: Value| {
                    let e = v.extended(64, true);
                    e as i64
                };
                (ext(a) as i128, ext(b) as i128)
            } else {
                (
                    a.extended(width, false) as i128,
                    b.extended(width, false) as i128,
                )
            };
            let r = match op {
                "==" => x == y,
                "!=" => x != y,
                "<" => x < y,
                "<=" => x <= y,
                ">" => x > y,
                _ => x >= y,
            };
            Ok(Value::new(u64::from(r), 1, false))
        }
        "<<" | ">>" | ">>>" => {
            // The shift amount is self-determined and unsigned.
            let sh = b.bits;
            let width = a.width;
            let bits = match op {
                "<<" => {
                    if sh >= 64 {
                        0
                    } else {
                        a.bits << sh
                    }
                }
                ">>" => {
                    if sh >= 64 {
                        0
                    } else {
                        a.bits >> sh
                    }
                }
                _ => {
                    // Arithmetic only when the operand is signed.
                    if a.signed {
                        let x = a.as_i64();
                        let s = sh.min(63) as u32;
                        (x >> s) as u64
                    } else if sh >= 64 {
                        0
                    } else {
                        a.bits >> sh
                    }
                }
            };
            Ok(Value::new(bits, width, a.signed))
        }
        _ => Err(SimError::new(line, format!("unsupported operator {op:?}"))),
    }
}

impl VerilogModule {
    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input ports, in declaration order.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports, in declaration order.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Evaluates the module on one input vector (values bound to input
    /// ports in declaration order) and returns the output port values
    /// in declaration order.
    ///
    /// # Errors
    ///
    /// [`SimError`] when the vector length disagrees with the port
    /// count, a referenced signal has no driver, evaluation finds a
    /// combinational loop, or a helper function misbehaves — the ways
    /// corrupted or truncated Verilog text announces itself.
    pub fn evaluate(&self, inputs: &[u32]) -> Result<Vec<u32>, SimError> {
        if inputs.len() != self.inputs.len() {
            return Err(SimError::new(
                1,
                format!(
                    "module {} has {} input port(s), got {} value(s)",
                    self.name,
                    self.inputs.len(),
                    inputs.len()
                ),
            ));
        }
        let mut evaluator = Evaluator {
            module: self,
            nets: HashMap::new(),
            resolving: Vec::new(),
        };
        for ((name, width), &value) in self.inputs.iter().zip(inputs) {
            evaluator
                .nets
                .insert(name.clone(), Value::new(u64::from(value), *width, false));
        }
        let mut out = Vec::with_capacity(self.outputs.len());
        for (name, width) in &self.outputs {
            let v = evaluator.net(name, 1)?;
            out.push((v.bits & mask(*width) & mask(32)) as u32);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{emit_verilog, Netlist};
    use isegen_graph::NodeSet;
    use isegen_ir::interp::eval_opcode;
    use isegen_ir::{BlockBuilder, Opcode};

    fn simulate_one(opcode: Opcode, args: &[u32]) -> u32 {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let operands = &[x, y, z][..opcode.arity()];
        let n = b.op(opcode, operands).unwrap();
        let block = b.build().unwrap();
        let netlist =
            Netlist::from_cut(&block, &NodeSet::from_ids(block.dag().node_count(), [n])).unwrap();
        let text = emit_verilog(&netlist, "one").unwrap();
        let module = parse_module(&text).unwrap();
        // The netlist keeps only the ports the cell actually reads.
        let out = module.evaluate(&args[..netlist.input_count()]).unwrap();
        out[0]
    }

    #[test]
    fn every_opcode_matches_the_interpreter() {
        let vectors: [[u32; 3]; 8] = [
            [0, 0, 0],
            [1, 2, 3],
            [6, 7, 8],
            [u32::MAX, 1, 2],
            [0x8000_0000, 31, 5],
            [0xdead_beef, 0xcafe_f00d, 0x1234_5678],
            [0x7fff_ffff, 0xffff_ffff, 1],
            [0x53, 0x13, 0x80],
        ];
        for opcode in Opcode::ALL {
            if !opcode.is_ise_eligible() {
                continue;
            }
            for args in vectors {
                let expected = eval_opcode(opcode, &args[..opcode.arity()]).unwrap();
                let got = simulate_one(opcode, &args[..opcode.arity()]);
                assert_eq!(got, expected, "{opcode:?} on {args:?}");
            }
        }
    }

    #[test]
    fn duplicate_operands_share_one_port() {
        // x*x: one input port feeds both operands.
        let mut b = BlockBuilder::new("sq");
        let x = b.input("x");
        let sq = b.op(Opcode::Mul, &[x, x]).unwrap();
        let block = b.build().unwrap();
        let netlist = Netlist::from_cut(&block, &NodeSet::from_ids(2, [sq])).unwrap();
        let module = parse_module(&emit_verilog(&netlist, "sq").unwrap()).unwrap();
        assert_eq!(module.evaluate(&[9]).unwrap(), vec![81]);
        assert_eq!(module.evaluate(&[65536]).unwrap(), vec![0], "wrapping mul");
    }

    #[test]
    fn rotate_by_zero_is_identity() {
        // The emitted RotL idiom shifts right by 32 when r == 0; in
        // Verilog that yields 0, keeping the identity. A simulator with
        // Rust shift semantics would panic or wrap here.
        assert_eq!(
            simulate_one(Opcode::RotL, &[0xdead_beef, 0, 0]),
            0xdead_beef
        );
        assert_eq!(
            simulate_one(Opcode::RotL, &[0xdead_beef, 32, 0]),
            0xdead_beef
        );
    }

    #[test]
    fn parse_errors_are_line_numbered() {
        let err =
            parse_module("module m (\n  input wire [31:0] in0\n);\n  assign ;\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.to_string().contains("line 4"));
    }

    #[test]
    fn corrupted_text_is_an_error_not_a_panic() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let n = b.op(Opcode::Not, &[x]).unwrap();
        let block = b.build().unwrap();
        let netlist = Netlist::from_cut(&block, &NodeSet::from_ids(2, [n])).unwrap();
        let good = emit_verilog(&netlist, "inv").unwrap();
        // Truncations at every byte boundary (cutting into `endmodule`
        // at minimum): parse error or evaluation error, never a panic
        // and never a silently wrong answer.
        for end in 0..good.trim_end().len() {
            if let Ok(module) = parse_modules(&good[..end]) {
                // A prefix that still parses must be missing something.
                assert!(
                    module[0].evaluate(&[5]).is_err(),
                    "truncation at {end} parsed and evaluated"
                );
            }
        }
        // Random byte corruption either errors or changes no semantics
        // (e.g. flips inside a comment); it must never panic.
        let mut corrupted = good.clone().into_bytes();
        for (i, b) in corrupted.iter_mut().enumerate() {
            if i % 7 == 0 {
                *b = b'@';
            }
        }
        let _ = parse_modules(&String::from_utf8_lossy(&corrupted));
    }

    #[test]
    fn undriven_and_double_driven_nets_are_errors() {
        let undriven = "module m (\n  input wire [31:0] in0,\n  output wire [31:0] out0\n);\n  wire [31:0] n0;\n  assign out0 = n0;\nendmodule\n";
        let module = parse_module(undriven).unwrap();
        let err = module.evaluate(&[1]).unwrap_err();
        assert!(err.message.contains("undriven"), "{err}");

        let doubled = "module m (\n  input wire [31:0] in0,\n  output wire [31:0] out0\n);\n  assign out0 = in0;\n  assign out0 = in0;\nendmodule\n";
        assert!(parse_module(doubled)
            .unwrap_err()
            .message
            .contains("multiple drivers"));
    }

    #[test]
    fn combinational_loops_are_detected() {
        let text = "module m (\n  input wire [31:0] in0,\n  output wire [31:0] out0\n);\n  wire [31:0] a;\n  wire [31:0] b;\n  assign a = b + in0;\n  assign b = a + 1;\n  assign out0 = a;\nendmodule\n";
        let module = parse_module(text).unwrap();
        let err = module.evaluate(&[1]).unwrap_err();
        assert!(err.message.contains("combinational loop"), "{err}");
    }

    #[test]
    fn runaway_function_loops_hit_the_step_budget() {
        let text = "module m (\n  input wire [31:0] in0,\n  output wire [31:0] out0\n);\n  function [7:0] spin;\n    input [7:0] b;\n    integer i;\n    begin\n      for (i = 0; i < 1; i = i - 1) begin\n        spin = b;\n      end\n    end\n  endfunction\n  assign out0 = {24'b0, spin(in0[7:0])};\nendmodule\n";
        let module = parse_module(text).unwrap();
        let err = module.evaluate(&[1]).unwrap_err();
        assert!(err.message.contains("step budget"), "{err}");
    }

    #[test]
    fn signedness_follows_verilog_rules() {
        // $signed compare vs unsigned compare of the same bits.
        let text = "module m (\n  input wire [31:0] in0,\n  input wire [31:0] in1,\n  output wire [31:0] out0,\n  output wire [31:0] out1\n);\n  assign out0 = {31'b0, $signed(in0) < $signed(in1)};\n  assign out1 = {31'b0, in0 < in1};\nendmodule\n";
        let module = parse_module(text).unwrap();
        let out = module.evaluate(&[0xffff_ffff, 1]).unwrap();
        assert_eq!(out, vec![1, 0], "-1 < 1 signed, 0xffffffff > 1 unsigned");
        // Bare decimal literals are signed: $signed(x) < 0 is a signed
        // comparison (the Abs idiom depends on this).
        let text2 = "module m (\n  input wire [31:0] in0,\n  output wire [31:0] out0\n);\n  assign out0 = ($signed(in0) < 0) ? (32'd0 - in0) : in0;\nendmodule\n";
        let module2 = parse_module(text2).unwrap();
        assert_eq!(
            module2.evaluate(&[0xffff_fffb]).unwrap(),
            vec![5],
            "abs(-5)"
        );
        assert_eq!(module2.evaluate(&[5]).unwrap(), vec![5]);
    }

    #[test]
    fn afu_library_concatenation_parses_as_multiple_modules() {
        let mut b = BlockBuilder::new("two");
        let x = b.input("x");
        let a = b.op(Opcode::Not, &[x]).unwrap();
        let block = b.build().unwrap();
        let netlist = Netlist::from_cut(&block, &NodeSet::from_ids(2, [a])).unwrap();
        let one = emit_verilog(&netlist, "ise0").unwrap();
        let two = emit_verilog(&netlist, "ise1").unwrap();
        let both = format!("// banner\n{one}\n{two}");
        let modules = parse_modules(&both).unwrap();
        assert_eq!(modules.len(), 2);
        assert_eq!(modules[0].name(), "ise0");
        assert_eq!(modules[1].name(), "ise1");
        assert_eq!(modules[1].evaluate(&[0]).unwrap(), vec![u32::MAX]);
    }
}
