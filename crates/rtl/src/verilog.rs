//! Synthesizable Verilog-2001 emission for AFU datapaths.

use crate::{Netlist, RtlError, Signal};
use isegen_ir::interp::AES_SBOX;
use isegen_ir::Opcode;
use std::fmt::Write as _;

fn signal(s: Signal) -> String {
    match s {
        Signal::Input(i) => format!("in{i}"),
        Signal::Cell(i) => format!("n{i}"),
    }
}

fn expression(opcode: Opcode, a: &[String]) -> String {
    use Opcode::*;
    match opcode {
        Add => format!("{} + {}", a[0], a[1]),
        Sub => format!("{} - {}", a[0], a[1]),
        Mul => format!("{} * {}", a[0], a[1]),
        Mac => format!("({} * {}) + {}", a[0], a[1], a[2]),
        And => format!("{} & {}", a[0], a[1]),
        Or => format!("{} | {}", a[0], a[1]),
        Xor => format!("{} ^ {}", a[0], a[1]),
        Not => format!("~{}", a[0]),
        Shl => format!("{} << {}[4:0]", a[0], a[1]),
        Shr => format!("{} >> {}[4:0]", a[0], a[1]),
        Sar => format!("$signed({}) >>> {}[4:0]", a[0], a[1]),
        RotL => format!(
            "({lhs} << {r}[4:0]) | ({lhs} >> (6'd32 - {{1'b0, {r}[4:0]}}))",
            lhs = a[0],
            r = a[1]
        ),
        Eq => format!("{{31'b0, {} == {}}}", a[0], a[1]),
        Lt => format!("{{31'b0, $signed({}) < $signed({})}}", a[0], a[1]),
        Min => format!(
            "($signed({x}) < $signed({y})) ? {x} : {y}",
            x = a[0],
            y = a[1]
        ),
        Max => format!(
            "($signed({x}) < $signed({y})) ? {y} : {x}",
            x = a[0],
            y = a[1]
        ),
        Abs => format!("($signed({x}) < 0) ? (32'd0 - {x}) : {x}", x = a[0]),
        Neg => format!("32'd0 - {}", a[0]),
        Select => format!("({} != 32'd0) ? {} : {}", a[0], a[1], a[2]),
        SBox => format!("{{24'b0, sbox({}[7:0])}}", a[0]),
        Xtime => format!("{{24'b0, xtime({}[7:0])}}", a[0]),
        GfMul => format!("{{24'b0, gfmul({}[7:0], {}[7:0])}}", a[0], a[1]),
        Input | Load | Store => unreachable!("ineligible opcodes rejected at netlist extraction"),
    }
}

fn sbox_function() -> String {
    let mut out = String::new();
    out.push_str("  function [7:0] sbox;\n    input [7:0] b;\n    begin\n      case (b)\n");
    for (i, &v) in AES_SBOX.iter().enumerate() {
        let _ = writeln!(out, "        8'h{i:02x}: sbox = 8'h{v:02x};");
    }
    out.push_str("        default: sbox = 8'h00;\n      endcase\n    end\n  endfunction\n");
    out
}

fn xtime_function() -> String {
    "  function [7:0] xtime;\n    input [7:0] b;\n    begin\n      \
     xtime = {b[6:0], 1'b0} ^ (b[7] ? 8'h1b : 8'h00);\n    end\n  endfunction\n"
        .to_string()
}

fn gfmul_function() -> String {
    "  function [7:0] gfmul;\n    input [7:0] a;\n    input [7:0] b;\n    \
     integer i;\n    reg [7:0] acc;\n    reg [7:0] aa;\n    begin\n      \
     acc = 8'h00;\n      aa = a;\n      for (i = 0; i < 8; i = i + 1) begin\n        \
     if (b[i]) acc = acc ^ aa;\n        aa = {aa[6:0], 1'b0} ^ (aa[7] ? 8'h1b : 8'h00);\n      \
     end\n      gfmul = acc;\n    end\n  endfunction\n"
        .to_string()
}

/// Emits a synthesizable combinational Verilog-2001 module for `netlist`.
///
/// Ports are `in0..inN` / `out0..outM`, 32 bits each, matching
/// [`Netlist`]'s port order. AES helpers (`sbox`, `xtime`, `gfmul`) are
/// emitted as functions only when the datapath uses them.
///
/// # Errors
///
/// [`RtlError::ArityMismatch`] / [`RtlError::IneligibleNode`] when a
/// cell's shape disagrees with its opcode — impossible for netlists from
/// [`Netlist::from_cut`], which validates both, but kept fallible so a
/// malformed datapath surfacing through a service boundary degrades into
/// a structured error response instead of an emitter panic.
///
/// ```
/// use isegen_graph::NodeSet;
/// use isegen_ir::{BlockBuilder, Opcode};
/// use isegen_rtl::{emit_verilog, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = BlockBuilder::new("k");
/// let x = b.input("x");
/// let n = b.op(Opcode::Not, &[x])?;
/// let block = b.build()?;
/// let netlist = Netlist::from_cut(&block, &NodeSet::from_ids(2, [n]))?;
/// let v = emit_verilog(&netlist, "inv")?;
/// assert!(v.contains("assign n0 = ~in0;"));
/// assert!(v.contains("assign out0 = n0;"));
/// # Ok(())
/// # }
/// ```
pub fn emit_verilog(netlist: &Netlist, module_name: &str) -> Result<String, RtlError> {
    for (i, cell) in netlist.cells().iter().enumerate() {
        let node = netlist.cell_nodes()[i];
        if !cell.opcode.is_ise_eligible() {
            return Err(RtlError::IneligibleNode {
                node,
                opcode: cell.opcode,
            });
        }
        if cell.operands.len() != cell.opcode.arity() {
            return Err(RtlError::ArityMismatch {
                node,
                opcode: cell.opcode,
                expected: cell.opcode.arity(),
                got: cell.operands.len(),
            });
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "// AFU datapath generated by isegen-rtl");
    let _ = writeln!(
        out,
        "// {} cells, {} inputs, {} outputs",
        netlist.cell_count(),
        netlist.input_count(),
        netlist.output_count()
    );
    let _ = writeln!(out, "module {module_name} (");
    let mut ports: Vec<String> = (0..netlist.input_count())
        .map(|i| format!("  input  wire [31:0] in{i}"))
        .collect();
    ports.extend((0..netlist.output_count()).map(|i| format!("  output wire [31:0] out{i}")));
    let _ = writeln!(out, "{}", ports.join(",\n"));
    out.push_str(");\n");

    if netlist.uses_opcode(Opcode::SBox) {
        out.push_str(&sbox_function());
    }
    if netlist.uses_opcode(Opcode::Xtime) {
        out.push_str(&xtime_function());
    }
    if netlist.uses_opcode(Opcode::GfMul) {
        out.push_str(&gfmul_function());
    }

    for (i, cell) in netlist.cells().iter().enumerate() {
        let args: Vec<String> = cell.operands.iter().map(|&s| signal(s)).collect();
        let _ = writeln!(out, "  wire [31:0] n{i};");
        let _ = writeln!(out, "  assign n{i} = {};", expression(cell.opcode, &args));
    }
    for (i, &cell) in netlist.output_cells().iter().enumerate() {
        let _ = writeln!(out, "  assign out{i} = n{cell};");
    }
    out.push_str("endmodule\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_graph::NodeSet;
    use isegen_ir::BlockBuilder;

    #[test]
    fn emits_every_operator_form() {
        let mut b = BlockBuilder::new("all");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let mut nodes = Vec::new();
        for opcode in Opcode::ALL {
            if !opcode.is_ise_eligible() {
                continue;
            }
            // every eligible opcode has arity 1..=3; slice by arity so a
            // future opcode can never reintroduce a panic here
            let operands = &[x, y, z][..opcode.arity()];
            nodes.push(b.op(opcode, operands).unwrap());
        }
        let block = b.build().unwrap();
        let cut = NodeSet::from_ids(block.dag().node_count(), nodes.iter().copied());
        let netlist = Netlist::from_cut(&block, &cut).unwrap();
        let v = emit_verilog(&netlist, "all_ops").unwrap();
        assert!(v.contains("module all_ops"));
        assert!(v.contains("endmodule"));
        assert!(v.contains("function [7:0] sbox;"));
        assert!(v.contains("function [7:0] xtime;"));
        assert!(v.contains("function [7:0] gfmul;"));
        assert!(v.contains(">>>"), "arithmetic shift present");
        // one wire per cell, one assign per output
        assert_eq!(v.matches("wire [31:0] n").count(), netlist.cell_count());
        assert_eq!(v.matches("assign out").count(), netlist.output_count());
    }

    #[test]
    fn helpers_only_when_used() {
        let mut b = BlockBuilder::new("plain");
        let x = b.input("x");
        let a = b.op(Opcode::Add, &[x, x]).unwrap();
        let block = b.build().unwrap();
        let netlist = Netlist::from_cut(&block, &NodeSet::from_ids(2, [a])).unwrap();
        let v = emit_verilog(&netlist, "plain").unwrap();
        assert!(!v.contains("function"));
        assert!(v.contains("assign n0 = in0 + in0;"));
    }

    #[test]
    fn sbox_table_is_complete() {
        let f = sbox_function();
        // 256 case arms (the default arm uses a different prefix)
        assert_eq!(f.matches("8'h").count() - 1, 512, "256 arms x 2 literals");
        assert!(f.contains("8'h00: sbox = 8'h63;"));
        assert!(f.contains("8'h53: sbox = 8'hed;"));
    }
}
