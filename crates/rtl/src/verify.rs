//! Three-way differential verification of emitted AFUs.
//!
//! Every generated artifact passes through three independent
//! evaluators and must agree bit-for-bit at the cut boundary:
//!
//! ```text
//!             ┌────────────────────┐
//!   stimulus ─┤  ir::interp        │ whole-block software semantics
//!             ├────────────────────┤
//!            ─┤  Netlist::evaluate │ structural golden model
//!             ├────────────────────┤
//!            ─┤  sim (Verilog text)│ the artifact users receive
//!             └────────────────────┘
//! ```
//!
//! The interpreter knows nothing of netlists; the netlist simulator
//! knows nothing of Verilog; the Verilog simulator re-reads the emitted
//! *text*. A bug in extraction, emission, or either simulator breaks at
//! least one agreement, and the mutation tests in
//! `tests/rtl_mutation.rs` prove single-character corruptions are
//! caught.
//!
//! [`verify_cut`] checks one cut; [`verify_selection`] sweeps a whole
//! [`IseSelection`] — the engine behind the `ised` `verify` op and the
//! `verify_report` corpus gate.

use crate::sim::{self, SimError, VerilogModule};
use crate::{emit_verilog, Netlist, RtlError};
use isegen_core::IseSelection;
use isegen_graph::{NodeId, NodeSet};
use isegen_ir::interp::{self, ExecError};
use isegen_ir::{Application, BasicBlock, Opcode};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// How much stimulus to drive through each module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyConfig {
    /// Random input vectors per module.
    pub vectors: usize,
    /// Seed for the deterministic stimulus generator.
    pub seed: u64,
}

impl Default for VerifyConfig {
    fn default() -> VerifyConfig {
        VerifyConfig {
            vectors: 32,
            seed: 0x5eed,
        }
    }
}

/// One disagreement between the three evaluators on one output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMismatch {
    /// Which stimulus vector (0-based).
    pub vector: usize,
    /// Which output port.
    pub port: usize,
    /// What the whole-block interpreter computed.
    pub expected: u32,
    /// What the structural netlist computed.
    pub netlist: u32,
    /// What the parsed-and-executed Verilog text computed.
    pub simulated: u32,
}

impl fmt::Display for PortMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vector {}: out{} interp={:#010x} netlist={:#010x} verilog={:#010x}",
            self.vector, self.port, self.expected, self.netlist, self.simulated
        )
    }
}

/// The outcome of differentially testing one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Module name (matches the emitted Verilog and the AFU library).
    pub module: String,
    /// Datapath size in cells.
    pub cells: usize,
    /// Stimulus vectors driven.
    pub vectors: usize,
    /// Total disagreeing (vector, port) pairs.
    pub mismatches: usize,
    /// The first few mismatches, for diagnostics (capped at 8).
    pub first_mismatches: Vec<PortMismatch>,
    /// Per output port: bits that saw both a 0 and a 1 across the run —
    /// a toggle-coverage measure of how hard the stimulus worked the
    /// port (32 = every bit exercised both ways).
    pub output_bits_covered: Vec<u32>,
}

impl VerifyReport {
    /// Whether all three evaluators agreed on every vector.
    pub fn passed(&self) -> bool {
        self.mismatches == 0
    }
}

/// A failure *running* the harness — distinct from a mismatch, which is
/// a successful run with disagreeing evaluators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// Netlist extraction, emission, or golden-model evaluation failed.
    Rtl(RtlError),
    /// The emitted Verilog failed to parse or simulate.
    Sim(SimError),
    /// The whole-block interpreter rejected the stimulus.
    Exec(ExecError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Rtl(e) => write!(f, "verify: {e}"),
            VerifyError::Sim(e) => write!(f, "verify: {e}"),
            VerifyError::Exec(e) => write!(f, "verify: {e}"),
        }
    }
}

impl Error for VerifyError {}

impl From<RtlError> for VerifyError {
    fn from(e: RtlError) -> VerifyError {
        VerifyError::Rtl(e)
    }
}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> VerifyError {
        VerifyError::Sim(e)
    }
}

impl From<ExecError> for VerifyError {
    fn from(e: ExecError) -> VerifyError {
        VerifyError::Exec(e)
    }
}

/// The deterministic stimulus generator shared by the harness and the
/// emitted testbench: xorshift64 on a seed salted per vector.
pub(crate) fn stimulus(seed: u64) -> impl FnMut() -> u32 {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 16) as u32
    }
}

/// Differentially tests one already-parsed module against its netlist
/// and the whole-block interpreter.
///
/// `block` must be the basic block the netlist was cut from: stimulus
/// is bound to the block's external inputs, the interpreter computes
/// every node, and the three evaluators are compared at the netlist's
/// output ports.
///
/// # Errors
///
/// [`VerifyError`] when any leg fails to *run*; mismatches between legs
/// that do run are reported in the [`VerifyReport`], not as errors.
pub fn verify_module(
    block: &BasicBlock,
    netlist: &Netlist,
    module: &VerilogModule,
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    let dag = block.dag();
    let mut mismatches = 0usize;
    let mut first_mismatches = Vec::new();
    let mut ones = vec![0u32; netlist.output_count()];
    let mut zeros = vec![0u32; netlist.output_count()];

    for vector in 0..config.vectors {
        let mut next = stimulus(config.seed.wrapping_add(vector as u64));
        let mut inputs: BTreeMap<NodeId, u32> = BTreeMap::new();
        for (id, op) in dag.nodes() {
            if op.opcode() == Opcode::Input {
                inputs.insert(id, next());
            }
        }
        let mut memory = BTreeMap::new();
        let values = interp::execute(block, &inputs, &mut memory)?;

        let ports: Vec<u32> = netlist
            .input_nodes()
            .iter()
            .map(|p| values[p.index()])
            .collect();
        let golden = netlist.evaluate(&ports)?;
        let simulated = module.evaluate(&ports)?;
        if simulated.len() != golden.len() {
            return Err(VerifyError::Sim(SimError {
                line: 1,
                message: format!(
                    "module {} has {} output(s), netlist has {}",
                    module.name(),
                    simulated.len(),
                    golden.len()
                ),
            }));
        }

        for (port, &cell) in netlist.output_cells().iter().enumerate() {
            let node = netlist.cell_nodes()[cell as usize];
            let expected = values[node.index()];
            ones[port] |= expected;
            zeros[port] |= !expected;
            if golden[port] != expected || simulated[port] != expected {
                mismatches += 1;
                if first_mismatches.len() < 8 {
                    first_mismatches.push(PortMismatch {
                        vector,
                        port,
                        expected,
                        netlist: golden[port],
                        simulated: simulated[port],
                    });
                }
            }
        }
    }

    Ok(VerifyReport {
        module: module.name().to_string(),
        cells: netlist.cell_count(),
        vectors: config.vectors,
        mismatches,
        first_mismatches,
        output_bits_covered: ones
            .iter()
            .zip(&zeros)
            .map(|(&o, &z)| (o & z).count_ones())
            .collect(),
    })
}

/// Runs the full loop for one cut: extract the netlist, emit the
/// Verilog, parse it back, and differentially test all three.
///
/// # Errors
///
/// [`VerifyError`] when extraction, emission, parsing, or any
/// evaluator leg fails to run.
pub fn verify_cut(
    block: &BasicBlock,
    cut: &NodeSet,
    module_name: &str,
    config: &VerifyConfig,
) -> Result<VerifyReport, VerifyError> {
    let netlist = Netlist::from_cut(block, cut)?;
    let text = emit_verilog(&netlist, module_name)?;
    let module = sim::parse_module(&text)?;
    verify_module(block, &netlist, &module, config)
}

/// Verifies every ISE of a selection, using the same `ise{k}` module
/// names as [`crate::AfuLibrary::from_selection`].
///
/// # Errors
///
/// [`VerifyError`] when any ISE's harness fails to run. Mismatches do
/// not abort the sweep — inspect each report's
/// [`VerifyReport::passed`].
pub fn verify_selection(
    app: &Application,
    selection: &IseSelection,
    config: &VerifyConfig,
) -> Result<Vec<VerifyReport>, VerifyError> {
    selection
        .ises
        .iter()
        .enumerate()
        .map(|(k, ise)| {
            let block = &app.blocks()[ise.block_index];
            verify_cut(block, ise.cut.nodes(), &format!("ise{k}"), config)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_core::{Generator, IoConstraints, IseConfig};
    use isegen_ir::{BlockBuilder, LatencyModel};
    use isegen_workloads::aes;

    #[test]
    fn clean_emission_passes() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op(Opcode::Mul, &[x, y]).unwrap();
        let s = b.op(Opcode::Add, &[m, x]).unwrap();
        let block = b.build().unwrap();
        let cut = NodeSet::from_ids(block.dag().node_count(), [m, s]);
        let report = verify_cut(&block, &cut, "mac", &VerifyConfig::default()).unwrap();
        assert!(report.passed(), "{:?}", report.first_mismatches);
        assert_eq!(report.vectors, 32);
        assert_eq!(report.cells, 2);
        assert_eq!(report.output_bits_covered.len(), 1);
        // Random 32-vector stimulus through a multiplier toggles
        // essentially every output bit.
        assert!(report.output_bits_covered[0] >= 24);
    }

    #[test]
    fn whole_selection_passes_on_aes() {
        let app = aes();
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 3,
            reuse_matching: true,
        };
        let selection = Generator::new(config).run(&app, &model);
        assert!(!selection.ises.is_empty());
        let reports = verify_selection(
            &app,
            &selection,
            &VerifyConfig {
                vectors: 16,
                ..VerifyConfig::default()
            },
        )
        .unwrap();
        assert_eq!(reports.len(), selection.ises.len());
        for r in &reports {
            assert!(r.passed(), "{}: {:?}", r.module, r.first_mismatches);
            assert_eq!(r.vectors, 16);
        }
    }

    #[test]
    fn a_lying_module_is_reported_not_erred() {
        // Emit for one block, simulate a *different* module with the
        // same port shape: the harness must report mismatches.
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.op(Opcode::Add, &[x, y]).unwrap();
        let block = b.build().unwrap();
        let cut = NodeSet::from_ids(block.dag().node_count(), [s]);
        let netlist = Netlist::from_cut(&block, &cut).unwrap();
        let lying = "module add (\n  input wire [31:0] in0,\n  input wire [31:0] in1,\n  output wire [31:0] out0\n);\n  assign out0 = in0 - in1;\nendmodule\n";
        let module = sim::parse_module(lying).unwrap();
        let report = verify_module(&block, &netlist, &module, &VerifyConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.mismatches > 0);
        assert!(!report.first_mismatches.is_empty());
        assert!(report.first_mismatches.len() <= 8);
    }

    #[test]
    fn port_shape_disagreement_is_an_error() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let n = b.op(Opcode::Not, &[x]).unwrap();
        let block = b.build().unwrap();
        let cut = NodeSet::from_ids(block.dag().node_count(), [n]);
        let netlist = Netlist::from_cut(&block, &cut).unwrap();
        let two_in = "module inv (\n  input wire [31:0] in0,\n  input wire [31:0] in1,\n  output wire [31:0] out0\n);\n  assign out0 = ~in0;\nendmodule\n";
        let module = sim::parse_module(two_in).unwrap();
        let err = verify_module(&block, &netlist, &module, &VerifyConfig::default());
        assert!(matches!(err, Err(VerifyError::Sim(_))));
    }
}
