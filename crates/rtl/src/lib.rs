//! AFU datapath generation — the paper's stated future work
//! ("deployment of ISEs in a real system") made concrete.
//!
//! A selected cut becomes an Ad-hoc Functional Unit datapath:
//!
//! * [`Netlist`] — a structural netlist extracted from the cut: one cell
//!   per operation, ports for the cut's input/output operands. Includes a
//!   reference simulator ([`Netlist::evaluate`]) cross-checked against
//!   the IR interpreter ([`isegen_ir::interp`]) — the golden-model
//!   equivalence every generated AFU must pass.
//! * [`emit_verilog`] — synthesizable combinational Verilog-2001 for a
//!   netlist (S-box as a case-table function, GF(2^8) helpers as
//!   functions).
//! * [`AreaModel`] — NAND2-equivalent gate counts per operator, giving
//!   AFU area estimates next to the latency model's delays.
//! * [`AfuLibrary`] — bundles a whole [`IseSelection`] into named custom
//!   instructions with their Verilog, area, delay and instance counts.
//! * [`sim`] — a parser + evaluator for the emitted Verilog subset, so
//!   the generated *text* is executed, not just inspected.
//! * [`verify`] — the three-way differential harness
//!   (`ir::interp` ⇔ `Netlist::evaluate` ⇔ Verilog-sim) behind the
//!   `ised` `verify` op and the `verify_report` corpus gate.
//! * [`emit_testbench`] — a self-checking testbench for external
//!   simulators, stimulus and expectations baked in.
//!
//! # Example
//!
//! ```
//! use isegen_core::{BlockContext, IoConstraints, Search};
//! use isegen_ir::{BlockBuilder, LatencyModel, Opcode};
//! use isegen_rtl::{emit_verilog, Netlist};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = BlockBuilder::new("k");
//! let x = b.input("x");
//! let y = b.input("y");
//! let m = b.op(Opcode::Mul, &[x, y])?;
//! b.op(Opcode::Add, &[m, x])?;
//! let block = b.build()?;
//! let model = LatencyModel::paper_default();
//! let ctx = BlockContext::new(&block, &model);
//! let cut = Search::default().run(&ctx, IoConstraints::new(4, 2)).cut;
//!
//! let netlist = Netlist::from_cut(&block, cut.nodes())?;
//! assert_eq!(netlist.evaluate(&[6, 7])?, vec![48]); // (6*7)+6
//! let verilog = emit_verilog(&netlist, "mac_afu")?;
//! assert!(verilog.contains("module mac_afu"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod afu;
mod area;
mod error;
mod netlist;
pub mod sim;
mod testbench;
pub mod verify;
mod verilog;

pub use afu::{AfuInstruction, AfuLibrary};
pub use area::AreaModel;
pub use error::RtlError;
pub use netlist::{Cell, Netlist, Signal};
pub use sim::{parse_module, parse_modules, SimError, VerilogModule};
pub use testbench::emit_testbench;
pub use verify::{
    verify_cut, verify_module, verify_selection, PortMismatch, VerifyConfig, VerifyError,
    VerifyReport,
};
pub use verilog::emit_verilog;
