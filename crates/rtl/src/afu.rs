use crate::{emit_verilog, AreaModel, Netlist, RtlError};
use isegen_core::IseSelection;
use isegen_graph::path;
use isegen_graph::TopoOrder;
use isegen_ir::{Application, LatencyModel};
use std::fmt::Write as _;

/// One generated custom instruction: datapath, Verilog, cost estimates
/// and deployment statistics.
#[derive(Debug, Clone)]
pub struct AfuInstruction {
    /// Instruction mnemonic (`ise0`, `ise1`, …).
    pub name: String,
    /// The structural datapath.
    pub netlist: Netlist,
    /// Synthesizable Verilog module.
    pub verilog: String,
    /// NAND2-equivalent gate count.
    pub gates: f64,
    /// Critical-path delay in MAC units.
    pub delay: f64,
    /// Cycles saved per execution of one instance.
    pub saved_per_execution: u64,
    /// Number of sites in the application this instruction replaces.
    pub instance_count: usize,
}

/// The AFU of a whole application: every generated ISE as a named
/// custom instruction.
///
/// ```
/// use isegen_core::{Generator, IoConstraints, IseConfig};
/// use isegen_ir::LatencyModel;
/// use isegen_rtl::AfuLibrary;
/// use isegen_workloads::autcor00;
///
/// # fn main() -> Result<(), isegen_rtl::RtlError> {
/// let app = autcor00();
/// let model = LatencyModel::paper_default();
/// let config = IseConfig {
///     io: IoConstraints::new(4, 2),
///     max_ises: 2,
///     reuse_matching: true,
/// };
/// let selection = Generator::new(config).run(&app, &model);
/// let afu = AfuLibrary::from_selection(&app, &model, &selection)?;
/// assert_eq!(afu.instructions().len(), selection.ises.len());
/// assert!(afu.emit_verilog().contains("module"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AfuLibrary {
    instructions: Vec<AfuInstruction>,
}

impl AfuLibrary {
    /// Builds the AFU for every ISE of `selection`.
    ///
    /// # Errors
    ///
    /// Propagates [`RtlError`] from netlist extraction (cannot happen for
    /// selections produced by the drivers, which only emit eligible
    /// cuts).
    pub fn from_selection(
        app: &Application,
        model: &LatencyModel,
        selection: &IseSelection,
    ) -> Result<AfuLibrary, RtlError> {
        let area = AreaModel::paper_default();
        let instructions = selection
            .ises
            .iter()
            .enumerate()
            .map(|(k, ise)| {
                let block = &app.blocks()[ise.block_index];
                let netlist = Netlist::from_cut(block, ise.cut.nodes())?;
                let name = format!("ise{k}");
                let verilog = emit_verilog(&netlist, &name)?;
                let topo = TopoOrder::new(block.dag());
                let delay = path::critical_path_within(block.dag(), &topo, ise.cut.nodes(), |v| {
                    model.hw_delay(block.opcode(v))
                });
                Ok(AfuInstruction {
                    gates: area.netlist_gates(&netlist),
                    delay,
                    saved_per_execution: ise.saved_per_execution,
                    instance_count: ise.instances.len(),
                    name,
                    netlist,
                    verilog,
                })
            })
            .collect::<Result<Vec<_>, RtlError>>()?;
        Ok(AfuLibrary { instructions })
    }

    /// The generated instructions, in selection order.
    #[inline]
    pub fn instructions(&self) -> &[AfuInstruction] {
        &self.instructions
    }

    /// Total NAND2-equivalent gate count of the AFU.
    pub fn total_gates(&self) -> f64 {
        self.instructions.iter().map(|i| i.gates).sum()
    }

    /// Concatenated Verilog for all instructions plus a banner.
    pub fn emit_verilog(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// AFU library: {} custom instruction(s), {:.0} NAND2-equivalent gates",
            self.instructions.len(),
            self.total_gates()
        );
        for inst in &self.instructions {
            let _ = writeln!(
                out,
                "\n// {}: {} ops, {} in / {} out, delay {:.2} MAC, saves {} cycles x {} sites",
                inst.name,
                inst.netlist.cell_count(),
                inst.netlist.input_count(),
                inst.netlist.output_count(),
                inst.delay,
                inst.saved_per_execution,
                inst.instance_count
            );
            out.push_str(&inst.verilog);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_core::{Generator, IoConstraints, IseConfig};
    use isegen_workloads::fft00;

    #[test]
    fn library_from_fft() {
        let app = fft00();
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 3,
            reuse_matching: true,
        };
        let selection = Generator::new(config).run(&app, &model);
        assert!(!selection.ises.is_empty());
        let afu = AfuLibrary::from_selection(&app, &model, &selection).unwrap();
        assert_eq!(afu.instructions().len(), selection.ises.len());
        assert!(afu.total_gates() > 0.0);
        let v = afu.emit_verilog();
        assert!(v.contains("module ise0"));
        for inst in afu.instructions() {
            assert!(inst.delay > 0.0);
            assert!(inst.instance_count >= 1);
            // port counts respect the (4,2) budget
            assert!(inst.netlist.input_count() <= 4);
            assert!(inst.netlist.output_count() <= 2);
        }
    }
}
