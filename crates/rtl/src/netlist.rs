use crate::RtlError;
use isegen_graph::{NodeId, NodeSet, TopoOrder};
use isegen_ir::interp::eval_opcode;
use isegen_ir::{BasicBlock, Opcode};

/// A signal inside a [`Netlist`]: either an input port or the output of
/// an earlier cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// The `i`-th input port.
    Input(u32),
    /// The output of cell `i` (cells are in topological order).
    Cell(u32),
}

/// One datapath operator instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The operation this cell implements.
    pub opcode: Opcode,
    /// Operand signals, in opcode operand order.
    pub operands: Vec<Signal>,
}

/// A structural combinational netlist extracted from a cut: the AFU
/// datapath of one custom instruction.
///
/// Input ports are the cut's distinct outside producers in ascending
/// original-node-id order; output ports are the cut nodes whose values
/// escape the cut (or the block), same order. These match the paper's
/// `IN(C)`/`OUT(C)` counts exactly (tested against
/// [`isegen_core::Cut`](isegen_core::Cut)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    cells: Vec<Cell>,
    /// Original DFG node behind each cell (diagnostics).
    cell_nodes: Vec<NodeId>,
    /// Original producer node behind each input port.
    input_nodes: Vec<NodeId>,
    /// Cell index driving each output port.
    outputs: Vec<u32>,
}

impl Netlist {
    /// Extracts the datapath of `cut` from `block`.
    ///
    /// # Errors
    ///
    /// * [`RtlError::EmptyCut`] for an empty cut.
    /// * [`RtlError::IneligibleNode`] when the cut contains memory
    ///   operations or input markers.
    /// * [`RtlError::ArityMismatch`] when a cut node's operand count
    ///   disagrees with its opcode — defence in depth for DFGs that
    ///   reach the emitter from outside [`isegen_ir::BlockBuilder`]'s
    ///   validation (e.g. via a service boundary).
    pub fn from_cut(block: &BasicBlock, cut: &NodeSet) -> Result<Netlist, RtlError> {
        if cut.is_empty() {
            return Err(RtlError::EmptyCut);
        }
        let dag = block.dag();
        for v in cut.iter() {
            let opcode = block.opcode(v);
            if !opcode.is_ise_eligible() {
                return Err(RtlError::IneligibleNode { node: v, opcode });
            }
            if dag.preds(v).len() != opcode.arity() {
                return Err(RtlError::ArityMismatch {
                    node: v,
                    opcode,
                    expected: opcode.arity(),
                    got: dag.preds(v).len(),
                });
            }
        }
        // Input ports: distinct outside producers, ascending node id.
        let mut input_nodes: Vec<NodeId> = Vec::new();
        {
            let mut seen = NodeSet::new(dag.node_count());
            for v in cut.iter() {
                for &p in dag.preds(v) {
                    if !cut.contains(p) && seen.insert(p) {
                        input_nodes.push(p);
                    }
                }
            }
            input_nodes.sort_unstable();
        }
        let mut port_of = vec![u32::MAX; dag.node_count()];
        for (i, &p) in input_nodes.iter().enumerate() {
            port_of[p.index()] = i as u32;
        }

        // Cells in topological order of the original block.
        let topo = TopoOrder::new(dag);
        let mut cell_nodes: Vec<NodeId> = cut.iter().collect();
        cell_nodes.sort_unstable_by_key(|&v| topo.rank(v));
        let mut cell_of = vec![u32::MAX; dag.node_count()];
        for (i, &v) in cell_nodes.iter().enumerate() {
            cell_of[v.index()] = i as u32;
        }
        let cells: Vec<Cell> = cell_nodes
            .iter()
            .map(|&v| Cell {
                opcode: block.opcode(v),
                operands: dag
                    .preds(v)
                    .iter()
                    .map(|&p| {
                        if cut.contains(p) {
                            Signal::Cell(cell_of[p.index()])
                        } else {
                            Signal::Input(port_of[p.index()])
                        }
                    })
                    .collect(),
            })
            .collect();

        // Output ports: escaping cut nodes, ascending node id.
        let mut output_nodes: Vec<NodeId> = cut
            .iter()
            .filter(|&v| block.is_live_out(v) || dag.succs(v).iter().any(|s| !cut.contains(*s)))
            .collect();
        output_nodes.sort_unstable();
        let outputs = output_nodes.iter().map(|&v| cell_of[v.index()]).collect();

        Ok(Netlist {
            cells,
            cell_nodes,
            input_nodes,
            outputs,
        })
    }

    /// Number of operator cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of input ports (the cut's `IN(C)`).
    #[inline]
    pub fn input_count(&self) -> usize {
        self.input_nodes.len()
    }

    /// Number of output ports (the cut's `OUT(C)`).
    #[inline]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The cells, in topological order.
    #[inline]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The original DFG node behind each cell.
    #[inline]
    pub fn cell_nodes(&self) -> &[NodeId] {
        &self.cell_nodes
    }

    /// The original producer node behind each input port.
    #[inline]
    pub fn input_nodes(&self) -> &[NodeId] {
        &self.input_nodes
    }

    /// Cell index driving each output port.
    #[inline]
    pub fn output_cells(&self) -> &[u32] {
        &self.outputs
    }

    /// Whether the netlist instantiates `opcode` at least once.
    pub fn uses_opcode(&self, opcode: Opcode) -> bool {
        self.cells.iter().any(|c| c.opcode == opcode)
    }

    /// Assembles a netlist from raw parts, bypassing `from_cut`'s
    /// validation — for tests that need malformed netlists to prove the
    /// fallible paths degrade into structured errors.
    #[cfg(test)]
    pub(crate) fn test_only_from_parts(
        cells: Vec<Cell>,
        cell_nodes: Vec<NodeId>,
        input_nodes: Vec<NodeId>,
        outputs: Vec<u32>,
    ) -> Netlist {
        Netlist {
            cells,
            cell_nodes,
            input_nodes,
            outputs,
        }
    }

    /// Reference simulation: evaluates the datapath on concrete input
    /// port values and returns the output port values.
    ///
    /// This is the golden model the Verilog is compared against and is
    /// itself cross-checked against the block-level interpreter in
    /// integration tests.
    ///
    /// # Errors
    ///
    /// * [`RtlError::InputCountMismatch`] when `inputs.len()` disagrees
    ///   with [`Netlist::input_count`].
    /// * [`RtlError::IneligibleNode`] / [`RtlError::DanglingSignal`]
    ///   for hand-built netlists `from_cut` would have rejected — the
    ///   serve path must get a structured error, never a panic.
    pub fn evaluate(&self, inputs: &[u32]) -> Result<Vec<u32>, RtlError> {
        if inputs.len() != self.input_count() {
            return Err(RtlError::InputCountMismatch {
                expected: self.input_count(),
                got: inputs.len(),
            });
        }
        let mut values: Vec<u32> = Vec::with_capacity(self.cells.len());
        let mut args: Vec<u32> = Vec::with_capacity(3);
        for (c, cell) in self.cells.iter().enumerate() {
            args.clear();
            for &s in &cell.operands {
                let v = match s {
                    Signal::Input(i) => inputs.get(i as usize),
                    Signal::Cell(i) => values.get(i as usize),
                };
                args.push(*v.ok_or(RtlError::DanglingSignal { cell: c })?);
            }
            let node = self
                .cell_nodes
                .get(c)
                .copied()
                .unwrap_or_else(|| NodeId::from_index(c));
            if args.len() != cell.opcode.arity() {
                return Err(RtlError::ArityMismatch {
                    node,
                    opcode: cell.opcode,
                    expected: cell.opcode.arity(),
                    got: args.len(),
                });
            }
            values.push(
                eval_opcode(cell.opcode, &args).ok_or(RtlError::IneligibleNode {
                    node,
                    opcode: cell.opcode,
                })?,
            );
        }
        let mut out = Vec::with_capacity(self.outputs.len());
        for &c in &self.outputs {
            out.push(
                *values
                    .get(c as usize)
                    .ok_or(RtlError::DanglingSignal { cell: c as usize })?,
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::BlockBuilder;

    fn mac_block() -> (BasicBlock, NodeId, NodeId, NodeId, NodeId) {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op(Opcode::Mul, &[x, y]).unwrap();
        let s = b.op(Opcode::Add, &[m, x]).unwrap();
        (b.build().unwrap(), x, y, m, s)
    }

    #[test]
    fn extraction_shape() {
        let (block, _x, _y, m, s) = mac_block();
        let cut = NodeSet::from_ids(block.dag().node_count(), [m, s]);
        let netlist = Netlist::from_cut(&block, &cut).unwrap();
        assert_eq!(netlist.cell_count(), 2);
        assert_eq!(netlist.input_count(), 2);
        assert_eq!(netlist.output_count(), 1);
        assert_eq!(netlist.cells()[0].opcode, Opcode::Mul);
        assert_eq!(netlist.cells()[1].opcode, Opcode::Add);
        // add consumes the mul internally and port 0 (x) externally
        assert_eq!(
            netlist.cells()[1].operands,
            vec![Signal::Cell(0), Signal::Input(0)]
        );
        assert!(netlist.uses_opcode(Opcode::Mul));
        assert!(!netlist.uses_opcode(Opcode::SBox));
    }

    #[test]
    fn evaluation_matches_semantics() {
        let (block, _x, _y, m, s) = mac_block();
        let cut = NodeSet::from_ids(block.dag().node_count(), [m, s]);
        let netlist = Netlist::from_cut(&block, &cut).unwrap();
        // port order = ascending node id = [x, y]
        assert_eq!(netlist.evaluate(&[6, 7]).unwrap(), vec![48]);
        assert_eq!(netlist.evaluate(&[0, 0]).unwrap(), vec![0]);
    }

    #[test]
    fn duplicate_operand_single_port() {
        let mut b = BlockBuilder::new("sq");
        let x = b.input("x");
        let sq = b.op(Opcode::Mul, &[x, x]).unwrap();
        let block = b.build().unwrap();
        let cut = NodeSet::from_ids(2, [sq]);
        let netlist = Netlist::from_cut(&block, &cut).unwrap();
        assert_eq!(netlist.input_count(), 1);
        assert_eq!(netlist.evaluate(&[9]).unwrap(), vec![81]);
    }

    #[test]
    fn io_counts_match_cut_evaluation() {
        use isegen_core::{BlockContext, Cut};
        use isegen_ir::LatencyModel;
        let (block, _, _, m, s) = mac_block();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let nodes = NodeSet::from_ids(block.dag().node_count(), [m, s]);
        let cut = Cut::evaluate(&ctx, nodes.clone());
        let netlist = Netlist::from_cut(&block, &nodes).unwrap();
        assert_eq!(netlist.input_count() as u32, cut.input_count());
        assert_eq!(netlist.output_count() as u32, cut.output_count());
    }

    #[test]
    fn rejects_memory_and_empty() {
        let mut b = BlockBuilder::new("t");
        let addr = b.input("a");
        let ld = b.op(Opcode::Load, &[addr]).unwrap();
        let block = b.build().unwrap();
        assert!(matches!(
            Netlist::from_cut(&block, &NodeSet::from_ids(2, [ld])),
            Err(RtlError::IneligibleNode { .. })
        ));
        assert!(matches!(
            Netlist::from_cut(&block, &NodeSet::new(2)),
            Err(RtlError::EmptyCut)
        ));
    }

    #[test]
    fn malformed_arity_is_an_error_not_a_panic() {
        // A netlist with a cell whose operand count disagrees with its
        // opcode cannot come out of `from_cut` (which validates), so
        // build one by hand — this test module may touch the private
        // fields — and prove the emitter degrades into a structured
        // error, the contract the `ised` worker threads rely on.
        let malformed = Netlist {
            cells: vec![Cell {
                opcode: Opcode::Add,
                operands: vec![Signal::Input(0)],
            }],
            cell_nodes: vec![NodeId::from_index(1)],
            input_nodes: vec![NodeId::from_index(0)],
            outputs: vec![0],
        };
        assert!(matches!(
            crate::emit_verilog(&malformed, "bad"),
            Err(RtlError::ArityMismatch {
                opcode: Opcode::Add,
                expected: 2,
                got: 1,
                ..
            })
        ));
        let ineligible = Netlist {
            cells: vec![Cell {
                opcode: Opcode::Load,
                operands: vec![Signal::Input(0)],
            }],
            cell_nodes: vec![NodeId::from_index(1)],
            input_nodes: vec![NodeId::from_index(0)],
            outputs: vec![0],
        };
        assert!(matches!(
            crate::emit_verilog(&ineligible, "bad"),
            Err(RtlError::IneligibleNode { .. })
        ));
    }

    #[test]
    fn evaluate_is_fallible_not_panicking() {
        let (block, _x, _y, m, s) = mac_block();
        let cut = NodeSet::from_ids(block.dag().node_count(), [m, s]);
        let netlist = Netlist::from_cut(&block, &cut).unwrap();
        // Wrong stimulus length: structured error, the serve contract.
        assert_eq!(
            netlist.evaluate(&[1]),
            Err(RtlError::InputCountMismatch {
                expected: 2,
                got: 1
            })
        );
        assert!(matches!(
            netlist.evaluate(&[1, 2, 3]),
            Err(RtlError::InputCountMismatch { .. })
        ));
        // Hand-built netlists with dangling signals / bad arity /
        // ineligible opcodes all degrade into errors too.
        let dangling = Netlist::test_only_from_parts(
            vec![Cell {
                opcode: Opcode::Add,
                operands: vec![Signal::Input(0), Signal::Cell(7)],
            }],
            vec![NodeId::from_index(1)],
            vec![NodeId::from_index(0)],
            vec![0],
        );
        assert_eq!(
            dangling.evaluate(&[5]),
            Err(RtlError::DanglingSignal { cell: 0 })
        );
        let bad_arity = Netlist::test_only_from_parts(
            vec![Cell {
                opcode: Opcode::Add,
                operands: vec![Signal::Input(0)],
            }],
            vec![NodeId::from_index(1)],
            vec![NodeId::from_index(0)],
            vec![0],
        );
        assert!(matches!(
            bad_arity.evaluate(&[5]),
            Err(RtlError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        let ineligible = Netlist::test_only_from_parts(
            vec![Cell {
                opcode: Opcode::Load,
                operands: vec![Signal::Input(0)],
            }],
            vec![NodeId::from_index(1)],
            vec![NodeId::from_index(0)],
            vec![0],
        );
        assert!(matches!(
            ineligible.evaluate(&[5]),
            Err(RtlError::IneligibleNode { .. })
        ));
    }

    #[test]
    fn multi_output_order_is_stable() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let a = b.op(Opcode::Not, &[x]).unwrap();
        let c = b.op(Opcode::Neg, &[x]).unwrap();
        let block = b.build().unwrap();
        let cut = NodeSet::from_ids(3, [a, c]);
        let netlist = Netlist::from_cut(&block, &cut).unwrap();
        assert_eq!(netlist.output_count(), 2);
        let out = netlist.evaluate(&[5]).unwrap();
        assert_eq!(out, vec![!5u32, 5u32.wrapping_neg()]);
    }
}
