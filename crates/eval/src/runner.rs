use isegen_baselines::{run_exact, run_genetic, run_iterative, ExactConfig, GeneticConfig};
use isegen_core::{Generator, IoConstraints, IseConfig, IseSelection, SearchConfig};
use isegen_ir::{Application, LatencyModel};
use std::fmt;
use std::time::{Duration, Instant};

/// The four algorithms of the paper's comparison (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exact multiple-cut identification (exhaustive, jointly optimal).
    Exact,
    /// Iterative exact single-cut identification.
    Iterative,
    /// Genetic formulation (DAC 2004).
    Genetic,
    /// ISEGEN (this paper).
    Isegen,
}

impl Algorithm {
    /// All four, in the paper's legend order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Exact,
        Algorithm::Iterative,
        Algorithm::Genetic,
        Algorithm::Isegen,
    ];
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::Exact => "Exact",
            Algorithm::Iterative => "Iterative",
            Algorithm::Genetic => "Genetic",
            Algorithm::Isegen => "ISEGEN",
        };
        f.write_str(name)
    }
}

/// Shared configuration for a harness run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Port budget per ISE.
    pub io: IoConstraints,
    /// AFU budget (`N_ISE`).
    pub max_ises: usize,
    /// Deployment model: when `true`, every generated ISE covers all of
    /// its node-disjoint isomorphic instances (one AFU, many sites). The
    /// paper's Fig. 4 comparison is pure cut quality (off); the AES study
    /// (Fig. 6/7) deploys with reuse (on) — where ISEGEN's aligned,
    /// regular cuts recur far more often than the genetic baseline's.
    /// Applied to ISEGEN, Genetic and Iterative alike; the exact
    /// multiple-cut baseline always deploys one AFU per cut.
    pub reuse: bool,
    /// ISEGEN search knobs.
    pub search: SearchConfig,
    /// Budgets of the exhaustive baselines.
    pub exact: ExactConfig,
    /// Genetic baseline parameters.
    pub genetic: GeneticConfig,
}

impl HarnessConfig {
    /// The paper's headline configuration: I/O `(4,2)`, `N_ISE = 4`.
    pub fn paper_default() -> Self {
        HarnessConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 4,
            reuse: false,
            search: SearchConfig::default(),
            exact: ExactConfig::default(),
            genetic: GeneticConfig::default(),
        }
    }

    fn ise_config(&self) -> IseConfig {
        IseConfig {
            io: self.io,
            max_ises: self.max_ises,
            reuse_matching: self.reuse,
        }
    }
}

/// Result of one algorithm run on one application.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Whole-application speedup, `None` when the algorithm could not
    /// complete (exhaustive baselines on large blocks).
    pub speedup: Option<f64>,
    /// Wall-clock time of the run.
    pub runtime: Duration,
    /// The full selection, when the run completed.
    pub selection: Option<IseSelection>,
    /// Failure note (e.g. "block has 696 searchable nodes...").
    pub note: Option<String>,
}

impl RunOutcome {
    /// `"x.xxx"` or `"DNF"` for figures.
    pub fn speedup_cell(&self) -> String {
        match self.speedup {
            Some(s) => format!("{s:.3}"),
            None => "DNF".to_string(),
        }
    }

    /// Runtime in microseconds (the paper's Fig. 4 unit).
    pub fn runtime_us(&self) -> u128 {
        self.runtime.as_micros()
    }
}

/// Runs `algorithm` on `app` under `config`, timing the wall clock.
pub fn run_algorithm(
    algorithm: Algorithm,
    app: &Application,
    model: &LatencyModel,
    config: &HarnessConfig,
) -> RunOutcome {
    let start = Instant::now();
    let ise_config = config.ise_config();
    let (selection, note) = match algorithm {
        Algorithm::Exact => match run_exact(app, model, &ise_config, &config.exact) {
            Ok(sel) => (Some(sel), None),
            Err(e) => (None, Some(e.to_string())),
        },
        Algorithm::Iterative => match run_iterative(app, model, &ise_config, &config.exact) {
            Ok(sel) => (Some(sel), None),
            Err(e) => (None, Some(e.to_string())),
        },
        Algorithm::Genetic => (
            Some(run_genetic(app, model, &ise_config, &config.genetic)),
            None,
        ),
        Algorithm::Isegen => (
            Some(
                Generator::new(ise_config)
                    .search(config.search.clone())
                    .run(app, model),
            ),
            None,
        ),
    };
    let runtime = start.elapsed();
    RunOutcome {
        algorithm,
        speedup: selection.as_ref().map(|s| s.speedup()),
        runtime,
        selection,
        note,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_workloads::conven00;

    #[test]
    fn all_four_complete_on_a_small_benchmark() {
        let app = conven00();
        let model = LatencyModel::paper_default();
        let config = HarnessConfig::paper_default();
        for alg in Algorithm::ALL {
            let out = run_algorithm(alg, &app, &model, &config);
            assert!(out.speedup.is_some(), "{alg} failed: {:?}", out.note);
            assert!(out.speedup.unwrap() >= 1.0);
            assert!(out.runtime_us() > 0 || out.runtime.as_nanos() > 0);
        }
    }

    #[test]
    fn isegen_matches_exact_on_conven00() {
        let app = conven00();
        let model = LatencyModel::paper_default();
        let config = HarnessConfig::paper_default();
        let exact = run_algorithm(Algorithm::Exact, &app, &model, &config);
        let isegen = run_algorithm(Algorithm::Isegen, &app, &model, &config);
        let (se, si) = (exact.speedup.unwrap(), isegen.speedup.unwrap());
        assert!(
            si >= se * 0.999,
            "ISEGEN {si} noticeably below exact {se} on a 6-node block"
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::Isegen.to_string(), "ISEGEN");
        assert_eq!(Algorithm::Exact.to_string(), "Exact");
    }
}
