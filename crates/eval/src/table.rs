use std::fmt;

/// A minimal column-aligned text table, the output format of every
/// experiment binary.
///
/// ```
/// use isegen_eval::Table;
///
/// let mut t = Table::new(["bench", "speedup"]);
/// t.row(["autcor00", "3.91"]);
/// let s = t.to_string();
/// assert!(s.contains("autcor00"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[c])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = Table::new(["a", "long_header"]);
        t.row(["wide_cell", "1"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a        "));
        assert!(lines[2].starts_with("wide_cell"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only_one"]);
    }
}
