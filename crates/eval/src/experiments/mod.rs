//! One module per paper artefact. Each exposes `run(...)` returning
//! structured results plus a `render()` producing the figure's table.

pub mod ablation;
pub mod convergence;
pub mod deployment;
pub mod fig1;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod scaling;
