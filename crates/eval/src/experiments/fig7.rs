//! Figure 7: reusability of ISEGEN's AES cuts — the number of matched
//! instances of each generated cut (CUT1..CUT4) under every I/O
//! constraint of the sweep.

use crate::Table;
use isegen_core::{Generator, IoConstraints, IseConfig, SearchConfig};
use isegen_ir::LatencyModel;
use isegen_workloads::aes;

/// Instance counts of the four cuts under one constraint.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The I/O constraint.
    pub io: IoConstraints,
    /// Operation count of each generated cut, selection order.
    pub cut_sizes: Vec<usize>,
    /// Instances matched for each generated cut, selection order
    /// (CUT1..CUT4; shorter when fewer ISEs were generated).
    pub instances: Vec<usize>,
}

/// The whole figure.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// One row per I/O constraint of the paper's sweep.
    pub rows: Vec<Fig7Row>,
}

/// Runs ISEGEN (reuse on, `N_ISE = 4`) on AES across the sweep and counts
/// the instances of every generated cut.
pub fn run(search: &SearchConfig) -> Fig7Result {
    let model = LatencyModel::paper_default();
    let app = aes();
    let rows = IoConstraints::AES_SWEEP
        .iter()
        .map(|&(i, o)| {
            let io = IoConstraints::new(i, o);
            let config = IseConfig {
                io,
                max_ises: 4,
                reuse_matching: true,
            };
            let sel = Generator::new(config)
                .search(search.clone())
                .run(&app, &model);
            Fig7Row {
                io,
                cut_sizes: sel.ises.iter().map(|i| i.cut.nodes().len()).collect(),
                instances: sel.ises.iter().map(|i| i.instances.len()).collect(),
            }
        })
        .collect();
    Fig7Result { rows }
}

impl Fig7Result {
    /// The figure's bar chart as a table: instances of CUT1..CUT4 per
    /// constraint.
    pub fn render(&self) -> String {
        let mut t = Table::new(["io", "CUT1", "CUT2", "CUT3", "CUT4"]);
        for row in &self.rows {
            let mut cells = vec![row.io.to_string()];
            for k in 0..4 {
                cells.push(match (row.instances.get(k), row.cut_sizes.get(k)) {
                    (Some(n), Some(sz)) => format!("{n} (|C|={sz})"),
                    _ => "-".to_string(),
                });
            }
            t.row(cells);
        }
        format!("Figure 7: Reusability of cuts in AES (instances per cut)\n{t}")
    }

    /// Total accelerated instances per constraint — the coverage signal
    /// behind the Fig. 6 non-monotonicity discussion.
    pub fn total_instances(&self) -> Vec<(IoConstraints, usize)> {
        self.rows
            .iter()
            .map(|r| (r.io, r.instances.iter().sum()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_layout() {
        let r = Fig7Result {
            rows: vec![Fig7Row {
                io: IoConstraints::new(2, 1),
                cut_sizes: vec![19, 4],
                instances: vec![24, 6],
            }],
        };
        let text = r.render();
        assert!(text.contains("(2,1)"));
        assert!(text.contains("24 (|C|=19)"));
        assert!(text.contains('-'));
        assert_eq!(r.total_instances()[0].1, 30);
    }
}
