//! The paper's future work, §6: "evaluating the impact of ISEs on code
//! size and energy reduction" — plus the AFU area the RTL backend
//! estimates.
//!
//! Models (documented, deliberately simple — the *relative* reductions
//! are the result):
//!
//! * **Code size**: static instruction count; every matched instance of
//!   a `k`-operation ISE replaces `k` instructions with 1.
//! * **Energy**: executing an instruction on the core costs
//!   `E_FETCH + E_CYCLE · sw_cycles(op)`; one AFU invocation costs a
//!   single fetch plus `E_HW · Σ hw_delay(op)` for its datapath (the
//!   AFU has no fetch/decode/register-file activity per internal op —
//!   that is precisely where ISE energy savings come from).

use crate::Table;
use isegen_core::{Generator, IoConstraints, IseConfig, IseSelection};
use isegen_ir::{Application, LatencyModel, Opcode};
use isegen_rtl::AfuLibrary;
use isegen_workloads::paper_suite;

/// Energy per instruction fetch/decode, picojoules.
pub const E_FETCH: f64 = 6.0;
/// Energy per core execution cycle, picojoules.
pub const E_CYCLE: f64 = 8.0;
/// Energy per MAC-delay-unit of AFU datapath activity, picojoules.
pub const E_HW: f64 = 3.0;

/// Deployment impact of one workload's ISE selection.
#[derive(Debug, Clone)]
pub struct DeploymentRow {
    /// Workload name.
    pub benchmark: String,
    /// Speedup of the selection (context).
    pub speedup: f64,
    /// Static instructions before ISEs.
    pub code_before: u64,
    /// Static instructions after replacing every instance.
    pub code_after: u64,
    /// Dynamic energy before, picojoules.
    pub energy_before: f64,
    /// Dynamic energy after, picojoules.
    pub energy_after: f64,
    /// AFU area, NAND2-equivalent gates.
    pub afu_gates: f64,
}

impl DeploymentRow {
    /// Static code-size reduction in percent.
    pub fn code_reduction_pct(&self) -> f64 {
        100.0 * (self.code_before - self.code_after) as f64 / self.code_before as f64
    }

    /// Dynamic energy reduction in percent.
    pub fn energy_reduction_pct(&self) -> f64 {
        100.0 * (self.energy_before - self.energy_after) / self.energy_before
    }
}

/// The whole study.
#[derive(Debug, Clone)]
pub struct DeploymentResult {
    /// One row per workload.
    pub rows: Vec<DeploymentRow>,
}

fn op_energy(model: &LatencyModel, op: Opcode) -> f64 {
    if op == Opcode::Input {
        0.0
    } else {
        E_FETCH + E_CYCLE * model.sw_cycles(op) as f64
    }
}

fn analyse(app: &Application, model: &LatencyModel, sel: &IseSelection) -> (u64, u64, f64, f64) {
    // Static instruction counts and dynamic energy, before.
    let mut code_before = 0u64;
    let mut energy_before = 0.0f64;
    for block in app.blocks() {
        code_before += block.operation_count() as u64;
        let per_exec: f64 = block
            .dag()
            .nodes()
            .map(|(_, op)| op_energy(model, op.opcode()))
            .sum();
        energy_before += block.frequency() as f64 * per_exec;
    }
    // Apply every instance.
    let mut code_after = code_before;
    let mut energy_after = energy_before;
    for ise in &sel.ises {
        let block = &app.blocks()[ise.block_index];
        let k = ise.cut.nodes().len() as u64;
        let sw_energy_of_cut: f64 = ise
            .cut
            .nodes()
            .iter()
            .map(|v| op_energy(model, block.opcode(v)))
            .sum();
        let hw_energy_of_cut: f64 = E_FETCH
            + E_HW
                * ise
                    .cut
                    .nodes()
                    .iter()
                    .map(|v| model.hw_delay(block.opcode(v)))
                    .sum::<f64>();
        for inst in &ise.instances {
            let freq = app.blocks()[inst.block_index].frequency() as f64;
            code_after -= k - 1;
            energy_after -= freq * (sw_energy_of_cut - hw_energy_of_cut);
        }
    }
    (code_before, code_after, energy_before, energy_after)
}

/// Runs ISEGEN (reuse on, I/O `(4,2)`, `N_ISE = 4`) on every paper workload
/// and derives the deployment impact.
pub fn run() -> DeploymentResult {
    let model = LatencyModel::paper_default();
    let config = IseConfig {
        io: IoConstraints::new(4, 2),
        max_ises: 4,
        reuse_matching: true,
    };
    let rows = paper_suite()
        .into_iter()
        .map(|spec| {
            let app = spec.application();
            let sel = Generator::new(config).run(&app, &model);
            let afu = AfuLibrary::from_selection(&app, &model, &sel)
                .expect("driver cuts are always eligible");
            let (code_before, code_after, energy_before, energy_after) =
                analyse(&app, &model, &sel);
            DeploymentRow {
                benchmark: spec.name.to_string(),
                speedup: sel.speedup(),
                code_before,
                code_after,
                energy_before,
                energy_after,
                afu_gates: afu.total_gates(),
            }
        })
        .collect();
    DeploymentResult { rows }
}

impl DeploymentResult {
    /// The deployment table.
    pub fn render(&self) -> String {
        let mut t = Table::new([
            "benchmark",
            "speedup",
            "code_before",
            "code_after",
            "code_red%",
            "energy_red%",
            "afu_gates",
        ]);
        for r in &self.rows {
            t.row([
                r.benchmark.clone(),
                format!("{:.3}", r.speedup),
                r.code_before.to_string(),
                r.code_after.to_string(),
                format!("{:.1}", r.code_reduction_pct()),
                format!("{:.1}", r.energy_reduction_pct()),
                format!("{:.0}", r.afu_gates),
            ]);
        }
        format!(
            "Deployment impact (paper future work): code size & energy, I/O (4,2), N_ISE = 4\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_are_positive_and_bounded() {
        // single small workload to keep the test quick
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 4,
            reuse_matching: true,
        };
        let app = isegen_workloads::autcor00();
        let sel = Generator::new(config).run(&app, &model);
        let (cb, ca, eb, ea) = analyse(&app, &model, &sel);
        assert!(ca < cb, "ISEs must shrink static code");
        assert!(ca >= 1);
        assert!(ea < eb, "ISEs must save energy");
        assert!(ea > 0.0);
    }

    #[test]
    fn row_percentages() {
        let r = DeploymentRow {
            benchmark: "x".into(),
            speedup: 1.5,
            code_before: 100,
            code_after: 80,
            energy_before: 1000.0,
            energy_after: 600.0,
            afu_gates: 1234.0,
        };
        assert!((r.code_reduction_pct() - 20.0).abs() < 1e-12);
        assert!((r.energy_reduction_pct() - 40.0).abs() < 1e-12);
    }
}
