//! Figure 1: the motivating example — a single AFU covering six
//! instances of a large reusable cluster beats one covering three
//! instances of the largest cluster.
//!
//! The figure is an illustration, not an algorithm output: it contrasts
//! the two hand-drawn cut shapes (the dotted "largest ISE" and the solid
//! "large ISE with six instances"). This experiment rebuilds the figure's
//! DFG, takes exactly those two cuts, matches their instances and
//! compares the coverage and speedup of dedicating one AFU to each.

use crate::Table;
use isegen_core::{application_speedup, BlockContext, Cut};
use isegen_graph::NodeSet;
use isegen_ir::LatencyModel;
use isegen_match::{find_disjoint_instances, Pattern};
use isegen_workloads::figure1_annotated;

/// One candidate ISE of the demonstration.
#[derive(Debug, Clone)]
pub struct Fig1Choice {
    /// Label ("largest" / "reusable").
    pub label: &'static str,
    /// Operation count of the cut.
    pub cut_size: usize,
    /// Node-disjoint instances in the DFG.
    pub instances: usize,
    /// Total operations covered by one AFU.
    pub covered_ops: usize,
    /// Whole-application speedup with a single AFU.
    pub speedup: f64,
}

/// The demonstration result.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// The largest cluster (the dotted boundary of Fig. 1).
    pub largest: Fig1Choice,
    /// The smaller, more reusable cluster (the solid boundary).
    pub reusable: Fig1Choice,
}

fn evaluate_choice(
    label: &'static str,
    nodes: NodeSet,
    ctx: &BlockContext<'_>,
    total_sw: u64,
    freq: u64,
) -> Fig1Choice {
    let cut = Cut::evaluate(ctx, nodes);
    let pattern = Pattern::extract(ctx.block(), cut.nodes());
    let instances = find_disjoint_instances(ctx.block(), &pattern, None);
    let covered_ops = instances.len() * cut.nodes().len();
    let saved = instances.len() as u64 * cut.saved_cycles() * freq;
    Fig1Choice {
        label,
        cut_size: cut.nodes().len(),
        instances: instances.len(),
        covered_ops,
        speedup: application_speedup(total_sw, saved),
    }
}

/// Builds the Figure 1 DFG and compares its two cluster shapes under a
/// single-AFU budget.
pub fn run() -> Fig1Result {
    let model = LatencyModel::paper_default();
    let (app, layout) = figure1_annotated();
    let block = &app.blocks()[0];
    let ctx = BlockContext::new(block, &model);
    let total_sw = app.total_software_latency(&model);
    let freq = block.frequency();
    let n = block.dag().node_count();

    // dotted boundary: core 0 plus its tail — the largest cluster
    let largest_nodes = NodeSet::from_ids(
        n,
        layout.cores[0]
            .iter()
            .chain(layout.tails[0].iter())
            .copied(),
    );
    // solid boundary: the bare core — the reusable cluster
    let reusable_nodes = NodeSet::from_ids(n, layout.cores[0]);

    Fig1Result {
        largest: evaluate_choice("largest", largest_nodes, &ctx, total_sw, freq),
        reusable: evaluate_choice("reusable", reusable_nodes, &ctx, total_sw, freq),
    }
}

impl Fig1Result {
    /// The comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(["choice", "cut_ops", "instances", "covered_ops", "speedup"]);
        for c in [&self.largest, &self.reusable] {
            t.row([
                c.label.to_string(),
                c.cut_size.to_string(),
                c.instances.to_string(),
                c.covered_ops.to_string(),
                format!("{:.3}", c.speedup),
            ]);
        }
        format!(
            "Figure 1: large-scale reuse — six instances of the reusable cluster \
             beat three instances of the largest\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_beats_size() {
        let r = run();
        assert_eq!(r.largest.cut_size, 6);
        assert_eq!(r.reusable.cut_size, 4);
        assert_eq!(r.largest.instances, 3, "three extended clusters");
        assert_eq!(r.reusable.instances, 6, "six cores");
        assert!(
            r.reusable.covered_ops > r.largest.covered_ops,
            "reusable {} !> largest {}",
            r.reusable.covered_ops,
            r.largest.covered_ops
        );
        assert!(r.reusable.speedup > r.largest.speedup);
        let text = r.render();
        assert!(text.contains("reusable"));
    }
}
