//! Figure 6: AES speedup under the I/O-constraint sweep
//! `(2,1) … (8,4)`, for `N_ISE = 1` and `N_ISE = 4`, Genetic vs ISEGEN.
//!
//! Both algorithms deploy with reuse matching (one AFU covers every
//! isomorphic instance of its cut), so the comparison isolates cut
//! *quality*: ISEGEN's directionally-grown cuts align with AES's regular
//! structure and recur often; the GA's stochastic cuts recur rarely —
//! the paper's regularity-exploitation story.

use crate::{run_algorithm, Algorithm, HarnessConfig, Table};
use isegen_baselines::GeneticConfig;
use isegen_core::{IoConstraints, SearchConfig};
use isegen_ir::LatencyModel;
use isegen_workloads::aes;

/// One point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Cell {
    /// The I/O constraint.
    pub io: IoConstraints,
    /// Genetic speedup.
    pub genetic: f64,
    /// ISEGEN speedup.
    pub isegen: f64,
}

/// Both plots of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// `N_ISE = 1` sweep (left plot).
    pub n1: Vec<Fig6Cell>,
    /// `N_ISE = 4` sweep (right plot).
    pub n4: Vec<Fig6Cell>,
}

/// Runs the Figure 6 sweep.
pub fn run(search: &SearchConfig, genetic: &GeneticConfig) -> Fig6Result {
    let model = LatencyModel::paper_default();
    let app = aes();
    let sweep = |max_ises: usize| -> Vec<Fig6Cell> {
        IoConstraints::AES_SWEEP
            .iter()
            .map(|&(i, o)| {
                let io = IoConstraints::new(i, o);
                let config = HarnessConfig {
                    io,
                    max_ises,
                    reuse: true,
                    search: search.clone(),
                    genetic: *genetic,
                    ..HarnessConfig::paper_default()
                };
                let g = run_algorithm(Algorithm::Genetic, &app, &model, &config);
                let i = run_algorithm(Algorithm::Isegen, &app, &model, &config);
                Fig6Cell {
                    io,
                    genetic: g.speedup.expect("genetic always completes"),
                    isegen: i.speedup.expect("isegen always completes"),
                }
            })
            .collect()
    };
    Fig6Result {
        n1: sweep(1),
        n4: sweep(4),
    }
}

impl Fig6Result {
    fn render_one(cells: &[Fig6Cell], n_ise: usize) -> Table {
        let mut t = Table::new(["io", "Genetic", "ISEGEN"]);
        for c in cells {
            t.row([
                c.io.to_string(),
                format!("{:.3}", c.genetic),
                format!("{:.3}", c.isegen),
            ]);
        }
        let _ = n_ise;
        t
    }

    /// Both sweeps as one report.
    pub fn render(&self) -> String {
        format!(
            "Figure 6 (left): AES speedup, N_ISE = 1\n{}\n\
             Figure 6 (right): AES speedup, N_ISE = 4\n{}",
            Self::render_one(&self.n1, 1),
            Self::render_one(&self.n4, 4)
        )
    }

    /// Mean ISEGEN-over-Genetic speedup advantage across all points (the
    /// paper: "on average, ISEGEN obtains more speedup than the genetic
    /// solution").
    pub fn mean_isegen_advantage(&self) -> f64 {
        let all: Vec<&Fig6Cell> = self.n1.iter().chain(&self.n4).collect();
        let sum: f64 = all.iter().map(|c| c.isegen / c.genetic).sum();
        sum / all.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_layout() {
        let cell = Fig6Cell {
            io: IoConstraints::new(4, 2),
            genetic: 1.5,
            isegen: 1.9,
        };
        let r = Fig6Result {
            n1: vec![cell],
            n4: vec![cell],
        };
        let text = r.render();
        assert!(text.contains("(4,2)"));
        assert!(text.contains("1.900"));
        assert!((r.mean_isegen_advantage() - 1.9 / 1.5).abs() < 1e-12);
    }
}
