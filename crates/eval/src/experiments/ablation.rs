//! §4.2 ablation: zero each gain-function weight in turn and measure the
//! quality loss — the evidence that every control parameter earns its
//! place (the paper tuned the weights experimentally but does not report
//! this study; DESIGN.md calls it out as a design-choice ablation).

use crate::Table;
use isegen_core::{GainWeights, Generator, IoConstraints, IseConfig, SearchConfig};
use isegen_ir::LatencyModel;
use isegen_workloads::paper_suite;

/// Which component a variant disables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// All five components active (the reference).
    Full,
    /// `w_merit = 0`.
    NoMerit,
    /// `w_io_penalty = 0`.
    NoIoPenalty,
    /// `w_affinity = 0`.
    NoAffinity,
    /// `w_growth = 0`.
    NoGrowth,
    /// `w_independence = 0`.
    NoIndependence,
}

impl Variant {
    /// Every variant, reference first.
    pub const ALL: [Variant; 6] = [
        Variant::Full,
        Variant::NoMerit,
        Variant::NoIoPenalty,
        Variant::NoAffinity,
        Variant::NoGrowth,
        Variant::NoIndependence,
    ];

    /// The variant's weights.
    pub fn weights(self) -> GainWeights {
        let mut w = GainWeights::default();
        match self {
            Variant::Full => {}
            Variant::NoMerit => w.merit = 0.0,
            Variant::NoIoPenalty => w.io_penalty = 0.0,
            Variant::NoAffinity => w.affinity = 0.0,
            Variant::NoGrowth => w.growth = 0.0,
            Variant::NoIndependence => w.independence = 0.0,
        }
        w
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "full",
            Variant::NoMerit => "-merit",
            Variant::NoIoPenalty => "-io_penalty",
            Variant::NoAffinity => "-affinity",
            Variant::NoGrowth => "-growth",
            Variant::NoIndependence => "-independence",
        }
    }
}

/// Speedups per workload for one variant.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The disabled component.
    pub variant: Variant,
    /// `(workload, speedup)` pairs.
    pub speedups: Vec<(String, f64)>,
}

/// The whole ablation.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// One row per variant, [`Variant::ALL`] order.
    pub rows: Vec<AblationRow>,
}

/// Runs every variant on every paper workload (ISEGEN with reuse, I/O `(4,2)`,
/// `N_ISE = 4`).
pub fn run() -> AblationResult {
    let model = LatencyModel::paper_default();
    let apps: Vec<_> = paper_suite()
        .into_iter()
        .map(|spec| (spec.name.to_string(), spec.application()))
        .collect();
    let config = IseConfig {
        io: IoConstraints::new(4, 2),
        max_ises: 4,
        reuse_matching: true,
    };
    let rows = Variant::ALL
        .iter()
        .map(|&variant| {
            let search = SearchConfig::new().with_weights(variant.weights());
            let speedups = apps
                .iter()
                .map(|(name, app)| {
                    let sel = Generator::new(config)
                        .search(search.clone())
                        .run(app, &model);
                    (name.clone(), sel.speedup())
                })
                .collect();
            AblationRow { variant, speedups }
        })
        .collect();
    AblationResult { rows }
}

impl AblationResult {
    /// Speedup per workload and variant.
    pub fn render(&self) -> String {
        let mut headers = vec!["variant".to_string()];
        if let Some(first) = self.rows.first() {
            headers.extend(first.speedups.iter().map(|(n, _)| n.clone()));
        }
        let mut t = Table::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.variant.label().to_string()];
            cells.extend(row.speedups.iter().map(|(_, s)| format!("{s:.3}")));
            t.row(cells);
        }
        format!("Gain-component ablation: ISEGEN speedup, I/O (4,2), N_ISE = 4\n{t}")
    }

    /// Geometric-mean speedup of a variant across workloads.
    pub fn geomean(&self, variant: Variant) -> Option<f64> {
        let row = self.rows.iter().find(|r| r.variant == variant)?;
        let log_sum: f64 = row.speedups.iter().map(|(_, s)| s.ln()).sum();
        Some((log_sum / row.speedups.len() as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_cover_all_components() {
        assert_eq!(Variant::ALL.len(), 6);
        let w = Variant::NoGrowth.weights();
        assert_eq!(w.growth, 0.0);
        assert!(w.merit > 0.0);
        assert_eq!(Variant::Full.weights(), GainWeights::default());
    }

    #[test]
    fn render_smoke() {
        let result = AblationResult {
            rows: vec![AblationRow {
                variant: Variant::Full,
                speedups: vec![("aes".into(), 2.0)],
            }],
        };
        assert!(result.render().contains("full"));
        assert!((result.geomean(Variant::Full).unwrap() - 2.0).abs() < 1e-12);
        assert!(result.geomean(Variant::NoMerit).is_none());
    }
}
