//! §4.1 claim: "we found experimentally that 5 passes are enough for
//! successive improvement of the solution."

use crate::Table;
use isegen_core::{BlockContext, IoConstraints, Search, SearchConfig};
use isegen_ir::LatencyModel;
use isegen_workloads::paper_suite;

/// Per-benchmark convergence trace.
#[derive(Debug, Clone)]
pub struct ConvergenceRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Merit of the best cut after `k+1` passes (index 0 = one pass).
    pub merit_by_passes: Vec<f64>,
    /// First pass count after which the merit stops improving.
    pub converged_at: usize,
}

/// The whole study.
#[derive(Debug, Clone)]
pub struct ConvergenceResult {
    /// One row per workload.
    pub rows: Vec<ConvergenceRow>,
    /// Pass budget explored.
    pub max_passes: usize,
}

/// Sweeps the pass budget on every paper workload's critical block under the
/// paper's `(4,2)` constraint.
pub fn run(max_passes: usize) -> ConvergenceResult {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    let rows = paper_suite()
        .into_iter()
        .map(|spec| {
            let app = spec.application();
            let block = app.critical_block().expect("workloads have blocks");
            let ctx = BlockContext::new(block, &model);
            let merit_by_passes: Vec<f64> = (1..=max_passes)
                .map(|k| {
                    let config = SearchConfig::new().with_max_passes(k);
                    Search::new(config).run(&ctx, io).cut.merit()
                })
                .collect();
            let last = *merit_by_passes.last().expect("non-empty sweep");
            let converged_at = merit_by_passes
                .iter()
                .position(|&m| (m - last).abs() < 1e-9)
                .expect("last always matches")
                + 1;
            ConvergenceRow {
                benchmark: spec.name.to_string(),
                merit_by_passes,
                converged_at,
            }
        })
        .collect();
    ConvergenceResult { rows, max_passes }
}

impl ConvergenceResult {
    /// Renders merit-vs-passes and the convergence point.
    pub fn render(&self) -> String {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend((1..=self.max_passes).map(|k| format!("p{k}")));
        headers.push("converged_at".to_string());
        let mut t = Table::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.benchmark.clone()];
            cells.extend(row.merit_by_passes.iter().map(|m| format!("{m:.2}")));
            cells.push(row.converged_at.to_string());
            t.row(cells);
        }
        format!("Convergence: best-cut merit vs. K-L pass budget, I/O (4,2)\n{t}")
    }

    /// The largest pass count any workload needed — the paper claims ≤ 5.
    pub fn worst_convergence(&self) -> usize {
        self.rows.iter().map(|r| r.converged_at).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merit_is_monotone_in_pass_budget() {
        // more passes never hurt (the algorithm keeps the best-so-far)
        let result = run(3);
        for row in &result.rows {
            for w in row.merit_by_passes.windows(2) {
                assert!(
                    w[1] >= w[0] - 1e-9,
                    "{}: merit decreased {} -> {}",
                    row.benchmark,
                    w[0],
                    w[1]
                );
            }
        }
        assert!(result.worst_convergence() >= 1);
        assert!(result.render().contains("aes"));
    }
}
