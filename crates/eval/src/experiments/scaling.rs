//! §4.2 complexity claim: ISEGEN's worst-case running time is O(n²) in
//! the block size. This study times one bi-partition on random DFGs of
//! growing size.

use crate::Table;
use isegen_core::{BlockContext, IoConstraints, Search, SearchConfig};
use isegen_ir::LatencyModel;
use isegen_workloads::{random_application, RandomWorkloadConfig};
use std::time::{Duration, Instant};

/// One measurement point.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Operations in the block.
    pub nodes: usize,
    /// Wall time of one full bi-partition.
    pub runtime: Duration,
}

/// The scaling study.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Measurements in ascending size.
    pub points: Vec<ScalingPoint>,
}

/// Times one ISEGEN bi-partition per block size.
pub fn run(sizes: &[usize]) -> ScalingResult {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    let search = SearchConfig::default();
    let points = sizes
        .iter()
        .map(|&nodes| {
            let app = random_application(&RandomWorkloadConfig {
                seed: nodes as u64,
                blocks: 1,
                ops_per_block: nodes,
                ..RandomWorkloadConfig::default()
            });
            let block = &app.blocks()[0];
            let ctx = BlockContext::new(block, &model);
            let start = Instant::now();
            let cut = Search::new(search.clone()).run(&ctx, io).cut;
            let runtime = start.elapsed();
            std::hint::black_box(cut);
            ScalingPoint { nodes, runtime }
        })
        .collect();
    ScalingResult { points }
}

impl ScalingResult {
    /// Runtime per size, with the size-normalised growth exponent
    /// between consecutive points (≈ 2 for quadratic behaviour).
    pub fn render(&self) -> String {
        let mut t = Table::new(["nodes", "runtime_us", "growth_exponent"]);
        for (i, p) in self.points.iter().enumerate() {
            let exponent = if i == 0 {
                "-".to_string()
            } else {
                let prev = &self.points[i - 1];
                let dt = p.runtime.as_secs_f64() / prev.runtime.as_secs_f64().max(1e-12);
                let dn = p.nodes as f64 / prev.nodes as f64;
                format!("{:.2}", dt.ln() / dn.ln())
            };
            t.row([
                p.nodes.to_string(),
                p.runtime.as_micros().to_string(),
                exponent,
            ]);
        }
        format!("ISEGEN bi-partition runtime scaling (random DFGs)\n{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_requested_sizes() {
        let result = run(&[20, 40]);
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.points[0].nodes, 20);
        assert!(result.render().contains("40"));
    }
}
