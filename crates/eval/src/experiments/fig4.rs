//! Figure 4: speedup and runtime of Exact / Iterative / Genetic / ISEGEN
//! on the seven MediaBench/EEMBC benchmarks, I/O `(4,2)`, `N_ISE = 4`.

use crate::{run_algorithm, Algorithm, HarnessConfig, RunOutcome, Table};
use isegen_ir::LatencyModel;
use isegen_workloads::mediabench_eembc_suite;

/// One benchmark's outcomes, in [`Algorithm::ALL`] order.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Critical-block operation count (the parenthesised number).
    pub nodes: usize,
    /// Outcomes for Exact, Iterative, Genetic, ISEGEN.
    pub outcomes: Vec<RunOutcome>,
}

/// The whole figure.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// One row per benchmark, in ascending size order.
    pub rows: Vec<Fig4Row>,
}

/// Runs the Fig. 4 comparison.
pub fn run(config: &HarnessConfig) -> Fig4Result {
    let model = LatencyModel::paper_default();
    let rows = mediabench_eembc_suite()
        .into_iter()
        .map(|spec| {
            let app = spec.application();
            let outcomes = Algorithm::ALL
                .iter()
                .map(|&alg| run_algorithm(alg, &app, &model, config))
                .collect();
            Fig4Row {
                benchmark: spec.name.to_string(),
                nodes: spec.kernel_ops,
                outcomes,
            }
        })
        .collect();
    Fig4Result { rows }
}

impl Fig4Result {
    /// The left plot: speedup per benchmark and algorithm.
    pub fn render_speedup(&self) -> Table {
        let mut t = Table::new(["benchmark", "Exact", "Iterative", "Genetic", "ISEGEN"]);
        for row in &self.rows {
            let mut cells = vec![format!("{}({})", row.benchmark, row.nodes)];
            cells.extend(row.outcomes.iter().map(|o| o.speedup_cell()));
            t.row(cells);
        }
        t
    }

    /// The right plot: runtime in microseconds (log scale in the paper).
    pub fn render_runtime(&self) -> Table {
        let mut t = Table::new([
            "benchmark",
            "Exact_us",
            "Iterative_us",
            "Genetic_us",
            "ISEGEN_us",
        ]);
        for row in &self.rows {
            let mut cells = vec![format!("{}({})", row.benchmark, row.nodes)];
            cells.extend(row.outcomes.iter().map(|o| match o.speedup {
                Some(_) => o.runtime_us().to_string(),
                None => format!("DNF({})", o.runtime_us()),
            }));
            t.row(cells);
        }
        t
    }

    /// Both plots as one report.
    pub fn render(&self) -> String {
        format!(
            "Figure 4 (left): Speedup, I/O (4,2), N_ISE = 4\n{}\n\
             Figure 4 (right): Runtime in microseconds, I/O (4,2), N_ISE = 4\n{}",
            self.render_speedup(),
            self.render_runtime()
        )
    }

    /// ISEGEN-vs-Genetic runtime ratio per benchmark (the paper's
    /// headline "up to N× faster" claim).
    pub fn genetic_over_isegen_runtime(&self) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .map(|r| {
                let genetic = r.outcomes[2].runtime.as_secs_f64();
                let isegen = r.outcomes[3].runtime.as_secs_f64().max(1e-9);
                (r.benchmark.clone(), genetic / isegen)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_baselines::GeneticConfig;

    /// A cheap configuration for CI: tiny GA, generous exact budgets.
    fn quick_config() -> HarnessConfig {
        HarnessConfig {
            genetic: GeneticConfig {
                population: 16,
                generations: 20,
                ..GeneticConfig::default()
            },
            ..HarnessConfig::paper_default()
        }
    }

    #[test]
    fn fig4_shape_holds_on_small_benchmarks() {
        // Restrict to the first four benchmarks (≤ 25 nodes) so the test
        // stays fast in debug builds.
        let model = LatencyModel::paper_default();
        let config = quick_config();
        for spec in mediabench_eembc_suite().into_iter().take(4) {
            let app = spec.application();
            let exact = run_algorithm(Algorithm::Exact, &app, &model, &config);
            let isegen = run_algorithm(Algorithm::Isegen, &app, &model, &config);
            let se = exact.speedup.expect("exact completes on small blocks");
            let si = isegen.speedup.expect("isegen always completes");
            assert!(si > 1.0, "{}: no speedup", spec.name);
            assert!(
                si >= 0.9 * se,
                "{}: ISEGEN {si} far below exact {se}",
                spec.name
            );
            assert!(
                si <= se + 1e-9,
                "{}: ISEGEN {si} above the optimum {se} without reuse",
                spec.name
            );
        }
    }

    #[test]
    fn render_contains_all_benchmarks() {
        // speed: run only ISEGEN by reusing run() on a stub config would
        // still execute everything; render-test with a hand-built result
        let outcome = RunOutcome {
            algorithm: Algorithm::Isegen,
            speedup: Some(1.5),
            runtime: std::time::Duration::from_micros(42),
            selection: None,
            note: None,
        };
        let result = Fig4Result {
            rows: vec![Fig4Row {
                benchmark: "conven00".into(),
                nodes: 6,
                outcomes: vec![outcome.clone(), outcome.clone(), outcome.clone(), outcome],
            }],
        };
        let text = result.render();
        assert!(text.contains("conven00(6)"));
        assert!(text.contains("1.500"));
        assert!(text.contains("42"));
        let ratios = result.genetic_over_isegen_runtime();
        assert_eq!(ratios.len(), 1);
    }
}
