//! Workload-corpus scaling gate: runs the sequential and batched
//! Problem-2 drivers over every registry workload in the selected size
//! tiers and writes per-workload rows (ops, ISEs found, speedup
//! estimate, wall time) as JSON.
//!
//! This is the CI gate behind the corpus: the binary **panics** if any
//! workload fails to search or if the batched driver's output diverges
//! from the sequential driver's, so a malformed kernel or a parallelism
//! regression fails the workflow rather than hiding in a benchmark.
//!
//! ```sh
//! scaling                               # small + medium tiers, scaling-report.json
//! scaling -- --tier all                 # the whole corpus, crypto included
//! scaling -- --tier large,huge --threads 8 --out /tmp/report.json
//! scaling -- --threads 4 --portfolio 4  # also gate portfolio-parallel parity
//! ```

use isegen_core::{
    Generator, IseConfig, IseSelection, IsegenFinder, MultilevelConfig, SearchConfig,
};

use isegen_ir::LatencyModel;
use isegen_workloads::{workloads_in_tiers, SizeTier, WorkloadSpec};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    category: &'static str,
    tier: &'static str,
    ops: usize,
    blocks: usize,
    ises: usize,
    instances: usize,
    speedup: f64,
    sequential_ms: f64,
    batched_ms: f64,
    /// Sequential driver with an intra-block portfolio fan-out
    /// (`--portfolio N`); NaN when the portfolio gate is off.
    portfolio_ms: f64,
    /// Driver wall time with the multilevel pipeline (`--multilevel`);
    /// NaN when the multilevel gate is off.
    multilevel_ms: f64,
    /// Saved cycles of the multilevel selection; 0 when the gate is off.
    multilevel_saved: u64,
    /// Saved cycles of the single-level baseline selection.
    saved_cycles: u64,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn run_workload(spec: &WorkloadSpec, threads: usize, portfolio: usize, multilevel: bool) -> Row {
    let app = spec.application();
    let model = LatencyModel::paper_default();
    let config = IseConfig::paper_default();
    let search = SearchConfig::default();

    let start = Instant::now();
    let sequential: IseSelection = Generator::new(config)
        .search(search.clone())
        .run(&app, &model);
    let sequential_ms = ms(start);

    let start = Instant::now();
    let batched = Generator::new(config)
        .search(search.clone())
        .threads(threads)
        .run(&app, &model);
    let batched_ms = ms(start);

    // The gate itself: a divergent batched result aborts the whole run
    // (and the CI job) rather than being recorded in a row.
    assert!(
        sequential == batched,
        "{}: batched driver diverged from sequential at {threads} threads",
        spec.name
    );

    // Portfolio-parity gate: the same driver with every block search
    // fanned out over `portfolio` intra-block threads must be
    // byte-identical too.
    let portfolio_ms = if portfolio > 1 {
        let finder = IsegenFinder::new(search).with_portfolio_threads(portfolio);
        let start = Instant::now();
        let fanned = Generator::new(config).finder(finder).run(&app, &model);
        let elapsed = ms(start);
        assert!(
            sequential == fanned,
            "{}: portfolio-parallel search diverged from sequential at {portfolio} threads",
            spec.name
        );
        elapsed
    } else {
        f64::NAN
    };

    // Multilevel gate: each *search* under the pipeline reaches ≥ the
    // single-level merit (that bound is what BENCH_multilevel.json
    // records), but the driver composes many searches greedily and a
    // better individual cut can reshape what is left for later
    // iterations — greedy totals are not monotone in per-cut merit. The
    // gate therefore allows 3% slack on total saved cycles: enough to
    // absorb composition effects, tight enough that a fell-back or
    // empty multilevel selection still fails the job.
    let (multilevel_ms, multilevel_saved) = if multilevel {
        let ml_search = SearchConfig::default().with_multilevel(MultilevelConfig::default());
        let start = Instant::now();
        let ml = Generator::new(config)
            .search(ml_search)
            .threads(threads)
            .run(&app, &model);
        let elapsed = ms(start);
        assert!(
            ml.saved_cycles * 100 >= sequential.saved_cycles * 97,
            "{}: multilevel selection saves fewer cycles than single-level ({} < 97% of {})",
            spec.name,
            ml.saved_cycles,
            sequential.saved_cycles
        );
        (elapsed, ml.saved_cycles)
    } else {
        (f64::NAN, 0)
    };
    Row {
        name: spec.name,
        category: spec.category.name(),
        tier: spec.tier().name(),
        ops: spec.kernel_ops,
        blocks: app.blocks().len(),
        ises: sequential.ises.len(),
        instances: sequential.instance_count(),
        speedup: sequential.speedup(),
        sequential_ms,
        batched_ms,
        portfolio_ms,
        multilevel_ms,
        multilevel_saved,
        saved_cycles: sequential.saved_cycles,
    }
}

const USAGE: &str =
    "usage: scaling [--tier LIST|all] [--threads N] [--portfolio N] [--multilevel] [--out PATH]
  --tier LIST    comma-separated size tiers (small/medium/large/huge) or all
                 (default small,medium)
  --threads N    batched-driver thread count (default: available parallelism)
  --portfolio N  additionally run the sequential driver with N intra-block
                 portfolio threads and fail on any divergence (default off)
  --multilevel   additionally run the driver with the multilevel
                 (coarsen\u{2192}K-L\u{2192}uncoarsen) pipeline and fail if its
                 selection saves fewer than 97% of the single-level
                 baseline's cycles
  --out PATH     JSON report path (default scaling-report.json)";

/// Prints the problem and the usage to stderr, then exits with code 2 —
/// a CLI mistake is a usage error, never a panic with a backtrace.
fn usage_error(message: &str) -> ! {
    eprintln!("scaling: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_tiers(arg: &str) -> Vec<SizeTier> {
    if arg == "all" {
        return SizeTier::ALL.to_vec();
    }
    arg.split(',')
        .map(|t| {
            SizeTier::parse(t.trim()).unwrap_or_else(|| usage_error(&format!("unknown tier {t:?}")))
        })
        .collect()
}

fn main() {
    let mut tiers = vec![SizeTier::Small, SizeTier::Medium];
    let mut out_path = "scaling-report.json".to_string();
    let mut portfolio = 0usize;
    let mut multilevel = false;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tier" => match args.next() {
                Some(list) => tiers = parse_tiers(&list),
                None => usage_error("--tier needs a list"),
            },
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => usage_error("--out needs a path"),
            },
            "--threads" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => threads = n,
                _ => usage_error("--threads needs a positive integer"),
            },
            "--portfolio" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => portfolio = n,
                _ => usage_error("--portfolio needs a positive integer"),
            },
            "--multilevel" => multilevel = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let specs = workloads_in_tiers(&tiers);
    assert!(!specs.is_empty(), "no workloads in the selected tiers");
    let tier_names: Vec<&str> = tiers.iter().map(|t| t.name()).collect();
    println!(
        "scaling gate: {} workloads (tiers: {}), {threads} threads, portfolio {}, multilevel {}",
        specs.len(),
        tier_names.join(","),
        if portfolio > 1 {
            format!("{portfolio} threads")
        } else {
            "off".to_string()
        },
        if multilevel { "on" } else { "off" }
    );

    let mut rows = Vec::with_capacity(specs.len());
    for spec in &specs {
        let row = run_workload(spec, threads, portfolio, multilevel);
        println!(
            "  {:>14} [{:>10}/{:<6}] n={:<5} ises={} instances={:<3} speedup={:<5.2} seq {:>9.2} ms  batched {:>9.2} ms  portfolio {:>9.2} ms  multilevel {:>9.2} ms",
            row.name,
            row.category,
            row.tier,
            row.ops,
            row.ises,
            row.instances,
            row.speedup,
            row.sequential_ms,
            row.batched_ms,
            row.portfolio_ms,
            row.multilevel_ms
        );
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n  \"report\": \"isegen workload scaling gate\",\n");
    let _ = writeln!(
        json,
        "  \"tiers\": \"{}\",\n  \"threads\": {},\n  \"portfolio_threads\": {},\n  \"multilevel\": {},\n  \"cpus\": {},",
        tier_names.join(","),
        threads,
        portfolio,
        multilevel,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"category\": \"{}\", \"tier\": \"{}\", \"ops\": {}, \"blocks\": {}, \"ises\": {}, \"instances\": {}, \"speedup\": {:.4}, \"saved_cycles\": {}, \"sequential_ms\": {:.3}, \"batched_ms\": {:.3}, \"portfolio_ms\": {}, \"multilevel_ms\": {}, \"multilevel_saved_cycles\": {}}}{}",
            r.name, r.category, r.tier, r.ops, r.blocks, r.ises, r.instances, r.speedup,
            r.saved_cycles, r.sequential_ms, r.batched_ms,
            if r.portfolio_ms.is_nan() {
                "null".to_string()
            } else {
                format!("{:.3}", r.portfolio_ms)
            },
            if r.multilevel_ms.is_nan() {
                "null".to_string()
            } else {
                format!("{:.3}", r.multilevel_ms)
            },
            r.multilevel_saved,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write scaling report");
    println!("wrote {out_path}");
}
