//! Regenerates Figure 4: speedup and runtime of the four algorithms on
//! the MediaBench/EEMBC suite, I/O (4,2), N_ISE = 4.

use isegen_eval::HarnessConfig;

fn main() {
    let config = HarnessConfig::paper_default();
    let result = isegen_eval::experiments::fig4::run(&config);
    println!("{}", result.render());
    println!("Genetic/ISEGEN runtime ratio (paper: ISEGEN runs orders of magnitude faster):");
    for (bench, ratio) in result.genetic_over_isegen_runtime() {
        println!("  {bench:>16}: {ratio:8.1}x");
    }
}
