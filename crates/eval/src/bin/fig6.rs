//! Regenerates Figure 6: AES speedup under the I/O sweep for
//! N_ISE ∈ {1, 4}, Genetic vs ISEGEN.

use isegen_baselines::GeneticConfig;
use isegen_core::SearchConfig;

fn main() {
    let result =
        isegen_eval::experiments::fig6::run(&SearchConfig::default(), &GeneticConfig::default());
    println!("{}", result.render());
    println!(
        "Mean ISEGEN/Genetic speedup ratio: {:.3} (paper: ISEGEN wins on average)",
        result.mean_isegen_advantage()
    );
}
