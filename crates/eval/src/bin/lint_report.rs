//! Corpus-wide static-analysis gate: runs the `isegen_analysis` pass
//! registry (`A001`..) over every registry workload in the selected
//! size tiers and writes per-workload diagnostic rows as JSON.
//!
//! This is the CI gate behind the lint framework: any error-severity
//! finding exits non-zero, so a workload generator that starts emitting
//! cyclic or rank-inconsistent blocks fails the workflow instead of
//! silently feeding garbage to the search. Warning-severity findings
//! are reported but do not gate — they are taste, not soundness.
//!
//! ```sh
//! lint_report                          # small + medium, lint-report.json
//! lint_report -- --tier all
//! lint_report -- --tier small --out /tmp/lint.json
//! ```

use isegen_analysis::{analyze, Diagnostic, Severity};
use isegen_workloads::{workloads_in_tiers, SizeTier, WorkloadSpec};
use std::fmt::Write as _;
use std::time::Instant;

const USAGE: &str = "usage: lint_report [--tier LIST|all] [--out PATH]
  --tier LIST  comma-separated size tiers (small/medium/large/huge) or all
               (default small,medium)
  --out PATH   JSON report path (default lint-report.json)";

/// Prints the problem and the usage to stderr, then exits with code 2 —
/// a CLI mistake is a usage error, never a panic with a backtrace.
fn usage_error(message: &str) -> ! {
    eprintln!("lint_report: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_tiers(arg: &str) -> Vec<SizeTier> {
    if arg == "all" {
        return SizeTier::ALL.to_vec();
    }
    arg.split(',')
        .map(|t| {
            SizeTier::parse(t.trim()).unwrap_or_else(|| usage_error(&format!("unknown tier {t:?}")))
        })
        .collect()
}

struct Row {
    name: &'static str,
    category: &'static str,
    tier: &'static str,
    ops: usize,
    diagnostics: Vec<Diagnostic>,
    wall_ms: f64,
}

fn run_workload(spec: &WorkloadSpec) -> Row {
    let app = spec.application();
    let start = Instant::now();
    let diagnostics = analyze(&app);
    Row {
        name: spec.name,
        category: spec.category.name(),
        tier: spec.tier().name(),
        ops: spec.kernel_ops,
        diagnostics,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn errors_in(diagnostics: &[Diagnostic]) -> usize {
    diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Minimal JSON string escaping for the hand-built report (messages can
/// quote block names and labels).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let mut tiers = vec![SizeTier::Small, SizeTier::Medium];
    let mut out_path = "lint-report.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tier" => match args.next() {
                Some(list) => tiers = parse_tiers(&list),
                None => usage_error("--tier needs a list"),
            },
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => usage_error("--out needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let specs = workloads_in_tiers(&tiers);
    assert!(!specs.is_empty(), "no workloads in the selected tiers");
    let tier_names: Vec<&str> = tiers.iter().map(|t| t.name()).collect();
    println!(
        "lint gate: {} workloads (tiers: {})",
        specs.len(),
        tier_names.join(",")
    );

    let mut rows = Vec::with_capacity(specs.len());
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for spec in &specs {
        let row = run_workload(spec);
        let errors = errors_in(&row.diagnostics);
        let warnings = row.diagnostics.len() - errors;
        println!(
            "  {:>14} [{:>10}/{:<6}] n={:<5} errors={} warnings={} {:>7.2} ms{}",
            row.name,
            row.category,
            row.tier,
            row.ops,
            errors,
            warnings,
            row.wall_ms,
            if errors > 0 { "  ** FAIL **" } else { "" }
        );
        for d in &row.diagnostics {
            println!("    {d}");
        }
        total_errors += errors;
        total_warnings += warnings;
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n  \"report\": \"isegen static-analysis gate\",\n");
    let _ = writeln!(
        json,
        "  \"tiers\": \"{}\",\n  \"errors\": {},\n  \"warnings\": {},",
        tier_names.join(","),
        total_errors,
        total_warnings
    );
    json.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let diags: Vec<String> = row
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "{{\"code\": \"{}\", \"severity\": \"{}\", \"block\": \"{}\", \"node\": {}, \"line\": {}, \"message\": \"{}\"}}",
                    d.code,
                    d.severity.name(),
                    escape(&d.block),
                    d.node.map_or("null".to_string(), |n| n.to_string()),
                    d.line.map_or("null".to_string(), |l| l.to_string()),
                    escape(&d.message)
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"category\": \"{}\", \"tier\": \"{}\", \"ops\": {}, \"wall_ms\": {:.3}, \"diagnostics\": [{}]}}{}",
            row.name,
            row.category,
            row.tier,
            row.ops,
            row.wall_ms,
            diags.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("lint_report: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");

    if total_errors > 0 {
        eprintln!("lint_report: FAIL: {total_errors} error-severity finding(s) across the corpus");
        std::process::exit(1);
    }
    println!(
        "lint_report: corpus clean of errors across {} workload(s) ({} warning(s))",
        rows.len(),
        total_warnings
    );
}
