//! `ised_client` — smoke client for the `ised` daemon.
//!
//! For every requested registry workload it submits the text IR, asks
//! for a selection and the RTL, and verifies the responses **bit for
//! bit** against the in-process library path (same drivers, same
//! emitter): speedup, per-ISE shapes and the full Verilog must be
//! byte-identical, the repeated selection must be served from the
//! daemon's memo, and the daemon's `verify` op must report zero
//! mismatches from its three-way differential oracle. Exit code 0 means the service pipeline is equivalent
//! to the library pipeline; 1 means divergence; 2 means CLI misuse.
//!
//! ```sh
//! ised --addr 127.0.0.1:0 &   # note the printed port
//! ised_client --addr 127.0.0.1:PORT --workload aes --workload fir00
//! ```

use isegen_core::{Generator, IseConfig, SearchConfig};
use isegen_ir::{text, LatencyModel};
use isegen_rtl::AfuLibrary;
use isegen_serve::json::{self, Json};
use isegen_workloads::workload_by_name;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const USAGE: &str = "usage: ised_client --addr HOST:PORT [--workload NAME]... [--threads N]
  --addr HOST:PORT  the running ised daemon (required)
  --workload NAME   registry workload to verify (repeatable; default aes, fir00)
  --threads N       request the batched driver with N threads (default 1)";

/// Prints the problem and the usage to stderr, then exits with code 2.
fn usage_error(message: &str) -> ! {
    eprintln!("ised_client: {message}\n{USAGE}");
    std::process::exit(2);
}

fn fail(message: String) -> ! {
    eprintln!("ised_client: FAIL: {message}");
    std::process::exit(1);
}

struct Connection {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> Connection {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| fail(format!("cannot connect to {addr}: {e}")));
        let reader = BufReader::new(
            stream
                .try_clone()
                .unwrap_or_else(|e| fail(format!("cannot clone stream: {e}"))),
        );
        Connection { stream, reader }
    }

    fn request(&mut self, payload: Json) -> Json {
        writeln!(self.stream, "{payload}").unwrap_or_else(|e| fail(format!("send: {e}")));
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .unwrap_or_else(|e| fail(format!("receive: {e}")));
        let response = json::parse(line.trim())
            .unwrap_or_else(|e| fail(format!("bad response {line:?}: {e}")));
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            fail(format!("error response: {response}"));
        }
        response
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut workloads: Vec<String> = Vec::new();
    let mut threads = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = Some(a),
                None => usage_error("--addr needs HOST:PORT"),
            },
            "--workload" => match args.next() {
                Some(w) => workloads.push(w),
                None => usage_error("--workload needs a name"),
            },
            "--threads" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => threads = n,
                _ => usage_error("--threads needs a positive integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let Some(addr) = addr else {
        usage_error("--addr is required");
    };
    if workloads.is_empty() {
        workloads = vec!["aes".into(), "fir00".into()];
    }

    let model = LatencyModel::paper_default();
    let config = IseConfig::paper_default();
    let search = SearchConfig::default();
    let mut conn = Connection::open(&addr);
    let request_config = Json::obj([("threads", threads.into())]);

    for name in &workloads {
        let spec = workload_by_name(name)
            .unwrap_or_else(|| usage_error(&format!("unknown workload {name:?}")));
        let app = spec.application();
        let ir = text::write_application(&app);

        // The reference: the in-process library pipeline.
        let expected = Generator::new(config)
            .search(search.clone())
            .run(&app, &model);
        let expected_afu = AfuLibrary::from_selection(&app, &model, &expected)
            .unwrap_or_else(|e| fail(format!("{name}: library AFU failed: {e}")));

        let submit = conn.request(Json::obj([
            ("op", "submit".into()),
            ("ir", ir.as_str().into()),
        ]));
        let hash = submit
            .get("app")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{name}: submit returned no hash")))
            .to_string();

        let select = |conn: &mut Connection| {
            conn.request(Json::obj([
                ("op", "select".into()),
                ("app", hash.as_str().into()),
                ("config", request_config.clone()),
            ]))
        };
        let first = select(&mut conn);
        // Byte-level equivalence of the scalar summary: compare the
        // serialized bits, not approximately.
        let speedup = first
            .get("speedup")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        if speedup.to_bits() != expected.speedup().to_bits() {
            fail(format!(
                "{name}: daemon speedup {speedup} != library {}",
                expected.speedup()
            ));
        }
        let ises = first.get("ises").and_then(Json::as_array).unwrap_or(&[]);
        if ises.len() != expected.ises.len() {
            fail(format!(
                "{name}: daemon found {} ISEs, library {}",
                ises.len(),
                expected.ises.len()
            ));
        }
        let second = select(&mut conn);
        if second.get("cache").and_then(Json::as_str) != Some("hit") {
            fail(format!("{name}: repeated selection was not a cache hit"));
        }
        if first.get("ises") != second.get("ises") {
            fail(format!("{name}: memoised selection differs from computed"));
        }

        let rtl = conn.request(Json::obj([
            ("op", "rtl".into()),
            ("app", hash.as_str().into()),
            ("config", request_config.clone()),
        ]));
        let verilog = rtl.get("verilog").and_then(Json::as_str).unwrap_or("");
        let expected_verilog = expected_afu.emit_verilog();
        if verilog != expected_verilog {
            fail(format!(
                "{name}: daemon Verilog ({} bytes) != library Verilog ({} bytes)",
                verilog.len(),
                expected_verilog.len()
            ));
        }
        // The verify op: the daemon must prove the Verilog it just
        // handed us executes correctly — three-way differential oracle,
        // zero mismatches.
        let verify = conn.request(Json::obj([
            ("op", "verify".into()),
            ("app", hash.as_str().into()),
            ("config", request_config.clone()),
            ("vectors", 32u64.into()),
        ]));
        if verify.get("passed").and_then(Json::as_bool) != Some(true) {
            fail(format!("{name}: verify reported mismatches: {verify}"));
        }
        let verified = verify.get("ises").and_then(Json::as_array).unwrap_or(&[]);
        if verified.len() != expected.ises.len() {
            fail(format!(
                "{name}: verify covered {} ISEs, expected {}",
                verified.len(),
                expected.ises.len()
            ));
        }
        println!(
            "ised_client: OK {name}: {} ISEs, speedup {speedup:.4}, {} Verilog bytes, cache hit + verify clean",
            ises.len(),
            verilog.len()
        );
    }

    let stats = conn.request(Json::obj([("op", "stats".into())]));
    let hits = stats
        .get("selection_hits")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if hits == 0 {
        fail("server reports zero selection cache hits".to_string());
    }
    println!("ised_client: stats {stats}");
    println!("ised_client: all {} workload(s) verified", workloads.len());
}
