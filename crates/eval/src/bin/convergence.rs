//! Regenerates the §4.1 convergence study: best-cut merit as a function
//! of the K-L pass budget ("5 passes are enough").

fn main() {
    let result = isegen_eval::experiments::convergence::run(8);
    println!("{}", result.render());
    println!(
        "Worst convergence across workloads: {} passes (paper claims <= 5)",
        result.worst_convergence()
    );
}
