//! Runs every experiment of the paper in sequence — the one-shot
//! reproduction driver behind EXPERIMENTS.md.

use isegen_baselines::GeneticConfig;
use isegen_core::SearchConfig;
use isegen_eval::experiments;
use isegen_eval::HarnessConfig;

fn main() {
    println!("==== ISEGEN (DATE 2005) full reproduction ====\n");

    println!("{}\n", experiments::fig1::run().render());

    let fig4 = experiments::fig4::run(&HarnessConfig::paper_default());
    println!("{}", fig4.render());
    println!("Genetic/ISEGEN runtime ratio:");
    for (bench, ratio) in fig4.genetic_over_isegen_runtime() {
        println!("  {bench:>16}: {ratio:8.1}x");
    }
    println!();

    let fig6 = experiments::fig6::run(&SearchConfig::default(), &GeneticConfig::default());
    println!("{}", fig6.render());
    println!(
        "Mean ISEGEN/Genetic speedup ratio: {:.3}\n",
        fig6.mean_isegen_advantage()
    );

    println!(
        "{}\n",
        experiments::fig7::run(&SearchConfig::default()).render()
    );

    let conv = experiments::convergence::run(8);
    println!("{}", conv.render());
    println!(
        "Worst convergence across workloads: {} passes\n",
        conv.worst_convergence()
    );

    println!("{}\n", experiments::ablation::run().render());

    println!("{}\n", experiments::deployment::run().render());

    println!(
        "{}",
        experiments::scaling::run(&[50, 100, 200, 400, 800]).render()
    );
}
