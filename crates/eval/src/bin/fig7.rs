//! Regenerates Figure 7: reusability of ISEGEN's AES cuts across the
//! I/O-constraint sweep.

use isegen_core::SearchConfig;

fn main() {
    let result = isegen_eval::experiments::fig7::run(&SearchConfig::default());
    println!("{}", result.render());
    println!("Total accelerated instances per constraint:");
    for (io, n) in result.total_instances() {
        println!("  {io}: {n}");
    }
}
