//! Regenerates Figure 1 (motivating example): reuse beats size.

fn main() {
    let result = isegen_eval::experiments::fig1::run();
    println!("{}", result.render());
}
