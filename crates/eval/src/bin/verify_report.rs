//! Corpus-wide RTL verification gate: for every registry workload in
//! the selected size tiers, run the paper-default selection, emit the
//! AFU Verilog, parse the emitted *text* back, and drive random
//! stimulus through the three-way differential oracle
//! (`ir::interp` ⇔ `Netlist::evaluate` ⇔ Verilog-sim). Writes
//! per-workload rows (ISEs, vectors, mismatches, toggle coverage) as
//! JSON.
//!
//! This is the CI gate behind the RTL back-end: any mismatch or any
//! harness failure exits non-zero, so a miscompiled datapath fails the
//! workflow rather than shipping as "plausible Verilog".
//!
//! ```sh
//! verify_report                             # small + medium, verify-report.json
//! verify_report -- --tier all --vectors 128
//! verify_report -- --tier small --seed 7 --out /tmp/report.json
//! ```

use isegen_core::{Generator, IseConfig};
use isegen_ir::LatencyModel;
use isegen_rtl::{verify_selection, VerifyConfig, VerifyReport};
use isegen_workloads::{workloads_in_tiers, SizeTier, WorkloadSpec};
use std::fmt::Write as _;
use std::time::Instant;

const USAGE: &str = "usage: verify_report [--tier LIST|all] [--vectors N] [--seed N] [--out PATH]
  --tier LIST  comma-separated size tiers (small/medium/large/huge) or all
               (default small,medium)
  --vectors N  random stimulus vectors per ISE (default 64)
  --seed N     stimulus seed, for reproducing a CI failure (default 0x5eed)
  --out PATH   JSON report path (default verify-report.json)";

/// Prints the problem and the usage to stderr, then exits with code 2 —
/// a CLI mistake is a usage error, never a panic with a backtrace.
fn usage_error(message: &str) -> ! {
    eprintln!("verify_report: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_tiers(arg: &str) -> Vec<SizeTier> {
    if arg == "all" {
        return SizeTier::ALL.to_vec();
    }
    arg.split(',')
        .map(|t| {
            SizeTier::parse(t.trim()).unwrap_or_else(|| usage_error(&format!("unknown tier {t:?}")))
        })
        .collect()
}

struct Row {
    name: &'static str,
    category: &'static str,
    tier: &'static str,
    ops: usize,
    reports: Vec<VerifyReport>,
    wall_ms: f64,
}

fn run_workload(spec: &WorkloadSpec, config: &VerifyConfig) -> Row {
    let app = spec.application();
    let model = LatencyModel::paper_default();
    let selection = Generator::new(IseConfig::paper_default()).run(&app, &model);
    let start = Instant::now();
    let reports = verify_selection(&app, &selection, config).unwrap_or_else(|e| {
        eprintln!("verify_report: FAIL {}: harness error: {e}", spec.name);
        std::process::exit(1);
    });
    Row {
        name: spec.name,
        category: spec.category.name(),
        tier: spec.tier().name(),
        ops: spec.kernel_ops,
        reports,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

fn main() {
    let mut tiers = vec![SizeTier::Small, SizeTier::Medium];
    let mut out_path = "verify-report.json".to_string();
    let mut config = VerifyConfig {
        vectors: 64,
        ..VerifyConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tier" => match args.next() {
                Some(list) => tiers = parse_tiers(&list),
                None => usage_error("--tier needs a list"),
            },
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => usage_error("--out needs a path"),
            },
            "--vectors" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => config.vectors = n,
                _ => usage_error("--vectors needs a positive integer"),
            },
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => config.seed = n,
                _ => usage_error("--seed needs an unsigned integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let specs = workloads_in_tiers(&tiers);
    assert!(!specs.is_empty(), "no workloads in the selected tiers");
    let tier_names: Vec<&str> = tiers.iter().map(|t| t.name()).collect();
    println!(
        "verify gate: {} workloads (tiers: {}), {} vectors per ISE, seed {:#x}",
        specs.len(),
        tier_names.join(","),
        config.vectors,
        config.seed
    );

    let mut rows = Vec::with_capacity(specs.len());
    let mut total_mismatches = 0usize;
    let mut total_ises = 0usize;
    for spec in &specs {
        let row = run_workload(spec, &config);
        let mismatches: usize = row.reports.iter().map(|r| r.mismatches).sum();
        let min_coverage = row
            .reports
            .iter()
            .flat_map(|r| r.output_bits_covered.iter().copied())
            .min()
            .unwrap_or(0);
        println!(
            "  {:>14} [{:>10}/{:<6}] n={:<5} ises={} vectors={} mismatches={} min_coverage={:<2} {:>9.2} ms{}",
            row.name,
            row.category,
            row.tier,
            row.ops,
            row.reports.len(),
            config.vectors,
            mismatches,
            min_coverage,
            row.wall_ms,
            if mismatches > 0 { "  ** FAIL **" } else { "" }
        );
        for report in row.reports.iter().filter(|r| !r.passed()) {
            for m in &report.first_mismatches {
                eprintln!("    {}: {}", report.module, m);
            }
        }
        total_mismatches += mismatches;
        total_ises += row.reports.len();
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n  \"report\": \"isegen RTL verification gate\",\n");
    let _ = writeln!(
        json,
        "  \"tiers\": \"{}\",\n  \"vectors\": {},\n  \"seed\": {},\n  \"ises\": {},\n  \"mismatches\": {},",
        tier_names.join(","),
        config.vectors,
        config.seed,
        total_ises,
        total_mismatches
    );
    json.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let ises: Vec<String> = row
            .reports
            .iter()
            .map(|r| {
                let coverage: Vec<String> = r
                    .output_bits_covered
                    .iter()
                    .map(u32::to_string)
                    .collect();
                format!(
                    "{{\"module\": \"{}\", \"cells\": {}, \"mismatches\": {}, \"output_bits_covered\": [{}]}}",
                    r.module,
                    r.cells,
                    r.mismatches,
                    coverage.join(", ")
                )
            })
            .collect();
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"category\": \"{}\", \"tier\": \"{}\", \"ops\": {}, \"wall_ms\": {:.3}, \"ises\": [{}]}}{}",
            row.name,
            row.category,
            row.tier,
            row.ops,
            row.wall_ms,
            ises.join(", "),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write verify report");
    println!("wrote {out_path}");

    if total_mismatches > 0 {
        eprintln!("verify_report: FAIL: {total_mismatches} mismatch(es) across the corpus");
        std::process::exit(1);
    }
    println!(
        "verify_report: all {total_ises} ISE(s) verified across {} workload(s)",
        rows.len()
    );
}
