//! Regenerates the deployment study (the paper's §6 future work): code
//! size, energy and AFU area impact of the generated ISEs.

fn main() {
    let result = isegen_eval::experiments::deployment::run();
    println!("{}", result.render());
}
