//! `fleet_soak` — the fault-injection soak harness for the sharded
//! `ised` fleet.
//!
//! Drives `--clients × --requests` concurrent selections through an
//! in-process [`Router`] front over real supervised `ised` shard
//! processes, while a chaos thread SIGKILLs shards round-robin every
//! `--kill-every` completed requests. Every response is checked for
//! **byte parity** (modulo the `cache` hit/miss field) against the
//! in-process library engine; after the storm, a warm pass asserts that
//! restarted shards serve from their replayed disk logs, and the shard
//! stderr logs are swept for panics.
//!
//! Exit code: 0 = clean soak, 1 = divergence/panic/protocol failure,
//! 2 = usage error.

use isegen_ir::LatencyModel;
use isegen_serve::fleet::{Fleet, FleetConfig, Router};
use isegen_serve::json::{self, Json};
use isegen_serve::{ServeCache, Service};
use isegen_workloads::{workloads_in_tiers, SizeTier};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: fleet_soak [--shards N] [--clients N] [--requests N]
                  [--kill-every N] [--tier small|medium|large] [--ised PATH]
                  [--state-dir DIR] [--out PATH] [--keep-logs] [--quiet]
  --shards N      ised backends behind the router (default 3)
  --clients N     concurrent client connections (default 25)
  --requests N    requests per client (default 10)
  --kill-every N  SIGKILL a shard every N completed requests; 0 = no chaos
                  (default 40)
  --tier T        workload size tier to draw programs from (default small)
  --ised PATH     ised binary (default: next to this binary, else PATH)
  --state-dir DIR fleet state dir (default: a fresh temp dir)
  --out PATH      write the aggregated soak report as JSON
  --keep-logs     keep the state dir (shard logs + cache logs) afterwards
  --quiet         suppress progress output";

fn usage_error(message: &str) -> ! {
    eprintln!("fleet_soak: {message}\n{USAGE}");
    std::process::exit(2);
}

struct Args {
    shards: usize,
    clients: usize,
    requests: usize,
    kill_every: u64,
    tier: SizeTier,
    ised: PathBuf,
    state_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    keep_logs: bool,
    quiet: bool,
}

fn sibling_ised() -> PathBuf {
    if let Ok(me) = std::env::current_exe() {
        if let Some(dir) = me.parent() {
            let candidate = dir.join("ised");
            if candidate.is_file() {
                return candidate;
            }
        }
    }
    PathBuf::from("ised")
}

fn parse_args() -> Args {
    let mut parsed = Args {
        shards: 3,
        clients: 25,
        requests: 10,
        kill_every: 40,
        tier: SizeTier::Small,
        ised: sibling_ised(),
        state_dir: None,
        out: None,
        keep_logs: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => parsed.shards = n,
                _ => usage_error("--shards needs a positive integer"),
            },
            "--clients" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => parsed.clients = n,
                _ => usage_error("--clients needs a positive integer"),
            },
            "--requests" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => parsed.requests = n,
                _ => usage_error("--requests needs a positive integer"),
            },
            "--kill-every" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => parsed.kill_every = n,
                _ => usage_error("--kill-every needs a non-negative integer"),
            },
            "--tier" => match args.next().as_deref() {
                Some("small") => parsed.tier = SizeTier::Small,
                Some("medium") => parsed.tier = SizeTier::Medium,
                Some("large") => parsed.tier = SizeTier::Large,
                _ => usage_error("--tier needs small, medium or large"),
            },
            "--ised" => match args.next() {
                Some(p) if !p.is_empty() => parsed.ised = p.into(),
                _ => usage_error("--ised needs a path"),
            },
            "--state-dir" => match args.next() {
                Some(p) if !p.is_empty() => parsed.state_dir = Some(p.into()),
                _ => usage_error("--state-dir needs a directory path"),
            },
            "--out" => match args.next() {
                Some(p) if !p.is_empty() => parsed.out = Some(p.into()),
                _ => usage_error("--out needs a path"),
            },
            "--keep-logs" => parsed.keep_logs = true,
            "--quiet" => parsed.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    parsed
}

/// A response with the transport-dependent `cache` field removed, so a
/// computed answer and a memo hit compare equal.
fn strip_cache(response: &Json) -> String {
    match response {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "cache")
                .cloned()
                .collect(),
        )
        .to_string(),
        other => other.to_string(),
    }
}

/// One line-framed request/response over an existing connection.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> Result<Json, String> {
    writeln!(stream, "{request}").map_err(|e| format!("send: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("receive: {e}"))?;
    if line.is_empty() {
        return Err("connection closed".to_string());
    }
    json::parse(line.trim()).map_err(|e| format!("bad response: {e}"))
}

fn main() {
    let args = parse_args();
    let state_dir = args.state_dir.clone().unwrap_or_else(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        std::env::temp_dir().join(format!("isegen-soak-{}-{nanos}", std::process::id()))
    });
    let progress = |message: &str| {
        if !args.quiet {
            eprintln!("[fleet_soak] {message}");
        }
    };

    let specs = workloads_in_tiers(&[args.tier]);
    if specs.is_empty() {
        usage_error("the chosen tier has no workloads");
    }

    // The parity oracle: each workload's expected answer from the
    // in-process engine, computed before any chaos starts.
    progress(&format!(
        "computing {} oracle answers from the library engine",
        specs.len()
    ));
    let oracle = Service::new(
        ServeCache::new(specs.len().max(8), LatencyModel::paper_default()),
        "soak-oracle",
        false,
    );
    let select_requests: Vec<String> = specs
        .iter()
        .map(|spec| {
            let ir = isegen_ir::text::write_application(&spec.application());
            Json::obj([("op", "select".into()), ("ir", ir.as_str().into())]).to_string()
        })
        .collect();
    let expected: Vec<String> = select_requests
        .iter()
        .map(|request| {
            let response = oracle.handle_bytes(request.as_bytes()).unwrap_or_else(|e| {
                eprintln!("fleet_soak: oracle failed: {e}");
                std::process::exit(1);
            });
            strip_cache(&response)
        })
        .collect();

    let fleet = Fleet::start(FleetConfig {
        shards: args.shards,
        ised_bin: args.ised.clone(),
        state_dir: state_dir.clone(),
        cache_capacity: specs.len().max(8),
        verbose: false,
        health_interval: Duration::from_millis(100),
        backoff_base: Duration::from_millis(25),
        breaker_open_for: Duration::from_millis(500),
        ..FleetConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("fleet_soak: cannot start fleet: {e}");
        std::process::exit(1);
    });
    let router = Router::bind("127.0.0.1:0", fleet).unwrap_or_else(|e| {
        eprintln!("fleet_soak: cannot bind router: {e}");
        std::process::exit(1);
    });
    let addr = router.local_addr();
    progress(&format!(
        "router on {addr}: {} shards, {} clients × {} requests, kill every {}",
        args.shards, args.clients, args.requests, args.kill_every
    ));

    let completed = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let transport_errors = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let kills = AtomicU64::new(0);
    let soak_done = AtomicBool::new(false);
    let t0 = Instant::now();

    std::thread::scope(|scope| {
        scope.spawn(|| router.run().expect("router run"));

        // The chaos thread: SIGKILL shards round-robin as the request
        // counter crosses multiples of --kill-every.
        let chaos = scope.spawn(|| {
            if args.kill_every == 0 {
                return;
            }
            let mut next_kill = args.kill_every;
            let mut victim = 0usize;
            while !soak_done.load(Ordering::SeqCst) {
                if completed.load(Ordering::SeqCst) >= next_kill {
                    let backend = &router.fleet().backends()[victim % args.shards];
                    if let Some(pid) = backend.pid() {
                        let _ = std::process::Command::new("kill")
                            .args(["-9", &pid.to_string()])
                            .status();
                        kills.fetch_add(1, Ordering::SeqCst);
                    }
                    victim += 1;
                    next_kill += args.kill_every;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        });

        let clients: Vec<_> = (0..args.clients)
            .map(|c| {
                let select_requests = &select_requests;
                let expected = &expected;
                let completed = &completed;
                let mismatches = &mismatches;
                let transport_errors = &transport_errors;
                let hits = &hits;
                scope.spawn(move || {
                    let mut stream = match TcpStream::connect(addr) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("fleet_soak: client {c} cannot connect: {e}");
                            transport_errors.fetch_add(1, Ordering::SeqCst);
                            return;
                        }
                    };
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
                    let mut reader =
                        BufReader::new(stream.try_clone().expect("clone client stream"));
                    for r in 0..args.requests {
                        let w = (c + r) % select_requests.len();
                        match roundtrip(&mut stream, &mut reader, &select_requests[w]) {
                            Ok(response) => {
                                if response.get("cache").and_then(Json::as_str) == Some("hit") {
                                    hits.fetch_add(1, Ordering::SeqCst);
                                }
                                if strip_cache(&response) != expected[w] {
                                    mismatches.fetch_add(1, Ordering::SeqCst);
                                    eprintln!(
                                        "fleet_soak: client {c} request {r}: DIVERGED: {response}"
                                    );
                                }
                            }
                            Err(e) => {
                                // A router that is up never drops a
                                // request — any transport failure at
                                // the client is a soak failure.
                                transport_errors.fetch_add(1, Ordering::SeqCst);
                                eprintln!("fleet_soak: client {c} request {r}: {e}");
                                return;
                            }
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for client in clients {
            let _ = client.join();
        }
        soak_done.store(true, Ordering::SeqCst);
        let _ = chaos.join();
        progress(&format!(
            "storm over in {:.1}s: {} completed, {} kills",
            t0.elapsed().as_secs_f64(),
            completed.load(Ordering::SeqCst),
            kills.load(Ordering::SeqCst)
        ));

        // Give the health loop a moment to bring every shard back, then
        // the warm pass: every workload again, expecting parity and at
        // least one disk-replayed cache hit if anything was killed.
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline && router.fleet().backends().iter().any(|b| b.child_dead())
        {
            std::thread::sleep(Duration::from_millis(50));
        }
        let mut warm_hits = 0u64;
        let mut warm_failures = 0u64;
        let mut warm_conn = TcpStream::connect(addr).expect("warm connect");
        let _ = warm_conn.set_read_timeout(Some(Duration::from_secs(300)));
        let mut warm_reader = BufReader::new(warm_conn.try_clone().expect("clone"));
        for (w, request) in select_requests.iter().enumerate() {
            match roundtrip(&mut warm_conn, &mut warm_reader, request) {
                Ok(response) => {
                    if response.get("cache").and_then(Json::as_str) == Some("hit") {
                        warm_hits += 1;
                    }
                    if strip_cache(&response) != expected[w] {
                        warm_failures += 1;
                        eprintln!("fleet_soak: warm pass DIVERGED on workload {w}: {response}");
                    }
                }
                Err(e) => {
                    warm_failures += 1;
                    eprintln!("fleet_soak: warm pass workload {w}: {e}");
                }
            }
        }

        let stats =
            roundtrip(&mut warm_conn, &mut warm_reader, r#"{"op":"stats"}"#).unwrap_or(Json::Null);
        router.request_stop();

        // Sweep the shard logs for panics — the acceptance bar is zero.
        let mut panics = 0u64;
        for i in 0..args.shards {
            let log = state_dir.join(format!("shard-{i}.log"));
            if let Ok(text) = std::fs::read_to_string(&log) {
                let found = text.matches("panicked").count() as u64;
                if found > 0 {
                    eprintln!("fleet_soak: shard {i} log shows {found} panic(s)");
                }
                panics += found;
            }
        }

        let killed = kills.load(Ordering::SeqCst);
        let report = Json::obj([
            ("shards", args.shards.into()),
            ("clients", args.clients.into()),
            ("requests_per_client", args.requests.into()),
            ("kill_every", args.kill_every.into()),
            ("completed", completed.load(Ordering::SeqCst).into()),
            ("kills", killed.into()),
            ("mismatches", mismatches.load(Ordering::SeqCst).into()),
            (
                "transport_errors",
                transport_errors.load(Ordering::SeqCst).into(),
            ),
            ("cache_hits", hits.load(Ordering::SeqCst).into()),
            ("warm_hits", warm_hits.into()),
            ("warm_failures", warm_failures.into()),
            ("shard_log_panics", panics.into()),
            ("elapsed_secs", t0.elapsed().as_secs_f64().into()),
            ("router_stats", stats),
        ]);
        if let Some(out) = &args.out {
            std::fs::write(out, format!("{report}\n")).unwrap_or_else(|e| {
                eprintln!("fleet_soak: cannot write {}: {e}", out.display());
            });
        }
        println!("{report}");

        let total = (args.clients * args.requests) as u64;
        let mut failed = false;
        if completed.load(Ordering::SeqCst) != total {
            eprintln!(
                "fleet_soak: FAIL: only {}/{} requests completed",
                completed.load(Ordering::SeqCst),
                total
            );
            failed = true;
        }
        if mismatches.load(Ordering::SeqCst) != 0 || warm_failures != 0 {
            eprintln!("fleet_soak: FAIL: responses diverged from the library engine");
            failed = true;
        }
        if transport_errors.load(Ordering::SeqCst) != 0 {
            eprintln!("fleet_soak: FAIL: clients saw transport errors");
            failed = true;
        }
        if panics != 0 {
            eprintln!("fleet_soak: FAIL: shard logs contain panics");
            failed = true;
        }
        if killed > 0 && warm_hits == 0 {
            eprintln!("fleet_soak: FAIL: no warm cache hit after {killed} shard kills");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        progress("soak passed");
    });

    if !args.keep_logs && args.state_dir.is_none() {
        std::fs::remove_dir_all(&state_dir).ok();
    }
}
