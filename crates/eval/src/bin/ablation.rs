//! Regenerates the gain-component ablation (DESIGN.md §6): speedup with
//! each of the five gain weights zeroed in turn.

use isegen_eval::experiments::ablation::{self, Variant};

fn main() {
    let result = ablation::run();
    println!("{}", result.render());
    println!("Geometric-mean speedup per variant:");
    for v in Variant::ALL {
        if let Some(g) = result.geomean(v) {
            println!("  {:>14}: {g:.3}", v.label());
        }
    }
}
