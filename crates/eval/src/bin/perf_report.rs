//! Machine-readable performance report of the §4.3 hot path — seeds the
//! repo's perf trajectory.
//!
//! Runs four sweeps and writes `BENCH_kl.json` plus
//! `BENCH_portfolio.json` (override with `--out PATH` /
//! `--portfolio-out PATH`):
//!
//! 1. **toggle** — committed-toggle throughput of the incremental
//!    [`ToggleEngine`] on random blocks and the AES block.
//! 2. **kl** — full `bipartition` wall time plus the gain-cache probe
//!    counters (probes avoided is the cache's win).
//! 3. **driver** — sequential vs. batched multi-block driver on
//!    multi-block workloads, with an equality check.
//! 4. **portfolio** — single-block search with the weight-flavour ×
//!    restart portfolio run sequentially vs. on threads, with
//!    per-trajectory wall times, an identity check and the threads=1
//!    overhead of the portfolio machinery.
//!
//! `--full` multiplies the workload sizes; the default quick mode is the
//! CI smoke configuration (record-only, no thresholds). `--threads N`
//! pins the batched-driver and portfolio thread counts (default:
//! available parallelism).
//!
//! `--strategy multilevel` runs a different report entirely: the
//! single- vs multi-level (coarsen→K-L→uncoarsen) comparison over every
//! large/huge-tier registry block, with per-level refinement stats,
//! written to `BENCH_multilevel.json`.

use isegen_core::{
    BlockContext, Cut, CutFinder, Generator, IoConstraints, IseConfig, IsegenFinder,
    MultilevelConfig, MultilevelReport, Search, SearchConfig, SelectionStrategy, ToggleEngine,
    TrajectoryReport,
};
use isegen_graph::{NodeId, NodeSet};
use isegen_ir::{Application, BasicBlock, LatencyModel};
use isegen_workloads::{
    random_application, workload_by_name, workloads_in, workloads_in_tiers, Category,
    RandomWorkloadConfig, SizeTier,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// [`IsegenFinder`] wrapper counting `find_cut` invocations — the
/// hardware-independent "batched does fewer searches" evidence (clones
/// share the counter, so parallel waves are counted too).
#[derive(Clone)]
struct CountingFinder {
    inner: IsegenFinder,
    count: Arc<AtomicU64>,
}

impl CountingFinder {
    fn new(search: &SearchConfig) -> Self {
        CountingFinder {
            inner: IsegenFinder::new(search.clone()),
            count: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl CutFinder for CountingFinder {
    fn find_cut(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
    ) -> Cut {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.find_cut(ctx, io, forbidden)
    }

    fn name(&self) -> &str {
        "isegen"
    }
}

struct MultilevelRow {
    workload: String,
    tier: &'static str,
    nodes: usize,
    free_ops: usize,
    single_ms: f64,
    single_merit: f64,
    multi_ms: f64,
    multi_merit: f64,
    /// `single_ms / multi_ms` — above 1 the pipeline is a speedup.
    speedup: f64,
    report: MultilevelReport,
}

struct ToggleRow {
    workload: String,
    tier: &'static str,
    nodes: usize,
    toggles: u64,
    wall_ms: f64,
    toggles_per_sec: f64,
}

struct KlRow {
    workload: String,
    tier: &'static str,
    nodes: usize,
    wall_ms: f64,
    fresh_probes: u64,
    cached_probes: u64,
    avoided_pct: f64,
    commits: u64,
    full_invalidations: u64,
    trajectories: u64,
    arena_reuses: u64,
    queue_pops: u64,
    queue_stale_revalidations: u64,
    queue_reinsertions: u64,
    merit: f64,
}

struct DriverRow {
    workload: String,
    blocks: usize,
    threads: usize,
    sequential_ms: f64,
    batched_ms: f64,
    sequential_searches: u64,
    batched_searches: u64,
    speedup: f64,
    identical: bool,
}

struct PortfolioRow {
    workload: String,
    nodes: usize,
    threads: usize,
    /// Plain sequential `bipartition` (the pre-portfolio baseline path).
    sequential_ms: f64,
    /// Portfolio entry point at threads=1 — its overhead must be noise.
    portfolio1_ms: f64,
    /// Portfolio at the requested thread count.
    portfolio_ms: f64,
    overhead1_pct: f64,
    speedup: f64,
    identical: bool,
    trajectories: Vec<TrajectoryReport>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn rand_block(seed: u64, ops: usize) -> Application {
    random_application(&RandomWorkloadConfig {
        seed,
        blocks: 1,
        ops_per_block: ops,
        ..RandomWorkloadConfig::default()
    })
}

fn largest_block(app: &Application) -> &BasicBlock {
    app.blocks()
        .iter()
        .max_by_key(|b| b.dag().node_count())
        .expect("application has blocks")
}

/// Pins the audit-mode contract the perf numbers depend on: with the
/// default configuration the invariant auditor must do *zero* work
/// (`audit_checks == 0` — the disabled path is one integer compare per
/// commit), and switching it on must not change the search outcome.
fn audit_spot_check(model: &LatencyModel) {
    let spec = workload_by_name("fir00").expect("registry entry");
    let app = spec.application();
    let block = largest_block(&app);
    let ctx = BlockContext::new(block, model);
    let io = IoConstraints::new(4, 2);
    let plain = Search::new(SearchConfig::default()).run(&ctx, io);
    // With `IsegenAudit` in the environment the default configuration
    // is deliberately audited, so only pin zero overhead without it.
    if std::env::var_os("IsegenAudit").is_none() {
        assert_eq!(
            plain.stats.audit_checks, 0,
            "audit work leaked into the default configuration"
        );
    }
    let audited = Search::new(SearchConfig::default().with_audit_cadence(8)).run(&ctx, io);
    assert!(audited.stats.audit_checks > 0, "audit cadence 8 never ran");
    assert_eq!(
        audited.cut, plain.cut,
        "audit mode changed the search outcome"
    );
    println!(
        "audit spot-check: disabled=0 checks, cadence 8={} checks, identical cut",
        audited.stats.audit_checks
    );
}

/// Size tier of a block by its operation count (mirrors the registry's
/// classification, so synthetic `randN` rows report a tier too).
fn tier_of(block: &BasicBlock) -> &'static str {
    SizeTier::of(block.operation_count()).name()
}

fn bench_toggles(name: &str, block: &BasicBlock, model: &LatencyModel, rounds: u64) -> ToggleRow {
    let ctx = BlockContext::new(block, model);
    let eligible: Vec<NodeId> = ctx.eligible().iter().collect();
    let mut engine = ToggleEngine::new(&ctx);
    let start = Instant::now();
    let mut toggles = 0u64;
    for r in 0..rounds {
        for (i, &v) in eligible.iter().enumerate() {
            // a deterministic mix of entering and leaving commits
            if (i as u64 + r) % 3 != 2 {
                engine.toggle(v);
                toggles += 1;
            }
        }
    }
    let wall_ms = ms(start);
    ToggleRow {
        workload: name.to_string(),
        tier: tier_of(block),
        nodes: ctx.node_count(),
        toggles,
        wall_ms,
        toggles_per_sec: toggles as f64 / (wall_ms / 1e3),
    }
}

fn bench_kl(
    name: &str,
    block: &BasicBlock,
    model: &LatencyModel,
    strategy: SelectionStrategy,
) -> KlRow {
    let ctx = BlockContext::new(block, model);
    let io = IoConstraints::new(4, 2);
    let config = SearchConfig::default();
    let start = Instant::now();
    let config = config.with_strategy(strategy);
    let outcome = Search::new(config).run(&ctx, io);
    let (cut, stats) = (outcome.cut, outcome.stats);
    KlRow {
        workload: name.to_string(),
        tier: tier_of(block),
        nodes: ctx.node_count(),
        wall_ms: ms(start),
        fresh_probes: stats.fresh_probes,
        cached_probes: stats.cached_probes,
        avoided_pct: stats.avoided_fraction() * 100.0,
        commits: stats.commits,
        full_invalidations: stats.full_invalidations,
        trajectories: stats.trajectories,
        arena_reuses: stats.arena_reuses,
        queue_pops: stats.queue_pops,
        queue_stale_revalidations: stats.queue_stale_revalidations,
        queue_reinsertions: stats.queue_reinsertions,
        merit: cut.merit(),
    }
}

fn bench_driver(name: &str, app: &Application, model: &LatencyModel, threads: usize) -> DriverRow {
    // A deep selection (8 ISEs per block) runs into the exhaustion
    // endgame where the drivers differ: late rounds re-visit fragmented
    // blocks, which the sequential driver re-searches every round and
    // the batched driver memoises.
    let config = IseConfig {
        max_ises: 8 * app.blocks().len(),
        ..IseConfig::paper_default()
    };
    let search = SearchConfig::default();
    // Best of two interleaved runs each: single-shot wall times on a
    // shared machine are scheduler-noisy; the minimum is the honest
    // algorithmic cost. Search counts come from the first rep.
    let mut sequential_ms = f64::INFINITY;
    let mut batched_ms = f64::INFINITY;
    let mut sequential_searches = 0;
    let mut batched_searches = 0;
    let mut sequential = None;
    let mut batched = None;
    for rep in 0..2 {
        let mut seq = Generator::new(config).finder(CountingFinder::new(&search));
        let start = Instant::now();
        sequential = Some(seq.run(app, model));
        sequential_ms = sequential_ms.min(ms(start));
        let mut bat = Generator::new(config)
            .finder(CountingFinder::new(&search))
            .threads(threads);
        let start = Instant::now();
        batched = Some(bat.run(app, model));
        batched_ms = batched_ms.min(ms(start));
        if rep == 0 {
            sequential_searches = seq.finder_ref().count.load(Ordering::Relaxed);
            batched_searches = bat.finder_ref().count.load(Ordering::Relaxed);
        }
    }
    DriverRow {
        workload: name.to_string(),
        blocks: app.blocks().len(),
        threads,
        sequential_ms,
        batched_ms,
        sequential_searches,
        batched_searches,
        speedup: sequential_ms / batched_ms,
        identical: sequential == batched,
    }
}

fn bench_portfolio(
    name: &str,
    block: &BasicBlock,
    model: &LatencyModel,
    threads: usize,
) -> PortfolioRow {
    let ctx = BlockContext::new(block, model);
    let io = IoConstraints::new(4, 2);
    let config = SearchConfig::default();
    // Best of two interleaved runs (see bench_driver): single-shot wall
    // times are scheduler-noisy and the minimum is the honest cost.
    let mut sequential_ms = f64::INFINITY;
    let mut portfolio1_ms = f64::INFINITY;
    let mut portfolio_ms = f64::INFINITY;
    let mut identical = true;
    for _ in 0..2 {
        let start = Instant::now();
        let sequential = Search::new(config.clone()).run(&ctx, io).cut;
        sequential_ms = sequential_ms.min(ms(start));
        let start = Instant::now();
        let one = Search::new(config.clone()).threads(1).run(&ctx, io).cut;
        portfolio1_ms = portfolio1_ms.min(ms(start));
        let start = Instant::now();
        let parallel = Search::new(config.clone())
            .threads(threads)
            .run(&ctx, io)
            .cut;
        portfolio_ms = portfolio_ms.min(ms(start));
        identical &= one == sequential && parallel == sequential;
    }
    // Per-trajectory wall times from a profiled run on a warm pool.
    let profiled = Search::new(config.clone()).threads(threads).profiled(true);
    let mut pool = Vec::new();
    let _ = profiled.run_pooled(&ctx, io, &mut pool);
    let trajectories = profiled.run_pooled(&ctx, io, &mut pool).reports;
    PortfolioRow {
        workload: name.to_string(),
        nodes: ctx.node_count(),
        threads,
        sequential_ms,
        portfolio1_ms,
        portfolio_ms,
        overhead1_pct: (portfolio1_ms / sequential_ms - 1.0) * 100.0,
        speedup: sequential_ms / portfolio_ms,
        identical,
        trajectories,
    }
}

fn bench_multilevel(
    name: &str,
    block: &BasicBlock,
    model: &LatencyModel,
    threads: usize,
) -> MultilevelRow {
    let ctx = BlockContext::new(block, model);
    let io = IoConstraints::new(4, 2);
    // Best of two interleaved runs (see bench_driver): the minimum is
    // the honest algorithmic cost on a noisy shared machine.
    let mut single_ms = f64::INFINITY;
    let mut multi_ms = f64::INFINITY;
    let mut single_merit = 0.0;
    let mut multi_merit = 0.0;
    let mut report = None;
    for _ in 0..2 {
        let start = Instant::now();
        let single = Search::new(SearchConfig::default())
            .threads(threads)
            .run(&ctx, io);
        single_ms = single_ms.min(ms(start));
        single_merit = single.cut.merit();
        let ml_config = SearchConfig::default().with_multilevel(MultilevelConfig::default());
        let start = Instant::now();
        let multi = Search::new(ml_config).threads(threads).run(&ctx, io);
        multi_ms = multi_ms.min(ms(start));
        multi_merit = multi.cut.merit();
        report = multi.multilevel;
    }
    MultilevelRow {
        workload: name.to_string(),
        tier: tier_of(block),
        nodes: ctx.node_count(),
        free_ops: ctx.eligible().len(),
        single_ms,
        single_merit,
        multi_ms,
        multi_merit,
        speedup: single_ms / multi_ms,
        report: report.expect("multilevel pipeline ran on a large block"),
    }
}

/// The `--strategy multilevel` sweep: single- vs multi-level search on
/// every large/huge-tier block, with per-level stats, written to
/// `out_path` (committed as `BENCH_multilevel.json`).
fn multilevel_sweep(threads: usize, out_path: &str) {
    let model = LatencyModel::paper_default();
    let specs = workloads_in_tiers(&[SizeTier::Large, SizeTier::Huge]);
    assert!(!specs.is_empty(), "no large/huge workloads in the registry");
    let mut rows = Vec::with_capacity(specs.len());
    println!("multilevel (single- vs multi-level V-cycle, {threads} threads):");
    for spec in &specs {
        let app = spec.application();
        let row = bench_multilevel(spec.name, largest_block(&app), &model, threads);
        println!(
            "  {:>10} [{:<5}] n={:<5} single {:>9.2} ms merit={:<9.2} multi {:>9.2} ms merit={:<9.2} {:>5.2}x  coarsen {:>6.2} ms  fell_back={}",
            row.workload,
            row.tier,
            row.nodes,
            row.single_ms,
            row.single_merit,
            row.multi_ms,
            row.multi_merit,
            row.speedup,
            row.report.coarsen_wall_ms,
            row.report.fell_back
        );
        for (i, l) in row.report.levels.iter().enumerate() {
            println!(
                "      level {:>2}  n={:<5} free={:<5} seed={:<5} band={:<5} merit={:<9.2} pops={:<8} {:>8.2} ms",
                i, l.nodes, l.free_ops, l.seed_ops, l.band_ops, l.merit, l.refine_pops, l.wall_ms
            );
        }
        rows.push(row);
    }

    let mut json = String::new();
    json.push_str("{\n  \"report\": \"isegen multilevel coarsen-search-uncoarsen\",\n");
    let _ = writeln!(
        json,
        "  \"threads\": {},\n  \"cpus\": {},",
        threads,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"tier\": \"{}\", \"nodes\": {}, \"free_ops\": {}, \"single_ms\": {:.3}, \"single_merit\": {:.4}, \"multi_ms\": {:.3}, \"multi_merit\": {:.4}, \"speedup\": {:.3}, \"coarsen_ms\": {:.3}, \"fell_back\": {}, \"levels\": [",
            r.workload, r.tier, r.nodes, r.free_ops, r.single_ms, r.single_merit,
            r.multi_ms, r.multi_merit, r.speedup, r.report.coarsen_wall_ms, r.report.fell_back
        );
        for (j, l) in r.report.levels.iter().enumerate() {
            let _ = writeln!(
                json,
                "      {{\"nodes\": {}, \"free_ops\": {}, \"seed_ops\": {}, \"band_ops\": {}, \"merit\": {:.4}, \"refine_pops\": {}, \"wall_ms\": {:.3}}}{}",
                l.nodes, l.free_ops, l.seed_ops, l.band_ops, l.merit, l.refine_pops, l.wall_ms,
                if j + 1 < r.report.levels.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "    ]}}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write multilevel report");
    println!("wrote {out_path}");
}

const USAGE: &str = "usage: perf_report [--full] [--threads N] [--out PATH] [--portfolio-out PATH]
  --full               full-size sweeps (CI quick mode is the default)
  --threads N          batched-driver and portfolio thread count
                       (default: available parallelism)
  --strategy S         queue (default) or scan select the K-L strategy
                       for the kl sweep; multilevel instead runs the
                       single- vs multi-level V-cycle sweep over the
                       large/huge tiers and writes BENCH_multilevel.json
  --out PATH           JSON report path (default BENCH_kl.json, or
                       BENCH_multilevel.json with --strategy multilevel)
  --portfolio-out PATH portfolio report path (default BENCH_portfolio.json)";

/// Prints the problem and the usage to stderr, then exits with code 2 —
/// a CLI mistake is a usage error, never a panic with a backtrace.
fn usage_error(message: &str) -> ! {
    eprintln!("perf_report: {message}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut portfolio_out_path = "BENCH_portfolio.json".to_string();
    let mut full = false;
    let mut strategy = SelectionStrategy::Queue;
    let mut multilevel = false;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--out" => match args.next() {
                Some(path) => out_path = Some(path),
                None => usage_error("--out needs a path"),
            },
            "--portfolio-out" => match args.next() {
                Some(path) => portfolio_out_path = path,
                None => usage_error("--portfolio-out needs a path"),
            },
            "--threads" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => threads = n,
                _ => usage_error("--threads needs a positive integer"),
            },
            "--strategy" => match args.next().as_deref() {
                Some("queue") => strategy = SelectionStrategy::Queue,
                Some("scan") => strategy = SelectionStrategy::Scan,
                Some("multilevel") => multilevel = true,
                _ => usage_error("--strategy needs `queue`, `scan` or `multilevel`"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    if multilevel {
        let out = out_path.unwrap_or_else(|| "BENCH_multilevel.json".to_string());
        multilevel_sweep(threads, &out);
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_kl.json".to_string());

    let model = LatencyModel::paper_default();
    audit_spot_check(&model);
    let sizes: &[usize] = if full {
        &[200, 400, 800, 1600]
    } else {
        &[200, 800]
    };
    let toggle_rounds: u64 = if full { 12 } else { 4 };

    let mut toggle_rows = Vec::new();
    let mut kl_rows = Vec::new();
    for &ops in sizes {
        let app = rand_block(7, ops);
        let name = format!("rand{ops}");
        toggle_rows.push(bench_toggles(
            &name,
            &app.blocks()[0],
            &model,
            toggle_rounds,
        ));
        kl_rows.push(bench_kl(&name, &app.blocks()[0], &model, strategy));
    }
    // Real kernels come from the registry: the crypto suite up to
    // full-round AES-128 in quick mode, the whole crypto tier in full.
    // sha256 rides along even in quick mode: its toggles/sec is the
    // headline number the queue selector is benchmarked on.
    let crypto_cap = if full { usize::MAX } else { 1100 };
    for spec in workloads_in(Category::Crypto) {
        if spec.kernel_ops > crypto_cap && spec.name != "sha256" {
            continue;
        }
        let app = spec.application();
        let block = largest_block(&app);
        toggle_rows.push(bench_toggles(spec.name, block, &model, toggle_rounds));
        kl_rows.push(bench_kl(spec.name, block, &model, strategy));
    }

    let mut driver_rows = Vec::new();
    // Small blocks + a deep budget reach coverage exhaustion, the phase
    // where the sequential driver re-searches fragmented blocks each
    // round; large blocks measure the cap-bound steady state.
    for &(blocks, ops) in if full {
        &[(4usize, 48usize), (8, 48), (8, 200), (16, 100)][..]
    } else {
        &[(4, 48), (8, 48), (8, 120)][..]
    } {
        let app = random_application(&RandomWorkloadConfig {
            seed: 11,
            blocks,
            ops_per_block: ops,
            ..RandomWorkloadConfig::default()
        });
        driver_rows.push(bench_driver(
            &format!("rand{blocks}x{ops}"),
            &app,
            &model,
            threads,
        ));
    }
    // Registry workloads for the driver comparison: the paper's AES in
    // quick mode, plus full-round AES-128 in full mode.
    let driver_names: &[&str] = if full { &["aes", "aes128"] } else { &["aes"] };
    for name in driver_names {
        let spec = workload_by_name(name).expect("registry entry");
        driver_rows.push(bench_driver(
            spec.name,
            &spec.application(),
            &model,
            threads,
        ));
    }

    // Portfolio sweep: the single-block hot path, sequential vs.
    // portfolio at 1 and N threads, identity-checked.
    let mut portfolio_rows = Vec::new();
    {
        let app = rand_block(7, if full { 1600 } else { 800 });
        portfolio_rows.push(bench_portfolio(
            &format!("rand{}", if full { 1600 } else { 800 }),
            &app.blocks()[0],
            &model,
            threads,
        ));
    }
    for name in ["aes", "aes128"] {
        let spec = workload_by_name(name).expect("registry entry");
        let app = spec.application();
        portfolio_rows.push(bench_portfolio(
            spec.name,
            largest_block(&app),
            &model,
            threads,
        ));
    }

    // ---- render ---------------------------------------------------------

    println!("toggle throughput (incremental engine):");
    for r in &toggle_rows {
        println!(
            "  {:>8} [{:<6}] n={:<5} {:>9} toggles in {:>8.2} ms  ({:>10.0} toggles/s)",
            r.workload, r.tier, r.nodes, r.toggles, r.wall_ms, r.toggles_per_sec
        );
    }
    println!("K-L bipartition (gain cache):");
    for r in &kl_rows {
        println!(
            "  {:>8} [{:<6}] n={:<5} {:>8.2} ms  fresh={:<8} cached={:<9} avoided={:>5.1}%  commits={:<6} flushes={} traj={} reuses={}  pops={} stale={} reins={}  merit={:.2}",
            r.workload, r.tier, r.nodes, r.wall_ms, r.fresh_probes, r.cached_probes, r.avoided_pct,
            r.commits, r.full_invalidations, r.trajectories, r.arena_reuses,
            r.queue_pops, r.queue_stale_revalidations, r.queue_reinsertions, r.merit
        );
    }
    println!("driver (sequential vs batched, {threads} threads):");
    for r in &driver_rows {
        println!(
            "  {:>10}  blocks={:<3} seq {:>8.2} ms/{:<3} searches  batched {:>8.2} ms/{:<3} searches  {:>4.2}x  identical={}",
            r.workload,
            r.blocks,
            r.sequential_ms,
            r.sequential_searches,
            r.batched_ms,
            r.batched_searches,
            r.speedup,
            r.identical
        );
        assert!(r.identical, "batched driver diverged on {}", r.workload);
        // Without speculation the batched driver's searches are a subset
        // of the sequential driver's (memoisation only removes work). At
        // threads > 1, speculative wave searches can be invalidated by
        // reuse-matching coverage before they are consumed, so the count
        // is legitimately workload-dependent — record it, don't gate it.
        if r.threads == 1 {
            assert!(
                r.batched_searches <= r.sequential_searches,
                "batched driver searched more than sequential at 1 thread"
            );
        }
    }
    println!("portfolio (sequential vs {threads}-thread trajectory fan-out):");
    for r in &portfolio_rows {
        println!(
            "  {:>10}  n={:<5} seq {:>8.2} ms  portfolio@1 {:>8.2} ms ({:+.1}%)  portfolio@{} {:>8.2} ms  {:>4.2}x  identical={}",
            r.workload,
            r.nodes,
            r.sequential_ms,
            r.portfolio1_ms,
            r.overhead1_pct,
            r.threads,
            r.portfolio_ms,
            r.speedup,
            r.identical
        );
        for t in &r.trajectories {
            println!(
                "      {:>8} seed={:<12} {:>8.2} ms  merit={:<8.2} avoided={:>5.1}%",
                t.flavour,
                t.seed.map_or("-".to_string(), |s| s.to_string()),
                t.wall_ms,
                t.merit,
                t.stats.avoided_fraction() * 100.0
            );
        }
        assert!(r.identical, "portfolio diverged on {}", r.workload);
    }

    // ---- JSON -----------------------------------------------------------

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"report\": \"isegen perf trajectory\",\n  \"mode\": \"{}\",\n  \"strategy\": \"{}\",\n  \"threads\": {},\n  \"cpus\": {},",
        if full { "full" } else { "quick" },
        match strategy {
            SelectionStrategy::Queue => "queue",
            SelectionStrategy::Scan => "scan",
            _ => "other",
        },
        threads,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    json.push_str("  \"toggle_engine\": [\n");
    for (i, r) in toggle_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"tier\": \"{}\", \"nodes\": {}, \"toggles\": {}, \"wall_ms\": {:.3}, \"toggles_per_sec\": {:.0}}}{}",
            r.workload, r.tier, r.nodes, r.toggles, r.wall_ms, r.toggles_per_sec,
            if i + 1 < toggle_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"kl\": [\n");
    for (i, r) in kl_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"tier\": \"{}\", \"nodes\": {}, \"wall_ms\": {:.3}, \"fresh_probes\": {}, \"cached_probes\": {}, \"probes_avoided_pct\": {:.2}, \"commits\": {}, \"full_invalidations\": {}, \"trajectories\": {}, \"arena_reuses\": {}, \"queue_pops\": {}, \"queue_stale_revalidations\": {}, \"queue_reinsertions\": {}, \"merit\": {:.4}}}{}",
            r.workload, r.tier, r.nodes, r.wall_ms, r.fresh_probes, r.cached_probes, r.avoided_pct,
            r.commits, r.full_invalidations, r.trajectories, r.arena_reuses,
            r.queue_pops, r.queue_stale_revalidations, r.queue_reinsertions, r.merit,
            if i + 1 < kl_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"driver\": [\n");
    for (i, r) in driver_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"blocks\": {}, \"threads\": {}, \"sequential_ms\": {:.3}, \"batched_ms\": {:.3}, \"sequential_searches\": {}, \"batched_searches\": {}, \"speedup\": {:.3}, \"identical\": {}}}{}",
            r.workload, r.blocks, r.threads, r.sequential_ms, r.batched_ms,
            r.sequential_searches, r.batched_searches, r.speedup, r.identical,
            if i + 1 < driver_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write perf report");
    println!("wrote {out_path}");

    // ---- portfolio JSON -------------------------------------------------

    let mut json = String::new();
    json.push_str("{\n  \"report\": \"isegen portfolio-parallel block search\",\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",\n  \"threads\": {},\n  \"cpus\": {},",
        if full { "full" } else { "quick" },
        threads,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    json.push_str("  \"workloads\": [\n");
    for (i, r) in portfolio_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"threads\": {}, \"sequential_ms\": {:.3}, \"portfolio1_ms\": {:.3}, \"portfolio_ms\": {:.3}, \"overhead1_pct\": {:.2}, \"speedup\": {:.3}, \"identical\": {}, \"trajectories\": [",
            r.workload, r.nodes, r.threads, r.sequential_ms, r.portfolio1_ms, r.portfolio_ms,
            r.overhead1_pct, r.speedup, r.identical
        );
        for (j, t) in r.trajectories.iter().enumerate() {
            let _ = writeln!(
                json,
                "      {{\"flavour\": \"{}\", \"seed\": {}, \"wall_ms\": {:.3}, \"merit\": {:.4}, \"fresh_probes\": {}, \"cached_probes\": {}, \"probes_avoided_pct\": {:.2}}}{}",
                t.flavour,
                t.seed.map_or("null".to_string(), |s| s.index().to_string()),
                t.wall_ms,
                t.merit,
                t.stats.fresh_probes,
                t.stats.cached_probes,
                t.stats.avoided_fraction() * 100.0,
                if j + 1 < r.trajectories.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            json,
            "    ]}}{}",
            if i + 1 < portfolio_rows.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&portfolio_out_path, &json).expect("write portfolio report");
    println!("wrote {portfolio_out_path}");
}
