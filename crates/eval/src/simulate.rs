//! Cycle-level execution simulation: validates the analytic speedup
//! model by *running* the application, block execution by block
//! execution, and counting cycles with and without the generated ISEs.
//!
//! The analytic model (paper §5) computes
//! `S = Λ_sw / (Λ_sw − Σ freq·saved)`. This simulator re-derives both
//! sides operationally: every block execution issues its operations on
//! the single-issue core (software latency each), except that operations
//! claimed by an ISE instance issue once per instance as a single AFU
//! instruction of `ceil(λ_hw)` cycles. The two must agree exactly —
//! a regression brake on both the model and the driver's bookkeeping.

use isegen_core::IseSelection;
use isegen_ir::{Application, LatencyModel, Opcode};

/// Cycle counts of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimReport {
    /// Total cycles without any ISE.
    pub cycles_software: u64,
    /// Total cycles with the selection's ISEs deployed.
    pub cycles_accelerated: u64,
}

impl SimReport {
    /// The simulated speedup.
    pub fn speedup(&self) -> f64 {
        if self.cycles_accelerated == 0 {
            return 1.0;
        }
        self.cycles_software as f64 / self.cycles_accelerated as f64
    }
}

/// Simulates `app` running `frequency(b)` executions of every block,
/// with and without `selection`'s ISEs.
pub fn simulate(app: &Application, model: &LatencyModel, selection: &IseSelection) -> SimReport {
    // Per block: which nodes are covered by some instance, and the AFU
    // issue cost charged per block execution for each instance.
    let mut covered: Vec<Vec<bool>> = app
        .blocks()
        .iter()
        .map(|b| vec![false; b.dag().node_count()])
        .collect();
    let mut afu_cycles_per_exec: Vec<u64> = vec![0; app.blocks().len()];
    for ise in &selection.ises {
        let afu_cost = {
            // the instruction occupies whole cycles: ceil(λ_hw), min 1
            let hw = ise.cut.hardware_latency();
            (hw.ceil() as u64).max(1)
        };
        for inst in &ise.instances {
            for v in inst.nodes.iter() {
                covered[inst.block_index][v.index()] = true;
            }
            afu_cycles_per_exec[inst.block_index] += afu_cost;
        }
    }

    let mut cycles_software = 0u64;
    let mut cycles_accelerated = 0u64;
    for (bi, block) in app.blocks().iter().enumerate() {
        let mut sw_per_exec = 0u64;
        let mut residual = 0u64; // residual software ops when accelerated
        for (id, op) in block.dag().nodes() {
            if op.opcode() == Opcode::Input {
                continue;
            }
            let cost = model.sw_cycles(op.opcode()) as u64;
            sw_per_exec += cost;
            if !covered[bi][id.index()] {
                residual += cost;
            }
        }
        let acc_per_exec = residual + afu_cycles_per_exec[bi];
        cycles_software += block.frequency() * sw_per_exec;
        cycles_accelerated += block.frequency() * acc_per_exec;
    }
    SimReport {
        cycles_software,
        cycles_accelerated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_core::{Generator, IoConstraints, IseConfig};
    use isegen_workloads::{autcor00, fbital00, viterb00};

    #[test]
    fn simulation_agrees_with_the_analytic_model() {
        let model = LatencyModel::paper_default();
        for app in [autcor00(), fbital00(), viterb00()] {
            for reuse in [false, true] {
                let config = IseConfig {
                    io: IoConstraints::new(4, 2),
                    max_ises: 4,
                    reuse_matching: reuse,
                };
                let sel = Generator::new(config).run(&app, &model);
                let sim = simulate(&app, &model, &sel);
                assert_eq!(
                    sim.cycles_software,
                    sel.total_sw_cycles,
                    "{}: software cycle disagreement",
                    app.name()
                );
                let analytic = sel.speedup();
                let simulated = sim.speedup();
                assert!(
                    (analytic - simulated).abs() < 1e-9,
                    "{} (reuse {reuse}): analytic {analytic} vs simulated {simulated}",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn empty_selection_is_neutral() {
        let model = LatencyModel::paper_default();
        let app = autcor00();
        let sel = IseSelection {
            ises: Vec::new(),
            total_sw_cycles: app.total_software_latency(&model),
            saved_cycles: 0,
        };
        let sim = simulate(&app, &model, &sel);
        assert_eq!(sim.cycles_software, sim.cycles_accelerated);
        assert_eq!(sim.speedup(), 1.0);
    }
}
