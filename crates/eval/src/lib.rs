//! Experiment harness regenerating every table and figure of the ISEGEN
//! paper (Biswas et al., DATE 2005).
//!
//! One module per experiment, each with a `run()` returning structured
//! results and a `render()` producing the text table the paper's figure
//! plots. One binary per figure (`fig1`, `fig4`, `fig6`, `fig7`,
//! `convergence`, `ablation`, `all_experiments`).
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Fig. 1 (motivation: reuse beats size) | [`experiments::fig1`] | `fig1` |
//! | Fig. 4 left (speedup, 7 benchmarks, 4 algorithms) | [`experiments::fig4`] | `fig4` |
//! | Fig. 4 right (runtime, µs, log scale) | [`experiments::fig4`] | `fig4` |
//! | Fig. 6 (AES speedup vs I/O constraints, N_ISE ∈ {1,4}) | [`experiments::fig6`] | `fig6` |
//! | Fig. 7 (AES cut reusability) | [`experiments::fig7`] | `fig7` |
//! | §4.1 "5 passes suffice" | [`experiments::convergence`] | `convergence` |
//! | §4.2 gain-component value | [`experiments::ablation`] | `ablation` |
//! | §6 future work (code size / energy / AFU area) | [`experiments::deployment`] | `deployment` |
//!
//! [`simulate`] additionally validates the analytic speedup model by
//! counting cycles operationally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod runner;
pub mod simulate;
mod table;

pub use runner::{run_algorithm, Algorithm, HarnessConfig, RunOutcome};
pub use table::Table;
