//! CLI contract of the eval binaries: bad arguments print usage to
//! stderr and exit with code 2 — they must never panic with a backtrace
//! (the old behaviour) or start a long run on misunderstood flags.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("binary spawns");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn assert_usage_error(bin: &str, args: &[&str]) {
    let (code, _, stderr) = run(bin, args);
    assert_eq!(
        code,
        Some(2),
        "{bin} {args:?} must exit 2, stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{bin} {args:?} must print usage to stderr, got: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "{bin} {args:?} panicked: {stderr}"
    );
}

#[test]
fn scaling_rejects_bad_args_with_exit_2() {
    let bin = env!("CARGO_BIN_EXE_scaling");
    assert_usage_error(bin, &["--frobnicate"]);
    assert_usage_error(bin, &["--tier"]);
    assert_usage_error(bin, &["--tier", "enormous"]);
    assert_usage_error(bin, &["--threads", "many"]);
    assert_usage_error(bin, &["--threads", "0"]);
    assert_usage_error(bin, &["--out"]);
}

#[test]
fn perf_report_rejects_bad_args_with_exit_2() {
    let bin = env!("CARGO_BIN_EXE_perf_report");
    assert_usage_error(bin, &["--frobnicate"]);
    assert_usage_error(bin, &["--threads", "-1"]);
    assert_usage_error(bin, &["--out"]);
}

#[test]
fn ised_client_rejects_bad_args_with_exit_2() {
    let bin = env!("CARGO_BIN_EXE_ised_client");
    assert_usage_error(bin, &["--frobnicate"]);
    assert_usage_error(bin, &[]); // --addr is required
    assert_usage_error(bin, &["--addr"]);
    assert_usage_error(bin, &["--addr", "x", "--threads", "0"]);
}

#[test]
fn verify_report_rejects_bad_args_with_exit_2() {
    let bin = env!("CARGO_BIN_EXE_verify_report");
    assert_usage_error(bin, &["--frobnicate"]);
    assert_usage_error(bin, &["--tier"]);
    assert_usage_error(bin, &["--tier", "enormous"]);
    assert_usage_error(bin, &["--vectors"]);
    assert_usage_error(bin, &["--vectors", "0"]);
    assert_usage_error(bin, &["--vectors", "many"]);
    assert_usage_error(bin, &["--seed", "-1"]);
    assert_usage_error(bin, &["--out"]);
}

#[test]
fn fleet_soak_rejects_bad_args_with_exit_2() {
    let bin = env!("CARGO_BIN_EXE_fleet_soak");
    assert_usage_error(bin, &["--frobnicate"]);
    assert_usage_error(bin, &["--shards"]);
    assert_usage_error(bin, &["--shards", "0"]);
    assert_usage_error(bin, &["--clients", "many"]);
    assert_usage_error(bin, &["--requests", "0"]);
    assert_usage_error(bin, &["--kill-every", "-1"]);
    assert_usage_error(bin, &["--tier", "enormous"]);
    assert_usage_error(bin, &["--ised"]);
    assert_usage_error(bin, &["--out"]);
}

#[test]
fn help_goes_to_stdout_with_exit_0() {
    for bin in [
        env!("CARGO_BIN_EXE_scaling"),
        env!("CARGO_BIN_EXE_perf_report"),
        env!("CARGO_BIN_EXE_ised_client"),
        env!("CARGO_BIN_EXE_verify_report"),
        env!("CARGO_BIN_EXE_fleet_soak"),
    ] {
        let (code, stdout, _) = run(bin, &["--help"]);
        assert_eq!(code, Some(0), "{bin} --help");
        assert!(stdout.contains("usage:"), "{bin} --help prints usage");
    }
}
