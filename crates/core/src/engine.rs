use crate::{BlockContext, Cut, IoConstraints};
use isegen_graph::components::{Components, OUTSIDE};
use isegen_graph::{path, NodeId, NodeSet};

/// Incremental hardware/software partition state — the paper's §4.3
/// toggle-impact machinery.
///
/// The paper maintains per-node input/output *addendums* (ΔI, ΔO, Fig. 3)
/// so that toggling a node between software (S) and hardware (H) updates
/// the cut's operand counts in O(deg) instead of a full recount. This
/// implementation expresses the same bookkeeping with an equivalent
/// counter scheme:
///
/// * `fanout_to_cut[p]` — number of edges from `p` into cut nodes. The
///   cut's **input count** is the number of nodes outside the cut with
///   `fanout_to_cut > 0` (distinct producers feeding the cut).
/// * A cut node is an **output** when it has at least one consumer outside
///   the cut or is live-out of the block.
///
/// Equivalence with a from-scratch recount is enforced by property tests
/// (`tests/engine_prop.rs`), substituting for the rule-table proofs the
/// paper defers to its technical report.
///
/// After every *committed* toggle the engine refreshes its heavier state
/// (longest-path arrays, convexity masks, connected components) in
/// O(n + e + |C|·n/64); per-*candidate* probes then cost O(deg + n/64).
#[derive(Debug)]
pub struct ToggleEngine<'c, 'a> {
    ctx: &'c BlockContext<'a>,
    cut: NodeSet,
    fanout_to_cut: Vec<u32>,
    input_count: u32,
    output_count: u32,
    sw_sum: u64,
    up: Vec<f64>,
    down: Vec<f64>,
    critical: f64,
    below: NodeSet,
    above: NodeSet,
    convex_now: bool,
    comp_label: Vec<u32>,
    comp_cp: Vec<f64>,
    comp_cp_total: f64,
    scratch_a: NodeSet,
    scratch_b: NodeSet,
}

/// The predicted effect of toggling one node, produced by
/// [`ToggleEngine::probe`]. Feed it to the gain function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// `true` when the node would move S → H (join the cut).
    pub entering: bool,
    /// Input operand count of the cut after the toggle.
    pub inputs: u32,
    /// Output operand count of the cut after the toggle.
    pub outputs: u32,
    /// Convexity of the cut after the toggle. Exact for entering moves
    /// and for leaving moves out of a convex cut; pessimistically `false`
    /// for leaving moves out of a non-convex cut (the merit component is
    /// zero for non-convex cuts anyway, per §4.2).
    pub convex: bool,
    /// Estimated merit `λ_sw − λ_hw` of the cut after the toggle; `0.0`
    /// when `convex` is false (paper §4.2). The hardware critical path is
    /// exact for entering moves and conservative (an upper bound) for
    /// leaving moves.
    pub merit: f64,
    /// Number of distinct neighbours of the node currently in the cut
    /// (the paper's `N(v, C)` affinity input).
    pub neighbors_in_cut: u32,
    /// For a leaving move: the summed hardware critical paths of the
    /// *other* connected components of the cut (the paper's
    /// independent-cuts input). `0.0` for entering moves.
    pub other_components_hw: f64,
}

impl<'c, 'a> ToggleEngine<'c, 'a> {
    /// Starts from the all-software configuration (empty cut).
    pub fn new(ctx: &'c BlockContext<'a>) -> Self {
        Self::from_cut(ctx, NodeSet::new(ctx.node_count()))
    }

    /// Starts from an existing cut (e.g. the best cut of the previous
    /// K-L pass).
    ///
    /// # Panics
    ///
    /// Panics if `cut`'s capacity does not match the block.
    pub fn from_cut(ctx: &'c BlockContext<'a>, cut: NodeSet) -> Self {
        let n = ctx.node_count();
        assert_eq!(cut.capacity(), n, "cut capacity does not match block");
        let dag = ctx.block().dag();
        let mut fanout_to_cut = vec![0u32; n];
        for v in cut.iter() {
            for &p in dag.preds(v) {
                fanout_to_cut[p.index()] += 1;
            }
        }
        let mut engine = ToggleEngine {
            ctx,
            cut,
            fanout_to_cut,
            input_count: 0,
            output_count: 0,
            sw_sum: 0,
            up: vec![0.0; n],
            down: vec![0.0; n],
            critical: 0.0,
            below: NodeSet::new(n),
            above: NodeSet::new(n),
            convex_now: true,
            comp_label: vec![OUTSIDE; n],
            comp_cp: Vec::new(),
            comp_cp_total: 0.0,
            scratch_a: NodeSet::new(n),
            scratch_b: NodeSet::new(n),
        };
        engine.recount_io();
        engine.refresh();
        engine
    }

    /// The current cut.
    #[inline]
    pub fn cut(&self) -> &NodeSet {
        &self.cut
    }

    /// Current input operand count.
    #[inline]
    pub fn input_count(&self) -> u32 {
        self.input_count
    }

    /// Current output operand count.
    #[inline]
    pub fn output_count(&self) -> u32 {
        self.output_count
    }

    /// Whether the current cut is convex (exact).
    #[inline]
    pub fn is_convex(&self) -> bool {
        self.convex_now
    }

    /// Software latency of the current cut, in cycles.
    #[inline]
    pub fn software_latency(&self) -> u64 {
        self.sw_sum
    }

    /// Hardware critical path of the current cut, in MAC units (exact).
    #[inline]
    pub fn hardware_latency(&self) -> f64 {
        self.critical
    }

    /// Exact merit `λ_sw − λ_hw` of the current cut.
    #[inline]
    pub fn merit(&self) -> f64 {
        self.sw_sum as f64 - self.critical
    }

    /// Whether the current cut is a *legal* ISE: non-empty, convex and
    /// within the port budget.
    pub fn is_legal(&self, io: IoConstraints) -> bool {
        !self.cut.is_empty() && self.convex_now && io.admits(self.input_count, self.output_count)
    }

    /// Takes an exact [`Cut`] snapshot of the current state.
    pub fn snapshot(&self) -> Cut {
        Cut::from_parts(
            self.cut.clone(),
            self.input_count,
            self.output_count,
            self.sw_sum,
            self.critical,
        )
    }

    /// Predicts the effect of toggling `v` without committing it.
    ///
    /// O(deg(v) + n/64).
    pub fn probe(&mut self, v: NodeId) -> Probe {
        let entering = !self.cut.contains(v);
        let (inputs, outputs) = self.io_after(v, entering);
        let convex = self.convex_after(v, entering);
        let merit = if convex {
            let sw2 = if entering {
                self.sw_sum + self.ctx.sw_cycles(v) as u64
            } else {
                self.sw_sum - self.ctx.sw_cycles(v) as u64
            };
            let hw2 = self.critical_after(v, entering);
            sw2 as f64 - hw2
        } else {
            0.0
        };
        let neighbors_in_cut = self.distinct_neighbors_in_cut(v);
        let other_components_hw = if entering {
            0.0
        } else {
            let label = self.comp_label[v.index()];
            debug_assert_ne!(label, OUTSIDE, "leaving node must be labelled");
            self.comp_cp_total - self.comp_cp[label as usize]
        };
        Probe {
            entering,
            inputs,
            outputs,
            convex,
            merit,
            neighbors_in_cut,
            other_components_hw,
        }
    }

    /// Toggles `v` between software and hardware, updating all state.
    ///
    /// Returns `true` when `v` entered the cut.
    pub fn toggle(&mut self, v: NodeId) -> bool {
        let entering = !self.cut.contains(v);
        let (inputs, outputs) = self.io_after(v, entering);
        let dag = self.ctx.block().dag();
        if entering {
            self.cut.insert(v);
            for &p in dag.preds(v) {
                self.fanout_to_cut[p.index()] += 1;
            }
            self.sw_sum += self.ctx.sw_cycles(v) as u64;
        } else {
            self.cut.remove(v);
            for &p in dag.preds(v) {
                self.fanout_to_cut[p.index()] -= 1;
            }
            self.sw_sum -= self.ctx.sw_cycles(v) as u64;
        }
        self.input_count = inputs;
        self.output_count = outputs;
        self.refresh();
        entering
    }

    // ----- incremental pieces ------------------------------------------

    /// Input/output counts after toggling `v`, derived in O(deg(v)) from
    /// the maintained counters — the ΔI/ΔO addendum scheme of Fig. 3.
    fn io_after(&self, v: NodeId, entering: bool) -> (u32, u32) {
        let dag = self.ctx.block().dag();
        let block = self.ctx.block();
        let vi = v.index();
        let mut inp = self.input_count as i64;
        let mut out = self.output_count as i64;
        let outside_v = dag.out_degree(v) as u32 - self.fanout_to_cut[vi];
        let v_escapes = outside_v > 0 || block.is_live_out(v);
        if entering {
            // v stops being an outside supplier of the cut.
            if self.fanout_to_cut[vi] > 0 {
                inp -= 1;
            }
            // v becomes an output if its value escapes the cut.
            if v_escapes {
                out += 1;
            }
        } else {
            // v resumes being an outside supplier if it feeds cut nodes.
            if self.fanout_to_cut[vi] > 0 {
                inp += 1;
            }
            // v stops being an output.
            if v_escapes {
                out -= 1;
            }
        }
        let preds = dag.preds(v);
        for (i, &p) in preds.iter().enumerate() {
            if preds[..i].contains(&p) {
                continue; // count each distinct producer once
            }
            let mult = preds.iter().filter(|&&q| q == p).count() as u32;
            let pi = p.index();
            if self.cut.contains(p) {
                let outside_p = dag.out_degree(p) as u32 - self.fanout_to_cut[pi];
                if entering {
                    // p's edges to v become internal; if v was p's only
                    // escape and p is not live-out, p stops being an output.
                    if outside_p == mult && !block.is_live_out(p) {
                        out -= 1;
                    }
                } else {
                    // p's edges to v become external; if p had no escape
                    // before and is not live-out, it becomes an output.
                    if outside_p == 0 && !block.is_live_out(p) {
                        out += 1;
                    }
                }
            } else if entering {
                // p becomes a supplier if it was not one already.
                if self.fanout_to_cut[pi] == 0 {
                    inp += 1;
                }
            } else {
                // p stops being a supplier if v consumed all of p's
                // cut-directed edges.
                if self.fanout_to_cut[pi] == mult {
                    inp -= 1;
                }
            }
        }
        debug_assert!(inp >= 0 && out >= 0, "io counters went negative");
        (inp as u32, out as u32)
    }

    /// Convexity after toggling `v`. Exact for entering moves (the union
    /// masks extend monotonically); exact for leaving a convex cut (the
    /// only possible new violation passes through `v`); pessimistic
    /// `false` when leaving a non-convex cut.
    fn convex_after(&mut self, v: NodeId, entering: bool) -> bool {
        let reach = self.ctx.reach();
        if entering {
            self.scratch_a.clone_from(&self.below);
            self.scratch_a.union_with(reach.descendants(v));
            self.scratch_b.clone_from(&self.above);
            self.scratch_b.union_with(reach.ancestors(v));
            self.scratch_a.intersect_with(&self.scratch_b);
            self.scratch_a.subtract(&self.cut);
            self.scratch_a.remove(v);
            self.scratch_a.is_empty()
        } else if self.convex_now {
            if self.cut.len() <= 1 {
                return true;
            }
            let has_cut_anc = reach.ancestors(v).intersection_len(&self.cut) > 0;
            let has_cut_desc = reach.descendants(v).intersection_len(&self.cut) > 0;
            !(has_cut_anc && has_cut_desc)
        } else {
            false
        }
    }

    /// Hardware critical path after toggling `v`. Exact for entering
    /// moves (any new longest path must pass through `v`, and `up`/`down`
    /// are exact within the current cut); for leaving moves it returns
    /// the current critical path when `v` lies on it (an upper bound) and
    /// the exact value otherwise.
    fn critical_after(&self, v: NodeId, entering: bool) -> f64 {
        let dag = self.ctx.block().dag();
        let vi = v.index();
        let dv = self.ctx.hw_delay(v);
        if entering {
            let mut up_in = 0.0f64;
            for &p in dag.preds(v) {
                if self.cut.contains(p) && self.up[p.index()] > up_in {
                    up_in = self.up[p.index()];
                }
            }
            let mut down_in = 0.0f64;
            for &s in dag.succs(v) {
                if self.cut.contains(s) && self.down[s.index()] > down_in {
                    down_in = self.down[s.index()];
                }
            }
            self.critical.max(up_in + dv + down_in)
        } else {
            let through_v = self.up[vi] + self.down[vi] - dv;
            if through_v + 1e-12 < self.critical {
                self.critical
            } else {
                // v is on a critical path; removal may shorten the cut's
                // delay, but by at most dv. Use the conservative bound.
                self.critical
            }
        }
    }

    fn distinct_neighbors_in_cut(&self, v: NodeId) -> u32 {
        let dag = self.ctx.block().dag();
        let preds = dag.preds(v);
        let succs = dag.succs(v);
        let mut count = 0u32;
        for (i, &p) in preds.iter().enumerate() {
            if self.cut.contains(p) && !preds[..i].contains(&p) {
                count += 1;
            }
        }
        for (i, &s) in succs.iter().enumerate() {
            if self.cut.contains(s) && !succs[..i].contains(&s) && !preds.contains(&s) {
                count += 1;
            }
        }
        count
    }

    /// Full recount of I/O from the cut alone — initialisation and the
    /// reference the property tests compare the incremental path against.
    fn recount_io(&mut self) {
        let dag = self.ctx.block().dag();
        let block = self.ctx.block();
        let mut inputs = 0u32;
        let mut outputs = 0u32;
        let mut sw = 0u64;
        for v in dag.node_ids() {
            let vi = v.index();
            if self.cut.contains(v) {
                sw += self.ctx.sw_cycles(v) as u64;
                let outside = dag.out_degree(v) as u32 - self.fanout_to_cut[vi];
                if outside > 0 || block.is_live_out(v) {
                    outputs += 1;
                }
            } else if self.fanout_to_cut[vi] > 0 {
                inputs += 1;
            }
        }
        self.input_count = inputs;
        self.output_count = outputs;
        self.sw_sum = sw;
    }

    /// Refreshes the heavier derived state after a committed toggle:
    /// longest-path arrays, convexity masks and component labelling.
    /// O(n + e + |C|·n/64).
    fn refresh(&mut self) {
        let dag = self.ctx.block().dag();
        let ud = path::up_down_within(dag, self.ctx.topo(), &self.cut, |v| self.ctx.hw_delay(v));
        self.up = ud.up;
        self.down = ud.down;
        self.critical = ud.critical;

        let reach = self.ctx.reach();
        self.below.clear();
        self.above.clear();
        for v in self.cut.iter() {
            self.below.union_with(reach.descendants(v));
            self.above.union_with(reach.ancestors(v));
        }
        self.scratch_a.clone_from(&self.below);
        self.scratch_a.intersect_with(&self.above);
        self.scratch_a.subtract(&self.cut);
        self.convex_now = self.scratch_a.is_empty();

        let comps = Components::within(dag, &self.cut);
        let count = comps.count();
        self.comp_cp.clear();
        self.comp_cp.resize(count, 0.0);
        for v in self.cut.iter() {
            let vi = v.index();
            self.comp_label[vi] = comps.component_of(v);
            let through = self.up[vi] + self.down[vi] - self.ctx.hw_delay(v);
            let slot = &mut self.comp_cp[self.comp_label[vi] as usize];
            if through > *slot {
                *slot = through;
            }
        }
        for v in dag.node_ids() {
            if !self.cut.contains(v) {
                self.comp_label[v.index()] = OUTSIDE;
            }
        }
        self.comp_cp_total = self.comp_cp.iter().sum();
    }

    /// Number of connected components of the current cut.
    pub fn component_count(&self) -> usize {
        self.comp_cp.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    fn check_against_scratch(engine: &ToggleEngine<'_, '_>, ctx: &BlockContext<'_>) {
        let reference = Cut::evaluate(ctx, engine.cut().clone());
        assert_eq!(engine.input_count(), reference.input_count(), "inputs");
        assert_eq!(engine.output_count(), reference.output_count(), "outputs");
        assert_eq!(
            engine.software_latency(),
            reference.software_latency(),
            "sw"
        );
        assert!(
            (engine.hardware_latency() - reference.hardware_latency()).abs() < 1e-9,
            "hw: {} vs {}",
            engine.hardware_latency(),
            reference.hardware_latency()
        );
        assert_eq!(engine.is_convex(), ctx.is_convex(engine.cut()), "convexity");
    }

    #[test]
    fn toggle_sequence_tracks_scratch_evaluation() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // toggle operations in and out in various orders
        for seq in &[
            vec![4, 5, 6],
            vec![6, 4, 5],
            vec![4, 4, 5, 6, 5],
            vec![6, 6],
        ] {
            let mut engine2 = ToggleEngine::new(&ctx);
            for &i in seq {
                engine2.toggle(ids[i]);
                check_against_scratch(&engine2, &ctx);
            }
        }
        // also from a seeded cut
        engine.toggle(ids[4]);
        engine.toggle(ids[6]);
        check_against_scratch(&engine, &ctx);
        let reseeded = ToggleEngine::from_cut(&ctx, engine.cut().clone());
        assert_eq!(reseeded.input_count(), engine.input_count());
        assert_eq!(reseeded.output_count(), engine.output_count());
    }

    #[test]
    fn probe_matches_commit_for_entering() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        for &i in &[4usize, 6, 5] {
            let p = engine.probe(ids[i]);
            assert!(p.entering);
            engine.toggle(ids[i]);
            assert_eq!(p.inputs, engine.input_count(), "probe inputs for {i}");
            assert_eq!(p.outputs, engine.output_count(), "probe outputs for {i}");
            assert_eq!(p.convex, engine.is_convex(), "probe convexity for {i}");
            if p.convex {
                assert!(
                    (p.merit - engine.merit()).abs() < 1e-9,
                    "probe merit {} vs {}",
                    p.merit,
                    engine.merit()
                );
            }
        }
    }

    #[test]
    fn probe_leaving_reports_components() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // two independent muls: two components
        engine.toggle(ids[4]);
        engine.toggle(ids[5]);
        assert_eq!(engine.component_count(), 2);
        let p = engine.probe(ids[4]);
        assert!(!p.entering);
        // the other component is the other mul: cp = 0.85
        assert!((p.other_components_hw - 0.85).abs() < 1e-9);
    }

    #[test]
    fn legality() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        assert!(
            !engine.is_legal(IoConstraints::new(4, 2)),
            "empty cut is not legal"
        );
        engine.toggle(ids[4]);
        engine.toggle(ids[5]);
        engine.toggle(ids[6]);
        assert!(engine.is_legal(IoConstraints::new(4, 2)));
        assert!(!engine.is_legal(IoConstraints::new(3, 1)));
        // {m1, add} with m2 outside is convex; {m1, m2} alone is too.
        engine.toggle(ids[5]);
        assert!(engine.is_convex());
    }

    #[test]
    fn snapshot_equals_scratch_cut() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        engine.toggle(ids[4]);
        engine.toggle(ids[6]);
        let snap = engine.snapshot();
        let reference = Cut::evaluate(&ctx, engine.cut().clone());
        assert_eq!(snap, reference);
    }

    #[test]
    fn non_convex_intermediate_detected() {
        // chain: in -> a -> b -> c. Cut {a, c} is not convex.
        let mut bb = BlockBuilder::new("chain");
        let x = bb.input("x");
        let a = bb.op(Opcode::Add, &[x, x]).unwrap();
        let b = bb.op(Opcode::Mul, &[a, a]).unwrap();
        let c = bb.op(Opcode::Not, &[b]).unwrap();
        let block = bb.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        engine.toggle(a);
        assert!(engine.is_convex());
        engine.toggle(c);
        assert!(!engine.is_convex());
        // filling the hole restores convexity
        engine.toggle(b);
        assert!(engine.is_convex());
    }
}
