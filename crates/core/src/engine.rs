use crate::{BlockContext, Cut, IoConstraints};
use isegen_graph::components::OUTSIDE;
use isegen_graph::{NodeId, NodeSet};

/// Incremental hardware/software partition state — the paper's §4.3
/// toggle-impact machinery.
///
/// The paper maintains per-node input/output *addendums* (ΔI, ΔO, Fig. 3)
/// so that toggling a node between software (S) and hardware (H) updates
/// the cut's operand counts in O(deg) instead of a full recount. This
/// implementation expresses the same bookkeeping with an equivalent
/// counter scheme:
///
/// * `fanout_to_cut[p]` — number of edges from `p` into cut nodes. The
///   cut's **input count** is the number of nodes outside the cut with
///   `fanout_to_cut > 0` (distinct producers feeding the cut).
/// * A cut node is an **output** when it has at least one consumer outside
///   the cut or is live-out of the block.
///
/// Equivalence with a from-scratch recount is enforced by property tests
/// (`tests/engine_prop.rs`), substituting for the rule-table proofs the
/// paper defers to its technical report.
///
/// Commits refresh the heavier derived state *incrementally*: an entering
/// toggle extends the reachability masks by one word-level union and
/// recomputes longest-path values only for cut nodes downstream/upstream
/// of the toggled node; a leaving toggle rebuilds cut-local state in
/// O(|C|·(deg + n/64)). Neither path walks the whole graph or allocates.
/// Per-*candidate* probes cost O(deg + n/64) with no scratch-set writes.
#[derive(Debug)]
pub struct ToggleEngine<'c, 'a> {
    ctx: &'c BlockContext<'a>,
    cut: NodeSet,
    fanout_to_cut: Vec<u32>,
    /// Number of edges from in-cut producers into each node — the
    /// consumer-side mirror of `fanout_to_cut`.
    indeg_from_cut: Vec<u32>,
    /// `{p : fanout_to_cut[p] > 0}` as a word-parallel set.
    feeds_cut: NodeSet,
    /// `{u : indeg_from_cut[u] > 0}` as a word-parallel set.
    fed_by_cut: NodeSet,
    input_count: u32,
    output_count: u32,
    sw_sum: u64,
    up: Vec<f64>,
    down: Vec<f64>,
    critical: f64,
    /// Union of `descendants(w)` over cut nodes `w`.
    below: NodeSet,
    /// Union of `ancestors(w)` over cut nodes `w`.
    above: NodeSet,
    /// `below \ cut` — hull floor outside the cut; entering-convexity
    /// probes test membership against it word-parallel.
    below_ext: NodeSet,
    /// `above \ cut` — hull ceiling outside the cut.
    above_ext: NodeSet,
    /// `below ∩ above \ cut` — the convexity violators of the *current*
    /// cut (empty iff the cut is convex).
    violators: NodeSet,
    convex_now: bool,
    comp_label: Vec<u32>,
    comp_count: usize,
    comp_cp: Vec<f64>,
    comp_cp_total: f64,
    // Reusable buffers: committed toggles never allocate.
    order_scratch: Vec<NodeId>,
    order_scratch_b: Vec<NodeId>,
    queue_scratch: Vec<NodeId>,
    // Commit-delta capture for precision cache invalidation
    // (`toggle_and_mark`): populated by entering refreshes only while
    // `track_deltas` is set, so plain `toggle` pays one branch.
    track_deltas: bool,
    hull_delta_below: Vec<(usize, u64)>,
    hull_delta_above: Vec<(usize, u64)>,
    changed_up: Vec<NodeId>,
    changed_down: Vec<NodeId>,
    bfs_visited: NodeSet,
    /// Rank-ordered worklist of the longest-path propagation
    /// ([`ToggleEngine::refresh_entering`]); keys are topological ranks
    /// (complemented for the ascending `up` sweep).
    prop_heap: std::collections::BinaryHeap<(u32, u32)>,
}

/// The owned buffers of a [`ToggleEngine`], detached from any block —
/// the engine half of a reusable search arena.
///
/// A K-L trajectory needs ~a dozen node-sized buffers; allocating them
/// per trajectory dominated setup cost on large blocks. Instead, workers
/// keep an `EngineArena` alive across trajectories *and blocks*:
/// [`ToggleEngine::from_cut_in`] moves the buffers into an engine and
/// resizes them to the block (allocation-free once the arena has seen a
/// block at least as large), and [`ToggleEngine::into_arena`] moves them
/// back out when the trajectory ends.
#[derive(Debug, Default)]
pub struct EngineArena {
    cut: NodeSet,
    fanout_to_cut: Vec<u32>,
    indeg_from_cut: Vec<u32>,
    feeds_cut: NodeSet,
    fed_by_cut: NodeSet,
    up: Vec<f64>,
    down: Vec<f64>,
    below: NodeSet,
    above: NodeSet,
    below_ext: NodeSet,
    above_ext: NodeSet,
    violators: NodeSet,
    comp_label: Vec<u32>,
    comp_cp: Vec<f64>,
    order_scratch: Vec<NodeId>,
    order_scratch_b: Vec<NodeId>,
    queue_scratch: Vec<NodeId>,
    hull_delta_below: Vec<(usize, u64)>,
    hull_delta_above: Vec<(usize, u64)>,
    changed_up: Vec<NodeId>,
    changed_down: Vec<NodeId>,
    bfs_visited: NodeSet,
    prop_heap: std::collections::BinaryHeap<(u32, u32)>,
}

/// The predicted effect of toggling one node, produced by
/// [`ToggleEngine::probe`]. Feed it to the gain function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// `true` when the node would move S → H (join the cut).
    pub entering: bool,
    /// Input operand count of the cut after the toggle.
    pub inputs: u32,
    /// Output operand count of the cut after the toggle.
    pub outputs: u32,
    /// Convexity of the cut after the toggle. Exact for entering moves
    /// and for leaving moves out of a convex cut; pessimistically `false`
    /// for leaving moves out of a non-convex cut (the merit component is
    /// zero for non-convex cuts anyway, per §4.2).
    pub convex: bool,
    /// Estimated merit `λ_sw − λ_hw` of the cut after the toggle; `0.0`
    /// when `convex` is false (paper §4.2). The hardware critical path is
    /// exact for entering moves and conservative (an upper bound) for
    /// leaving moves.
    pub merit: f64,
    /// Number of distinct neighbours of the node currently in the cut
    /// (the paper's `N(v, C)` affinity input).
    pub neighbors_in_cut: u32,
    /// For a leaving move: the summed hardware critical paths of the
    /// *other* connected components of the cut (the paper's
    /// independent-cuts input). `0.0` for entering moves.
    pub other_components_hw: f64,
}

impl<'c, 'a> ToggleEngine<'c, 'a> {
    /// Starts from the all-software configuration (empty cut).
    pub fn new(ctx: &'c BlockContext<'a>) -> Self {
        Self::from_cut(ctx, NodeSet::new(ctx.node_count()))
    }

    /// Starts from an existing cut (e.g. the best cut of the previous
    /// K-L pass).
    ///
    /// # Panics
    ///
    /// Panics if `cut`'s capacity does not match the block.
    pub fn from_cut(ctx: &'c BlockContext<'a>, cut: NodeSet) -> Self {
        Self::from_cut_in(ctx, &cut, EngineArena::default())
    }

    /// [`ToggleEngine::from_cut`] reusing the buffers of `arena` instead
    /// of allocating fresh ones — the arena path of the K-L portfolio.
    /// Pair with [`ToggleEngine::into_arena`] to recover the buffers.
    ///
    /// # Panics
    ///
    /// Panics if `cut`'s capacity does not match the block.
    pub fn from_cut_in(ctx: &'c BlockContext<'a>, cut: &NodeSet, arena: EngineArena) -> Self {
        let mut engine = ToggleEngine {
            ctx,
            cut: arena.cut,
            fanout_to_cut: arena.fanout_to_cut,
            indeg_from_cut: arena.indeg_from_cut,
            feeds_cut: arena.feeds_cut,
            fed_by_cut: arena.fed_by_cut,
            input_count: 0,
            output_count: 0,
            sw_sum: 0,
            up: arena.up,
            down: arena.down,
            critical: 0.0,
            below: arena.below,
            above: arena.above,
            below_ext: arena.below_ext,
            above_ext: arena.above_ext,
            violators: arena.violators,
            convex_now: true,
            comp_label: arena.comp_label,
            comp_count: 0,
            comp_cp: arena.comp_cp,
            comp_cp_total: 0.0,
            order_scratch: arena.order_scratch,
            order_scratch_b: arena.order_scratch_b,
            queue_scratch: arena.queue_scratch,
            track_deltas: false,
            hull_delta_below: arena.hull_delta_below,
            hull_delta_above: arena.hull_delta_above,
            changed_up: arena.changed_up,
            changed_down: arena.changed_down,
            bfs_visited: arena.bfs_visited,
            prop_heap: arena.prop_heap,
        };
        engine.reset_from_cut(cut);
        engine
    }

    /// Re-initialises this engine from `cut`, reusing every buffer —
    /// what [`ToggleEngine::from_cut`] does, without the allocations.
    /// Used between K-L passes (restart from the pass-best cut) and
    /// between pooled trajectories.
    ///
    /// # Panics
    ///
    /// Panics if `cut`'s capacity does not match the block.
    pub fn reset_from_cut(&mut self, cut: &NodeSet) {
        let n = self.ctx.node_count();
        assert_eq!(cut.capacity(), n, "cut capacity does not match block");
        self.cut.copy_from(cut);
        self.fanout_to_cut.clear();
        self.fanout_to_cut.resize(n, 0);
        self.indeg_from_cut.clear();
        self.indeg_from_cut.resize(n, 0);
        self.feeds_cut.reset(n);
        self.fed_by_cut.reset(n);
        let dag = self.ctx.block().dag();
        for v in self.cut.iter() {
            for &p in dag.preds(v) {
                self.fanout_to_cut[p.index()] += 1;
                self.feeds_cut.insert(p);
            }
            for &s in dag.succs(v) {
                self.indeg_from_cut[s.index()] += 1;
                self.fed_by_cut.insert(s);
            }
        }
        self.up.clear();
        self.up.resize(n, 0.0);
        self.down.clear();
        self.down.resize(n, 0.0);
        self.below.reset(n);
        self.above.reset(n);
        self.below_ext.reset(n);
        self.above_ext.reset(n);
        self.violators.reset(n);
        self.convex_now = true;
        self.comp_label.clear();
        self.comp_label.resize(n, OUTSIDE);
        self.comp_count = 0;
        self.comp_cp.clear();
        self.comp_cp_total = 0.0;
        self.critical = 0.0;
        self.order_scratch.clear();
        self.order_scratch_b.clear();
        self.queue_scratch.clear();
        self.track_deltas = false;
        self.hull_delta_below.clear();
        self.hull_delta_above.clear();
        self.changed_up.clear();
        self.changed_down.clear();
        self.bfs_visited.reset(n);
        self.prop_heap.clear();
        self.recount_io();
        self.refresh_full();
    }

    /// Dismantles the engine, returning its buffers for reuse by a later
    /// [`ToggleEngine::from_cut_in`].
    pub fn into_arena(self) -> EngineArena {
        EngineArena {
            cut: self.cut,
            fanout_to_cut: self.fanout_to_cut,
            indeg_from_cut: self.indeg_from_cut,
            feeds_cut: self.feeds_cut,
            fed_by_cut: self.fed_by_cut,
            up: self.up,
            down: self.down,
            below: self.below,
            above: self.above,
            below_ext: self.below_ext,
            above_ext: self.above_ext,
            violators: self.violators,
            comp_label: self.comp_label,
            comp_cp: self.comp_cp,
            order_scratch: self.order_scratch,
            order_scratch_b: self.order_scratch_b,
            queue_scratch: self.queue_scratch,
            hull_delta_below: self.hull_delta_below,
            hull_delta_above: self.hull_delta_above,
            changed_up: self.changed_up,
            changed_down: self.changed_down,
            bfs_visited: self.bfs_visited,
            prop_heap: self.prop_heap,
        }
    }

    /// The block context this engine searches.
    #[inline]
    pub fn ctx(&self) -> &'c BlockContext<'a> {
        self.ctx
    }

    /// The current cut.
    #[inline]
    pub fn cut(&self) -> &NodeSet {
        &self.cut
    }

    /// Current input operand count.
    #[inline]
    pub fn input_count(&self) -> u32 {
        self.input_count
    }

    /// Current output operand count.
    #[inline]
    pub fn output_count(&self) -> u32 {
        self.output_count
    }

    /// Whether the current cut is convex (exact).
    #[inline]
    pub fn is_convex(&self) -> bool {
        self.convex_now
    }

    /// Software latency of the current cut, in cycles.
    #[inline]
    pub fn software_latency(&self) -> u64 {
        self.sw_sum
    }

    /// Hardware critical path of the current cut, in MAC units (exact).
    #[inline]
    pub fn hardware_latency(&self) -> f64 {
        self.critical
    }

    /// Exact merit `λ_sw − λ_hw` of the current cut.
    #[inline]
    pub fn merit(&self) -> f64 {
        self.sw_sum as f64 - self.critical
    }

    /// Whether the current cut is a *legal* ISE: non-empty, convex and
    /// within the port budget.
    pub fn is_legal(&self, io: IoConstraints) -> bool {
        !self.cut.is_empty() && self.convex_now && io.admits(self.input_count, self.output_count)
    }

    /// Takes an exact [`Cut`] snapshot of the current state.
    pub fn snapshot(&self) -> Cut {
        Cut::from_parts(
            self.cut.clone(),
            self.input_count,
            self.output_count,
            self.sw_sum,
            self.critical,
        )
    }

    /// Predicts the effect of toggling `v` without committing it.
    ///
    /// O(deg(v) + n/64), allocation-free and read-only.
    pub fn probe(&self, v: NodeId) -> Probe {
        let entering = !self.cut.contains(v);
        let (inputs, outputs) = self.io_after(v, entering);
        let convex = self.convex_after(v, entering);
        let merit = if convex {
            let sw2 = if entering {
                self.sw_sum + self.ctx.sw_cycles(v) as u64
            } else {
                self.sw_sum - self.ctx.sw_cycles(v) as u64
            };
            let hw2 = self.critical_after(v, entering);
            sw2 as f64 - hw2
        } else {
            0.0
        };
        let neighbors_in_cut = self.distinct_neighbors_in_cut(v);
        let other_components_hw = if entering {
            0.0
        } else {
            self.other_components_hw(v)
        };
        Probe {
            entering,
            inputs,
            outputs,
            convex,
            merit,
            neighbors_in_cut,
            other_components_hw,
        }
    }

    /// Toggles `v` between software and hardware, updating all state.
    ///
    /// Returns `true` when `v` entered the cut.
    pub fn toggle(&mut self, v: NodeId) -> bool {
        let entering = !self.cut.contains(v);
        let (inputs, outputs) = self.io_after(v, entering);
        let dag = self.ctx.block().dag();
        if entering {
            self.cut.insert(v);
            for &p in dag.preds(v) {
                self.fanout_to_cut[p.index()] += 1;
                self.feeds_cut.insert(p);
            }
            for &s in dag.succs(v) {
                self.indeg_from_cut[s.index()] += 1;
                self.fed_by_cut.insert(s);
            }
            self.sw_sum += self.ctx.sw_cycles(v) as u64;
        } else {
            self.cut.remove(v);
            for &p in dag.preds(v) {
                let pi = p.index();
                self.fanout_to_cut[pi] -= 1;
                if self.fanout_to_cut[pi] == 0 {
                    self.feeds_cut.remove(p);
                }
            }
            for &s in dag.succs(v) {
                let si = s.index();
                self.indeg_from_cut[si] -= 1;
                if self.indeg_from_cut[si] == 0 {
                    self.fed_by_cut.remove(s);
                }
            }
            self.sw_sum -= self.ctx.sw_cycles(v) as u64;
        }
        self.input_count = inputs;
        self.output_count = outputs;
        if entering {
            self.refresh_entering(v);
        } else {
            self.refresh_leaving(v);
        }
        entering
    }

    /// Toggles `v` and accumulates into `dirty` every node whose
    /// *cone-local* probe terms may differ from before the commit — the
    /// invalidation set of the K-L gain cache ([`crate::GainCache`]).
    ///
    /// Every *global* probe input — operand counts, latencies, component
    /// tables, the violator gate ([`ToggleEngine::entering_gate`]), the
    /// cut's own convexity and size — is O(1)-readable from the engine
    /// and re-read at recombination time, so no commit ever needs a mass
    /// invalidation, and the dirty set only has to cover the cached
    /// cone-local terms. For the dominant **entering** commits it is
    /// assembled *exactly* from the state the refresh just touched,
    /// instead of the full `anc(v) ∪ desc(v)` cones (which cover most of
    /// a deep block like AES):
    ///
    /// * adjacency — `{v}`, `v`'s neighbours and consumers sharing a
    ///   producer with `v` (ΔI/ΔO and `N(v,C)` terms);
    /// * hull growth — for each node the commit *actually added* to a
    ///   hull mask (captured word-level during the union), the cone on
    ///   the side that reads it: the new floor/ceiling member can break
    ///   `entering_hull_ok` only for its descendants/ancestors;
    /// * hull shrink — `v` itself left `below_ext`/`above_ext`; that can
    ///   flip `entering_hull_ok(u)` only where the intersection was
    ///   exactly `{v}`, which forces every `v → u` path interior into
    ///   the cut — so `u` is a non-cut descendant/ancestor of `v` with
    ///   an in-cut neighbour, a superset three word-ops per word wide
    ///   (`desc(v) ∩ fed_by_cut \ cut`, resp. `anc ∩ feeds_cut \ cut`);
    /// * longest paths — neighbours of cut nodes whose `up`/`down`
    ///   values actually moved (`entering_through` reads them);
    /// * leave terms — cut members inside `v`'s cones
    ///   (`leaving_local_ok` reads `cut ∩ anc/desc(u)`, which gained
    ///   `v`).
    ///
    /// **Leaving** commits are rare in a K-L pass (each node toggles
    /// once, and cuts are small relative to the block), so they keep the
    /// conservative cone cover. `tests/gain_cache_prop.rs` and the
    /// exhaustive sweep below hold all of this to account: a node left
    /// clean is a node whose cached terms provably did not change.
    pub fn toggle_and_mark(&mut self, v: NodeId, dirty: &mut NodeSet) {
        let was_below_ext = self.below_ext.contains(v);
        let was_above_ext = self.above_ext.contains(v);
        self.track_deltas = true;
        let entering = self.toggle(v);
        self.track_deltas = false;

        let reach = self.ctx.reach();
        let dag = self.ctx.block().dag();
        // Adjacency: v, its neighbours, and shared-producer consumers.
        dirty.insert(v);
        for &s in dag.succs(v) {
            dirty.insert(s);
        }
        for &p in dag.preds(v) {
            dirty.insert(p);
            for &u in dag.succs(p) {
                dirty.insert(u);
            }
        }

        if !entering {
            // Leaving: cut-local rebuild; the cone cover is exact enough.
            dirty.union_with(reach.ancestors(v));
            dirty.union_with(reach.descendants(v));
            return;
        }

        // Hull growth: descendants of every new `below` bit, ancestors
        // of every new `above` bit (cut members never sit in the ext
        // masks, so they are skipped).
        for delta_i in 0..self.hull_delta_below.len() {
            let (wi, mut bits) = self.hull_delta_below[delta_i];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let x = NodeId::from_index(wi * 64 + b);
                if !self.cut.contains(x) {
                    dirty.union_with(reach.descendants(x));
                }
            }
        }
        for delta_i in 0..self.hull_delta_above.len() {
            let (wi, mut bits) = self.hull_delta_above[delta_i];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let x = NodeId::from_index(wi * 64 + b);
                if !self.cut.contains(x) {
                    dirty.union_with(reach.ancestors(x));
                }
            }
        }

        // Hull shrink: v left the ext masks. The affected nodes sit at
        // the non-cut frontier of cut-interior paths from v — every one
        // is a descendant (resp. ancestor) of v, outside the cut, with
        // an in-cut producer (resp. consumer). That superset is three
        // word-ops per word, with no per-commit walk of the cut.
        if was_below_ext {
            let fed = &self.fed_by_cut;
            let cut = &self.cut;
            reach.descendants(v).for_each_word(|wi, w| {
                let m = w & fed.word(wi) & !cut.word(wi);
                if m != 0 {
                    dirty.union_word(wi, m);
                }
            });
        }
        if was_above_ext {
            let feeds = &self.feeds_cut;
            let cut = &self.cut;
            reach.ancestors(v).for_each_word(|wi, w| {
                let m = w & feeds.word(wi) & !cut.word(wi);
                if m != 0 {
                    dirty.union_word(wi, m);
                }
            });
        }

        // Longest-path moves: `entering_through(u)` reads the up/down
        // values of u's in-cut neighbours.
        for &w in &self.changed_up {
            for &s in dag.succs(w) {
                dirty.insert(s);
            }
        }
        for &w in &self.changed_down {
            for &p in dag.preds(w) {
                dirty.insert(p);
            }
        }

        // Leave terms: cut members in v's cones see `cut ∩ anc/desc`
        // gain v.
        {
            let cut = &self.cut;
            reach.descendants(v).for_each_word(|wi, w| {
                let m = w & cut.word(wi);
                if m != 0 {
                    dirty.union_word(wi, m);
                }
            });
            reach.ancestors(v).for_each_word(|wi, w| {
                let m = w & cut.word(wi);
                if m != 0 {
                    dirty.union_word(wi, m);
                }
            });
        }
    }

    // ----- incremental pieces ------------------------------------------

    /// Input/output counts after toggling `v`, derived in O(deg(v)) from
    /// the maintained counters — the ΔI/ΔO addendum scheme of Fig. 3.
    fn io_after(&self, v: NodeId, entering: bool) -> (u32, u32) {
        let dag = self.ctx.block().dag();
        let block = self.ctx.block();
        let vi = v.index();
        let mut inp = self.input_count as i64;
        let mut out = self.output_count as i64;
        let outside_v = dag.out_degree(v) as u32 - self.fanout_to_cut[vi];
        let v_escapes = outside_v > 0 || block.is_live_out(v);
        if entering {
            // v stops being an outside supplier of the cut.
            if self.fanout_to_cut[vi] > 0 {
                inp -= 1;
            }
            // v becomes an output if its value escapes the cut.
            if v_escapes {
                out += 1;
            }
        } else {
            // v resumes being an outside supplier if it feeds cut nodes.
            if self.fanout_to_cut[vi] > 0 {
                inp += 1;
            }
            // v stops being an output.
            if v_escapes {
                out -= 1;
            }
        }
        let preds = dag.preds(v);
        for (i, &p) in preds.iter().enumerate() {
            if preds[..i].contains(&p) {
                continue; // count each distinct producer once
            }
            let mult = preds.iter().filter(|&&q| q == p).count() as u32;
            let pi = p.index();
            if self.cut.contains(p) {
                let outside_p = dag.out_degree(p) as u32 - self.fanout_to_cut[pi];
                if entering {
                    // p's edges to v become internal; if v was p's only
                    // escape and p is not live-out, p stops being an output.
                    if outside_p == mult && !block.is_live_out(p) {
                        out -= 1;
                    }
                } else {
                    // p's edges to v become external; if p had no escape
                    // before and is not live-out, it becomes an output.
                    if outside_p == 0 && !block.is_live_out(p) {
                        out += 1;
                    }
                }
            } else if entering {
                // p becomes a supplier if it was not one already.
                if self.fanout_to_cut[pi] == 0 {
                    inp += 1;
                }
            } else {
                // p stops being a supplier if v consumed all of p's
                // cut-directed edges.
                if self.fanout_to_cut[pi] == mult {
                    inp -= 1;
                }
            }
        }
        debug_assert!(inp >= 0 && out >= 0, "io counters went negative");
        (inp as u32, out as u32)
    }

    /// Convexity after toggling `v`. Exact for entering moves (the union
    /// masks extend monotonically); exact for leaving a convex cut (the
    /// only possible new violation passes through `v`); pessimistic
    /// `false` when leaving a non-convex cut.
    ///
    /// Split into a *global gate* (O(1) reads of the violator set /
    /// cut convexity / cut size, re-evaluated fresh by the gain cache at
    /// every recombination) and a *cone-local* condition (cached, only
    /// invalidated by toggles within `v`'s cones) — the decomposition
    /// that lets [`ToggleEngine::toggle_and_mark`] avoid mass
    /// invalidation entirely.
    fn convex_after(&self, v: NodeId, entering: bool) -> bool {
        if entering {
            self.entering_gate(v) && self.entering_hull_ok(v)
        } else if self.convex_now {
            self.cut.len() <= 1 || self.leaving_local_ok(v)
        } else {
            false
        }
    }

    /// The global half of the entering-convexity test: the violators of
    /// the *current* cut (`below ∩ above \ cut`) must already be `⊆ {v}`.
    /// O(1).
    #[inline]
    pub(crate) fn entering_gate(&self, v: NodeId) -> bool {
        match self.violators.len() {
            0 => true,
            1 => self.violators.contains(v),
            _ => false,
        }
    }

    /// A fingerprint of the state [`ToggleEngine::entering_gate`] reads:
    /// while it is unchanged between two commits, `entering_gate(v)` is
    /// unchanged for **every** node. Violator sets of ≥ 2 nodes collapse
    /// to one signature — the gate is `false` for all nodes regardless of
    /// which nodes violate. The lazy selection queue reads this each
    /// step to pick the heap whose gate assumption is live (and, for a
    /// sole violator, which node to evaluate outside the heaps).
    #[inline]
    pub(crate) fn gate_signature(&self) -> (u8, u32) {
        match self.violators.len() {
            0 => (0, 0),
            1 => (1, self.violators.first_set().unwrap_or(0) as u32),
            _ => (2, 0),
        }
    }

    /// The cone-local half of the entering-convexity test: `v`'s cones
    /// must not touch the hull outside the cut. This is the fused
    /// word-level form of `((below ∪ desc(v)) ∩ (above ∪ anc(v))) \ cut
    /// \ {v} = ∅`: distributing the intersection and dropping the empty
    /// `desc(v) ∩ anc(v)` term leaves exactly the two maintained-set
    /// conditions below — no scratch sets are materialised.
    pub(crate) fn entering_hull_ok(&self, v: NodeId) -> bool {
        let reach = self.ctx.reach();
        !reach.ancestors(v).intersects(&self.below_ext)
            && !reach.descendants(v).intersects(&self.above_ext)
    }

    /// The cone-local half of the leaving-convexity test: out of a
    /// convex cut of ≥ 2 nodes, removing `v` opens a hole iff `v` has
    /// both an in-cut ancestor and an in-cut descendant.
    pub(crate) fn leaving_local_ok(&self, v: NodeId) -> bool {
        let reach = self.ctx.reach();
        !(reach.ancestors(v).intersects(&self.cut) && reach.descendants(v).intersects(&self.cut))
    }

    /// Longest hardware path that would pass *through* `v` if it entered
    /// the cut: `max(up over cut preds) + delay(v) + max(down over cut
    /// succs)`. The gain cache stores this per candidate; it only changes
    /// when a neighbouring cut node's longest-path value moves.
    pub(crate) fn entering_through(&self, v: NodeId) -> f64 {
        let dag = self.ctx.block().dag();
        let mut up_in = 0.0f64;
        for &p in dag.preds(v) {
            if self.cut.contains(p) && self.up[p.index()] > up_in {
                up_in = self.up[p.index()];
            }
        }
        let mut down_in = 0.0f64;
        for &s in dag.succs(v) {
            if self.cut.contains(s) && self.down[s.index()] > down_in {
                down_in = self.down[s.index()];
            }
        }
        up_in + self.ctx.hw_delay(v) + down_in
    }

    /// Hardware critical path after toggling `v`. Exact for entering
    /// moves (any new longest path must pass through `v`, and `up`/`down`
    /// are exact within the current cut); for leaving moves it returns
    /// the current critical path (an upper bound when `v` lies on it,
    /// exact otherwise).
    fn critical_after(&self, v: NodeId, entering: bool) -> f64 {
        if entering {
            self.critical.max(self.entering_through(v))
        } else {
            self.critical
        }
    }

    /// Summed critical paths of the components of the cut *other* than
    /// the one containing cut member `v`. O(1).
    pub(crate) fn other_components_hw(&self, v: NodeId) -> f64 {
        let label = self.comp_label[v.index()];
        debug_assert_ne!(label, OUTSIDE, "leaving node must be labelled");
        self.comp_cp_total - self.comp_cp[label as usize]
    }

    fn distinct_neighbors_in_cut(&self, v: NodeId) -> u32 {
        let dag = self.ctx.block().dag();
        let preds = dag.preds(v);
        let succs = dag.succs(v);
        let mut count = 0u32;
        for (i, &p) in preds.iter().enumerate() {
            if self.cut.contains(p) && !preds[..i].contains(&p) {
                count += 1;
            }
        }
        for (i, &s) in succs.iter().enumerate() {
            if self.cut.contains(s) && !succs[..i].contains(&s) && !preds.contains(&s) {
                count += 1;
            }
        }
        count
    }

    /// Full recount of I/O from the cut alone — initialisation and the
    /// reference the property tests compare the incremental path against.
    fn recount_io(&mut self) {
        let dag = self.ctx.block().dag();
        let block = self.ctx.block();
        let mut inputs = 0u32;
        let mut outputs = 0u32;
        let mut sw = 0u64;
        for v in dag.node_ids() {
            let vi = v.index();
            if self.cut.contains(v) {
                sw += self.ctx.sw_cycles(v) as u64;
                let outside = dag.out_degree(v) as u32 - self.fanout_to_cut[vi];
                if outside > 0 || block.is_live_out(v) {
                    outputs += 1;
                }
            } else if self.fanout_to_cut[vi] > 0 {
                inputs += 1;
            }
        }
        self.input_count = inputs;
        self.output_count = outputs;
        self.sw_sum = sw;
    }

    // ----- committed-toggle refresh ------------------------------------

    /// Refresh after `v` *entered* the cut. The reachability masks grow
    /// by one word-level union each; longest-path values are recomputed
    /// only for cut nodes in `desc(v)` / `anc(v)`; components merge by
    /// label. No full-graph walk, no allocation (buffers are reused).
    fn refresh_entering(&mut self, v: NodeId) {
        let ctx = self.ctx;
        let reach = ctx.reach();
        if self.track_deltas {
            // Word-zip capture of the bits `v`'s cones are about to add
            // to the hull masks — the *exact* growth of `below`/`above`,
            // from which `toggle_and_mark` derives its invalidation set.
            self.hull_delta_below.clear();
            {
                let below = &self.below;
                let delta = &mut self.hull_delta_below;
                reach.descendants(v).for_each_word(|wi, w| {
                    let added = w & !below.word(wi);
                    if added != 0 {
                        delta.push((wi, added));
                    }
                });
            }
            self.hull_delta_above.clear();
            {
                let above = &self.above;
                let delta = &mut self.hull_delta_above;
                reach.ancestors(v).for_each_word(|wi, w| {
                    let added = w & !above.word(wi);
                    if added != 0 {
                        delta.push((wi, added));
                    }
                });
            }
        }
        self.below.union_with(reach.descendants(v));
        self.above.union_with(reach.ancestors(v));

        // Longest paths: an entering toggle only *lengthens* in-cut
        // paths, so instead of recomputing every cut member in v's
        // cones, propagate the increase outward from v and stop where a
        // value is unchanged. The rank-ordered worklist guarantees a
        // node is recomputed only after all of its moved predecessors
        // settled (`up`: ascending topological rank; `down`:
        // descending), so each affected node is recomputed exactly once
        // and the resulting values are identical to the full sweep.
        let dag = ctx.block().dag();
        let topo = ctx.topo();
        self.recompute_up(v);
        self.changed_up.clear();
        self.prop_heap.clear();
        self.bfs_visited.reset(ctx.node_count());
        for &s in dag.succs(v) {
            if self.cut.contains(s) && self.bfs_visited.insert(s) {
                self.prop_heap.push((!topo.rank(s), s.index() as u32));
            }
        }
        while let Some((_, wi)) = self.prop_heap.pop() {
            let w = NodeId::from_index(wi as usize);
            let old = self.up[w.index()];
            self.recompute_up(w);
            if self.up[w.index()] != old {
                self.changed_up.push(w);
                for &s in dag.succs(w) {
                    if self.cut.contains(s) && self.bfs_visited.insert(s) {
                        self.prop_heap.push((!topo.rank(s), s.index() as u32));
                    }
                }
            }
        }

        self.recompute_down(v);
        self.changed_down.clear();
        self.prop_heap.clear();
        self.bfs_visited.reset(ctx.node_count());
        for &p in dag.preds(v) {
            if self.cut.contains(p) && self.bfs_visited.insert(p) {
                self.prop_heap.push((topo.rank(p), p.index() as u32));
            }
        }
        while let Some((_, wi)) = self.prop_heap.pop() {
            let w = NodeId::from_index(wi as usize);
            let old = self.down[w.index()];
            self.recompute_down(w);
            if self.down[w.index()] != old {
                self.changed_down.push(w);
                for &p in dag.preds(w) {
                    if self.cut.contains(p) && self.bfs_visited.insert(p) {
                        self.prop_heap.push((topo.rank(p), p.index() as u32));
                    }
                }
            }
        }

        // Components: v attaches to the components of its cut neighbours.
        let mut first_label = OUTSIDE;
        let mut merges = false;
        for &w in dag.preds(v).iter().chain(dag.succs(v)) {
            let l = self.comp_label[w.index()];
            if l == OUTSIDE {
                continue;
            }
            if first_label == OUTSIDE {
                first_label = l;
            } else if l != first_label {
                merges = true;
                break;
            }
        }
        if merges {
            // Label renumbering invalidates the per-component maxima.
            self.rebuild_components();
            self.rebuild_comp_cp();
        } else {
            if first_label == OUTSIDE {
                self.comp_label[v.index()] = self.comp_count as u32;
                self.comp_count += 1;
                self.comp_cp.push(0.0);
            } else {
                self.comp_label[v.index()] = first_label;
            }
            // Entering only lengthens paths, so the per-component
            // critical paths are maxima that can only grow — and only
            // at v or at a node whose `up`/`down` moved. Fold exactly
            // those in; the totals are then re-reduced over the (small)
            // per-component table, reproducing `rebuild_comp_cp`'s
            // results bit for bit without the full cut walk.
            for i in 0..=self.changed_up.len() + self.changed_down.len() {
                let w = if i == 0 {
                    v
                } else if i <= self.changed_up.len() {
                    self.changed_up[i - 1]
                } else {
                    self.changed_down[i - 1 - self.changed_up.len()]
                };
                let wi = w.index();
                let through = self.up[wi] + self.down[wi] - self.ctx.hw_delay(w);
                let slot = &mut self.comp_cp[self.comp_label[wi] as usize];
                if through > *slot {
                    *slot = through;
                }
            }
            self.comp_cp_total = self.comp_cp.iter().sum();
            self.critical = self.comp_cp.iter().fold(0.0f64, |a, &b| a.max(b));
        }
        self.refresh_derived_masks();
    }

    /// Refresh after `v` *left* the cut: cut-local rebuild of the masks
    /// and components (removal can shrink hulls and split components),
    /// partial longest-path recompute as for entering. O(|C|·(deg+n/64)),
    /// allocation-free.
    fn refresh_leaving(&mut self, v: NodeId) {
        let ctx = self.ctx;
        let vi = v.index();
        self.up[vi] = 0.0;
        self.down[vi] = 0.0;
        self.comp_label[vi] = OUTSIDE;

        let reach = ctx.reach();
        self.below.clear();
        self.above.clear();
        for w in self.cut.iter() {
            self.below.union_with(reach.descendants(w));
            self.above.union_with(reach.ancestors(w));
        }

        self.collect_cut_members_by_rank(reach.descendants(v), true);
        let affected_up = std::mem::take(&mut self.order_scratch);
        for &w in &affected_up {
            self.recompute_up(w);
        }
        self.order_scratch = affected_up;

        self.collect_cut_members_by_rank(reach.ancestors(v), false);
        let affected_down = std::mem::take(&mut self.order_scratch);
        for &w in &affected_down {
            self.recompute_down(w);
        }
        self.order_scratch = affected_down;

        self.rebuild_components();
        self.rebuild_comp_cp();
        self.refresh_derived_masks();
    }

    /// Full derived-state rebuild, used at construction time only (the
    /// commit paths above maintain everything incrementally).
    fn refresh_full(&mut self) {
        let reach = self.ctx.reach();
        self.below.clear();
        self.above.clear();
        for v in self.cut.iter() {
            self.below.union_with(reach.descendants(v));
            self.above.union_with(reach.ancestors(v));
        }
        let topo = self.ctx.topo();
        self.order_scratch.clear();
        self.order_scratch.extend(self.cut.iter());
        self.order_scratch.sort_unstable_by_key(|&w| topo.rank(w));
        let members = std::mem::take(&mut self.order_scratch);
        for &w in &members {
            self.recompute_up(w);
        }
        for &w in members.iter().rev() {
            self.recompute_down(w);
        }
        self.order_scratch = members;
        self.rebuild_components();
        self.rebuild_comp_cp();
        self.refresh_derived_masks();
    }

    /// Fills `order_scratch` with `cut ∩ within`, sorted by topological
    /// rank (ascending or descending).
    fn collect_cut_members_by_rank(&mut self, within: &NodeSet, ascending: bool) {
        let topo = self.ctx.topo();
        self.order_scratch.clear();
        {
            // Word-zip of the two bitsets: touch only words where both
            // the cone and the cut have bits.
            let cut = &self.cut;
            let scratch = &mut self.order_scratch;
            within.for_each_word(|wi, w| {
                let mut m = w & cut.word(wi);
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    scratch.push(NodeId::from_index(wi * 64 + b));
                }
            });
        }
        if ascending {
            self.order_scratch.sort_unstable_by_key(|&w| topo.rank(w));
        } else {
            self.order_scratch
                .sort_unstable_by_key(|&w| std::cmp::Reverse(topo.rank(w)));
        }
    }

    /// Recomputes `up[w]` from `w`'s in-cut predecessors (which must
    /// already be current).
    fn recompute_up(&mut self, w: NodeId) {
        let dag = self.ctx.block().dag();
        let mut best = 0.0f64;
        for &p in dag.preds(w) {
            if self.cut.contains(p) && self.up[p.index()] > best {
                best = self.up[p.index()];
            }
        }
        self.up[w.index()] = best + self.ctx.hw_delay(w);
    }

    /// Recomputes `down[w]` from `w`'s in-cut successors (which must
    /// already be current).
    fn recompute_down(&mut self, w: NodeId) {
        let dag = self.ctx.block().dag();
        let mut best = 0.0f64;
        for &s in dag.succs(w) {
            if self.cut.contains(s) && self.down[s.index()] > best {
                best = self.down[s.index()];
            }
        }
        self.down[w.index()] = best + self.ctx.hw_delay(w);
    }

    /// Relabels the connected components of the cut by BFS over cut
    /// members only (undirected, as in the paper's "independently
    /// connected subgraphs"). O(|C|·deg), reusing the queue buffer.
    fn rebuild_components(&mut self) {
        let dag = self.ctx.block().dag();
        // Reset labels of cut members; non-members hold OUTSIDE already.
        self.order_scratch_b.clear();
        self.order_scratch_b.extend(self.cut.iter());
        let members = std::mem::take(&mut self.order_scratch_b);
        for &w in &members {
            self.comp_label[w.index()] = OUTSIDE;
        }
        let mut count = 0usize;
        for &start in &members {
            if self.comp_label[start.index()] != OUTSIDE {
                continue;
            }
            let comp = count as u32;
            count += 1;
            self.comp_label[start.index()] = comp;
            self.queue_scratch.clear();
            self.queue_scratch.push(start);
            while let Some(v) = self.queue_scratch.pop() {
                for &w in dag.preds(v).iter().chain(dag.succs(v)) {
                    if self.cut.contains(w) && self.comp_label[w.index()] == OUTSIDE {
                        self.comp_label[w.index()] = comp;
                        self.queue_scratch.push(w);
                    }
                }
            }
        }
        self.order_scratch_b = members;
        self.comp_count = count;
    }

    /// Recomputes per-component critical paths, their sum, and the cut's
    /// overall critical path from the (current) `up`/`down` arrays and
    /// component labels. O(|C|).
    fn rebuild_comp_cp(&mut self) {
        self.comp_cp.clear();
        self.comp_cp.resize(self.comp_count, 0.0);
        for v in self.cut.iter() {
            let vi = v.index();
            let through = self.up[vi] + self.down[vi] - self.ctx.hw_delay(v);
            let slot = &mut self.comp_cp[self.comp_label[vi] as usize];
            if through > *slot {
                *slot = through;
            }
        }
        self.comp_cp_total = self.comp_cp.iter().sum();
        self.critical = self.comp_cp.iter().fold(0.0f64, |a, &b| a.max(b));
    }

    /// Recomputes `below_ext`, `above_ext` and the violator set from the
    /// hull masks and the cut. O(n/64).
    fn refresh_derived_masks(&mut self) {
        self.below_ext.clone_from(&self.below);
        self.below_ext.subtract(&self.cut);
        self.above_ext.clone_from(&self.above);
        self.above_ext.subtract(&self.cut);
        self.violators.clone_from(&self.below_ext);
        self.violators.intersect_with(&self.above_ext);
        self.convex_now = self.violators.is_empty();
    }

    /// Number of connected components of the current cut.
    pub fn component_count(&self) -> usize {
        self.comp_count
    }

    /// Audit-mode cross-check: rebuilds a *fresh* engine from the
    /// current cut (the exact from-scratch path of
    /// [`ToggleEngine::from_cut`]) and reports every incremental field
    /// that diverges from it — incidence counters, the `feeds_cut` /
    /// `fed_by_cut` sets, I/O counts, latencies, hull and violator
    /// masks, and the component partition (compared up to label
    /// renaming, which the incremental merge is allowed to differ in).
    ///
    /// An empty result means the incremental state machine agrees with
    /// ground truth bit for bit (floats to 1e-9). O(cut · deg + n);
    /// meant for the opt-in audit cadence, not the hot path.
    pub fn audit_divergences(&self) -> Vec<String> {
        let fresh = ToggleEngine::from_cut(self.ctx, self.cut.clone());
        let n = self.ctx.node_count();
        let mut out = Vec::new();

        let diff_set = |name: &str, live: &NodeSet, truth: &NodeSet, out: &mut Vec<String>| {
            for i in 0..n {
                let v = NodeId::from_index(i);
                let (a, b) = (live.contains(v), truth.contains(v));
                if a != b {
                    out.push(format!("engine {name}: n{i} live={a} fresh={b}"));
                }
            }
        };
        let diff_counts = |name: &str, live: &[u32], truth: &[u32], out: &mut Vec<String>| {
            for i in 0..n.min(live.len()).min(truth.len()) {
                if live[i] != truth[i] {
                    out.push(format!(
                        "engine {name}: n{i} live={} fresh={}",
                        live[i], truth[i]
                    ));
                }
            }
        };
        let diff_floats = |name: &str, live: &[f64], truth: &[f64], out: &mut Vec<String>| {
            for i in 0..n.min(live.len()).min(truth.len()) {
                if (live[i] - truth[i]).abs() > 1e-9 {
                    out.push(format!(
                        "engine {name}: n{i} live={} fresh={}",
                        live[i], truth[i]
                    ));
                }
            }
        };

        diff_counts(
            "fanout_to_cut",
            &self.fanout_to_cut,
            &fresh.fanout_to_cut,
            &mut out,
        );
        diff_counts(
            "indeg_from_cut",
            &self.indeg_from_cut,
            &fresh.indeg_from_cut,
            &mut out,
        );
        diff_set("feeds_cut", &self.feeds_cut, &fresh.feeds_cut, &mut out);
        diff_set("fed_by_cut", &self.fed_by_cut, &fresh.fed_by_cut, &mut out);
        if self.input_count != fresh.input_count {
            out.push(format!(
                "engine input_count: live={} fresh={}",
                self.input_count, fresh.input_count
            ));
        }
        if self.output_count != fresh.output_count {
            out.push(format!(
                "engine output_count: live={} fresh={}",
                self.output_count, fresh.output_count
            ));
        }
        if self.sw_sum != fresh.sw_sum {
            out.push(format!(
                "engine sw_sum: live={} fresh={}",
                self.sw_sum, fresh.sw_sum
            ));
        }
        diff_floats("up", &self.up, &fresh.up, &mut out);
        diff_floats("down", &self.down, &fresh.down, &mut out);
        if (self.critical - fresh.critical).abs() > 1e-9 {
            out.push(format!(
                "engine critical: live={} fresh={}",
                self.critical, fresh.critical
            ));
        }
        diff_set("below", &self.below, &fresh.below, &mut out);
        diff_set("above", &self.above, &fresh.above, &mut out);
        diff_set("below_ext", &self.below_ext, &fresh.below_ext, &mut out);
        diff_set("above_ext", &self.above_ext, &fresh.above_ext, &mut out);
        diff_set("violators", &self.violators, &fresh.violators, &mut out);
        if self.convex_now != fresh.convex_now {
            out.push(format!(
                "engine convex_now: live={} fresh={}",
                self.convex_now, fresh.convex_now
            ));
        }
        if self.comp_count != fresh.comp_count {
            out.push(format!(
                "engine comp_count: live={} fresh={}",
                self.comp_count, fresh.comp_count
            ));
        }
        if (self.comp_cp_total - fresh.comp_cp_total).abs() > 1e-9 {
            out.push(format!(
                "engine comp_cp_total: live={} fresh={}",
                self.comp_cp_total, fresh.comp_cp_total
            ));
        }
        // Component labels compare up to renaming: map each side's label
        // to its first-seen index in node order, and check the per-
        // component critical paths through the same mapping.
        let mut canon_live: Vec<Option<u32>> = Vec::new();
        let mut canon_fresh: Vec<Option<u32>> = Vec::new();
        let canonical = |labels: &[u32],
                         seen: &mut std::collections::HashMap<u32, u32>,
                         i: usize|
         -> Option<u32> {
            let l = *labels.get(i)?;
            if l == OUTSIDE {
                return None;
            }
            let next = seen.len() as u32;
            Some(*seen.entry(l).or_insert(next))
        };
        let mut seen_live = std::collections::HashMap::new();
        let mut seen_fresh = std::collections::HashMap::new();
        for v in self.cut.iter() {
            let i = v.index();
            canon_live.push(canonical(&self.comp_label, &mut seen_live, i));
            canon_fresh.push(canonical(&fresh.comp_label, &mut seen_fresh, i));
            if canon_live.last() != canon_fresh.last() {
                out.push(format!(
                    "engine comp_label: n{i} live={:?} fresh={:?} (canonical)",
                    canon_live.last(),
                    canon_fresh.last()
                ));
            }
            let cp_live = self
                .comp_label
                .get(i)
                .and_then(|&l| self.comp_cp.get(l as usize));
            let cp_fresh = fresh
                .comp_label
                .get(i)
                .and_then(|&l| fresh.comp_cp.get(l as usize));
            match (cp_live, cp_fresh) {
                (Some(a), Some(b)) if (a - b).abs() > 1e-9 => {
                    out.push(format!("engine comp_cp: n{i} live={a} fresh={b}"));
                }
                (Some(_), Some(_)) => {}
                (a, b) => out.push(format!(
                    "engine comp_cp: n{i} live={a:?} fresh={b:?} (missing entry)"
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    fn check_against_scratch(engine: &ToggleEngine<'_, '_>, ctx: &BlockContext<'_>) {
        let reference = Cut::evaluate(ctx, engine.cut().clone());
        assert_eq!(engine.input_count(), reference.input_count(), "inputs");
        assert_eq!(engine.output_count(), reference.output_count(), "outputs");
        assert_eq!(
            engine.software_latency(),
            reference.software_latency(),
            "sw"
        );
        assert!(
            (engine.hardware_latency() - reference.hardware_latency()).abs() < 1e-9,
            "hw: {} vs {}",
            engine.hardware_latency(),
            reference.hardware_latency()
        );
        assert_eq!(engine.is_convex(), ctx.is_convex(engine.cut()), "convexity");
    }

    #[test]
    fn toggle_sequence_tracks_scratch_evaluation() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // toggle operations in and out in various orders
        for seq in &[
            vec![4, 5, 6],
            vec![6, 4, 5],
            vec![4, 4, 5, 6, 5],
            vec![6, 6],
        ] {
            let mut engine2 = ToggleEngine::new(&ctx);
            for &i in seq {
                engine2.toggle(ids[i]);
                check_against_scratch(&engine2, &ctx);
            }
        }
        // also from a seeded cut
        engine.toggle(ids[4]);
        engine.toggle(ids[6]);
        check_against_scratch(&engine, &ctx);
        let reseeded = ToggleEngine::from_cut(&ctx, engine.cut().clone());
        assert_eq!(reseeded.input_count(), engine.input_count());
        assert_eq!(reseeded.output_count(), engine.output_count());
    }

    #[test]
    fn probe_matches_commit_for_entering() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        for &i in &[4usize, 6, 5] {
            let p = engine.probe(ids[i]);
            assert!(p.entering);
            engine.toggle(ids[i]);
            assert_eq!(p.inputs, engine.input_count(), "probe inputs for {i}");
            assert_eq!(p.outputs, engine.output_count(), "probe outputs for {i}");
            assert_eq!(p.convex, engine.is_convex(), "probe convexity for {i}");
            if p.convex {
                assert!(
                    (p.merit - engine.merit()).abs() < 1e-9,
                    "probe merit {} vs {}",
                    p.merit,
                    engine.merit()
                );
            }
        }
    }

    #[test]
    fn probe_leaving_reports_components() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // two independent muls: two components
        engine.toggle(ids[4]);
        engine.toggle(ids[5]);
        assert_eq!(engine.component_count(), 2);
        let p = engine.probe(ids[4]);
        assert!(!p.entering);
        // the other component is the other mul: cp = 0.85
        assert!((p.other_components_hw - 0.85).abs() < 1e-9);
    }

    #[test]
    fn legality() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        assert!(
            !engine.is_legal(IoConstraints::new(4, 2)),
            "empty cut is not legal"
        );
        engine.toggle(ids[4]);
        engine.toggle(ids[5]);
        engine.toggle(ids[6]);
        assert!(engine.is_legal(IoConstraints::new(4, 2)));
        assert!(!engine.is_legal(IoConstraints::new(3, 1)));
        // {m1, add} with m2 outside is convex; {m1, m2} alone is too.
        engine.toggle(ids[5]);
        assert!(engine.is_convex());
    }

    #[test]
    fn snapshot_equals_scratch_cut() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        engine.toggle(ids[4]);
        engine.toggle(ids[6]);
        let snap = engine.snapshot();
        let reference = Cut::evaluate(&ctx, engine.cut().clone());
        assert_eq!(snap, reference);
    }

    #[test]
    fn non_convex_intermediate_detected() {
        // chain: in -> a -> b -> c. Cut {a, c} is not convex.
        let mut bb = BlockBuilder::new("chain");
        let x = bb.input("x");
        let a = bb.op(Opcode::Add, &[x, x]).unwrap();
        let b = bb.op(Opcode::Mul, &[a, a]).unwrap();
        let c = bb.op(Opcode::Not, &[b]).unwrap();
        let block = bb.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        engine.toggle(a);
        assert!(engine.is_convex());
        engine.toggle(c);
        assert!(!engine.is_convex());
        // filling the hole restores convexity
        engine.toggle(b);
        assert!(engine.is_convex());
    }

    #[test]
    fn reset_from_cut_equals_fresh_engine() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // Dirty the engine with an arbitrary walk, then reset it onto a
        // different cut: every observable must match a fresh build.
        let mut engine = ToggleEngine::new(&ctx);
        for &i in &[4usize, 5, 6, 5, 4] {
            engine.toggle(ids[i]);
        }
        let target = NodeSet::from_ids(ctx.node_count(), [ids[4], ids[6]]);
        engine.reset_from_cut(&target);
        let fresh = ToggleEngine::from_cut(&ctx, target.clone());
        assert_eq!(engine.cut(), fresh.cut());
        assert_eq!(engine.input_count(), fresh.input_count());
        assert_eq!(engine.output_count(), fresh.output_count());
        assert_eq!(engine.software_latency(), fresh.software_latency());
        assert_eq!(engine.hardware_latency(), fresh.hardware_latency());
        assert_eq!(engine.is_convex(), fresh.is_convex());
        assert_eq!(engine.component_count(), fresh.component_count());
        for &v in &ids {
            assert_eq!(engine.probe(v), fresh.probe(v), "probe mismatch at {v}");
        }
        check_against_scratch(&engine, &ctx);
    }

    #[test]
    fn arena_round_trip_across_blocks() {
        // One arena serving blocks of different sizes back to back —
        // the per-worker pooling pattern of the portfolio search.
        let model = LatencyModel::paper_default();
        let big = dotprod();
        let mut bb = BlockBuilder::new("small");
        let x = bb.input("x");
        bb.op(Opcode::Not, &[x]).unwrap();
        let small = bb.build().unwrap();

        let mut arena = EngineArena::default();
        for block in [&big, &small, &big] {
            let ctx = BlockContext::new(block, &model);
            let empty = NodeSet::new(ctx.node_count());
            let mut engine = ToggleEngine::from_cut_in(&ctx, &empty, arena);
            let reference = ToggleEngine::new(&ctx);
            for v in block.dag().node_ids() {
                assert_eq!(engine.probe(v), reference.probe(v));
            }
            // commit something so the arena returns non-trivial state
            let any = ctx.eligible().first().expect("eligible node");
            engine.toggle(any);
            check_against_scratch(&engine, &ctx);
            arena = engine.into_arena();
        }
    }

    /// The cone-local probe terms of node `u` — exactly what a
    /// [`crate::GainCache`] entry stores. Global terms (operand counts,
    /// latencies, the violator gate, the cut's convexity/size) are
    /// re-read fresh at recombination time, so they may move for clean
    /// nodes; these must not.
    fn local_terms(engine: &ToggleEngine<'_, '_>, u: NodeId) -> (bool, i32, i32, u32, bool, f64) {
        let p = engine.probe(u);
        let di = p.inputs as i32 - engine.input_count() as i32;
        let dout = p.outputs as i32 - engine.output_count() as i32;
        let (local_convex, through) = if p.entering {
            (engine.entering_hull_ok(u), engine.entering_through(u))
        } else {
            (engine.leaving_local_ok(u), 0.0)
        };
        (
            p.entering,
            di,
            dout,
            p.neighbors_in_cut,
            local_convex,
            through,
        )
    }

    #[test]
    fn toggle_and_mark_covers_probe_changes() {
        // Exhaustive check on the dot-product block: after each commit,
        // every node whose cone-local probe terms changed must be in the
        // dirty set — there is no full-invalidation escape hatch any
        // more, so the dirty set alone must cover every change.
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let n = ctx.node_count();
        for seq in &[vec![4, 5, 6, 5], vec![6, 5, 4], vec![4, 6, 4, 6, 5]] {
            let mut engine = ToggleEngine::new(&ctx);
            for &i in seq {
                let before: Vec<_> = ids.iter().map(|&u| local_terms(&engine, u)).collect();
                let mut dirty = NodeSet::new(n);
                engine.toggle_and_mark(ids[i], &mut dirty);
                for (u, old) in ids.iter().zip(&before) {
                    if dirty.contains(*u) {
                        continue;
                    }
                    assert_eq!(
                        local_terms(&engine, *u),
                        *old,
                        "local terms changed for clean node {u} after toggling {}",
                        ids[i]
                    );
                }
            }
        }
    }
}
