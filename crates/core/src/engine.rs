use crate::{BlockContext, Cut, IoConstraints};
use isegen_graph::components::OUTSIDE;
use isegen_graph::{NodeId, NodeSet};

/// Incremental hardware/software partition state — the paper's §4.3
/// toggle-impact machinery.
///
/// The paper maintains per-node input/output *addendums* (ΔI, ΔO, Fig. 3)
/// so that toggling a node between software (S) and hardware (H) updates
/// the cut's operand counts in O(deg) instead of a full recount. This
/// implementation expresses the same bookkeeping with an equivalent
/// counter scheme:
///
/// * `fanout_to_cut[p]` — number of edges from `p` into cut nodes. The
///   cut's **input count** is the number of nodes outside the cut with
///   `fanout_to_cut > 0` (distinct producers feeding the cut).
/// * A cut node is an **output** when it has at least one consumer outside
///   the cut or is live-out of the block.
///
/// Equivalence with a from-scratch recount is enforced by property tests
/// (`tests/engine_prop.rs`), substituting for the rule-table proofs the
/// paper defers to its technical report.
///
/// Commits refresh the heavier derived state *incrementally*: an entering
/// toggle extends the reachability masks by one word-level union and
/// recomputes longest-path values only for cut nodes downstream/upstream
/// of the toggled node; a leaving toggle rebuilds cut-local state in
/// O(|C|·(deg + n/64)). Neither path walks the whole graph or allocates.
/// Per-*candidate* probes cost O(deg + n/64) with no scratch-set writes.
#[derive(Debug)]
pub struct ToggleEngine<'c, 'a> {
    ctx: &'c BlockContext<'a>,
    cut: NodeSet,
    fanout_to_cut: Vec<u32>,
    input_count: u32,
    output_count: u32,
    sw_sum: u64,
    up: Vec<f64>,
    down: Vec<f64>,
    critical: f64,
    /// Union of `descendants(w)` over cut nodes `w`.
    below: NodeSet,
    /// Union of `ancestors(w)` over cut nodes `w`.
    above: NodeSet,
    /// `below \ cut` — hull floor outside the cut; entering-convexity
    /// probes test membership against it word-parallel.
    below_ext: NodeSet,
    /// `above \ cut` — hull ceiling outside the cut.
    above_ext: NodeSet,
    /// `below ∩ above \ cut` — the convexity violators of the *current*
    /// cut (empty iff the cut is convex).
    violators: NodeSet,
    convex_now: bool,
    comp_label: Vec<u32>,
    comp_count: usize,
    comp_cp: Vec<f64>,
    comp_cp_total: f64,
    // Reusable buffers: committed toggles never allocate.
    order_scratch: Vec<NodeId>,
    order_scratch_b: Vec<NodeId>,
    queue_scratch: Vec<NodeId>,
    violators_prev: NodeSet,
}

/// The predicted effect of toggling one node, produced by
/// [`ToggleEngine::probe`]. Feed it to the gain function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// `true` when the node would move S → H (join the cut).
    pub entering: bool,
    /// Input operand count of the cut after the toggle.
    pub inputs: u32,
    /// Output operand count of the cut after the toggle.
    pub outputs: u32,
    /// Convexity of the cut after the toggle. Exact for entering moves
    /// and for leaving moves out of a convex cut; pessimistically `false`
    /// for leaving moves out of a non-convex cut (the merit component is
    /// zero for non-convex cuts anyway, per §4.2).
    pub convex: bool,
    /// Estimated merit `λ_sw − λ_hw` of the cut after the toggle; `0.0`
    /// when `convex` is false (paper §4.2). The hardware critical path is
    /// exact for entering moves and conservative (an upper bound) for
    /// leaving moves.
    pub merit: f64,
    /// Number of distinct neighbours of the node currently in the cut
    /// (the paper's `N(v, C)` affinity input).
    pub neighbors_in_cut: u32,
    /// For a leaving move: the summed hardware critical paths of the
    /// *other* connected components of the cut (the paper's
    /// independent-cuts input). `0.0` for entering moves.
    pub other_components_hw: f64,
}

impl<'c, 'a> ToggleEngine<'c, 'a> {
    /// Starts from the all-software configuration (empty cut).
    pub fn new(ctx: &'c BlockContext<'a>) -> Self {
        Self::from_cut(ctx, NodeSet::new(ctx.node_count()))
    }

    /// Starts from an existing cut (e.g. the best cut of the previous
    /// K-L pass).
    ///
    /// # Panics
    ///
    /// Panics if `cut`'s capacity does not match the block.
    pub fn from_cut(ctx: &'c BlockContext<'a>, cut: NodeSet) -> Self {
        let n = ctx.node_count();
        assert_eq!(cut.capacity(), n, "cut capacity does not match block");
        let dag = ctx.block().dag();
        let mut fanout_to_cut = vec![0u32; n];
        for v in cut.iter() {
            for &p in dag.preds(v) {
                fanout_to_cut[p.index()] += 1;
            }
        }
        let mut engine = ToggleEngine {
            ctx,
            cut,
            fanout_to_cut,
            input_count: 0,
            output_count: 0,
            sw_sum: 0,
            up: vec![0.0; n],
            down: vec![0.0; n],
            critical: 0.0,
            below: NodeSet::new(n),
            above: NodeSet::new(n),
            below_ext: NodeSet::new(n),
            above_ext: NodeSet::new(n),
            violators: NodeSet::new(n),
            convex_now: true,
            comp_label: vec![OUTSIDE; n],
            comp_count: 0,
            comp_cp: Vec::new(),
            comp_cp_total: 0.0,
            order_scratch: Vec::new(),
            order_scratch_b: Vec::new(),
            queue_scratch: Vec::new(),
            violators_prev: NodeSet::new(n),
        };
        engine.recount_io();
        engine.refresh_full();
        engine
    }

    /// The block context this engine searches.
    #[inline]
    pub fn ctx(&self) -> &'c BlockContext<'a> {
        self.ctx
    }

    /// The current cut.
    #[inline]
    pub fn cut(&self) -> &NodeSet {
        &self.cut
    }

    /// Current input operand count.
    #[inline]
    pub fn input_count(&self) -> u32 {
        self.input_count
    }

    /// Current output operand count.
    #[inline]
    pub fn output_count(&self) -> u32 {
        self.output_count
    }

    /// Whether the current cut is convex (exact).
    #[inline]
    pub fn is_convex(&self) -> bool {
        self.convex_now
    }

    /// Software latency of the current cut, in cycles.
    #[inline]
    pub fn software_latency(&self) -> u64 {
        self.sw_sum
    }

    /// Hardware critical path of the current cut, in MAC units (exact).
    #[inline]
    pub fn hardware_latency(&self) -> f64 {
        self.critical
    }

    /// Exact merit `λ_sw − λ_hw` of the current cut.
    #[inline]
    pub fn merit(&self) -> f64 {
        self.sw_sum as f64 - self.critical
    }

    /// Whether the current cut is a *legal* ISE: non-empty, convex and
    /// within the port budget.
    pub fn is_legal(&self, io: IoConstraints) -> bool {
        !self.cut.is_empty() && self.convex_now && io.admits(self.input_count, self.output_count)
    }

    /// Takes an exact [`Cut`] snapshot of the current state.
    pub fn snapshot(&self) -> Cut {
        Cut::from_parts(
            self.cut.clone(),
            self.input_count,
            self.output_count,
            self.sw_sum,
            self.critical,
        )
    }

    /// Predicts the effect of toggling `v` without committing it.
    ///
    /// O(deg(v) + n/64), allocation-free and read-only.
    pub fn probe(&self, v: NodeId) -> Probe {
        let entering = !self.cut.contains(v);
        let (inputs, outputs) = self.io_after(v, entering);
        let convex = self.convex_after(v, entering);
        let merit = if convex {
            let sw2 = if entering {
                self.sw_sum + self.ctx.sw_cycles(v) as u64
            } else {
                self.sw_sum - self.ctx.sw_cycles(v) as u64
            };
            let hw2 = self.critical_after(v, entering);
            sw2 as f64 - hw2
        } else {
            0.0
        };
        let neighbors_in_cut = self.distinct_neighbors_in_cut(v);
        let other_components_hw = if entering {
            0.0
        } else {
            self.other_components_hw(v)
        };
        Probe {
            entering,
            inputs,
            outputs,
            convex,
            merit,
            neighbors_in_cut,
            other_components_hw,
        }
    }

    /// Toggles `v` between software and hardware, updating all state.
    ///
    /// Returns `true` when `v` entered the cut.
    pub fn toggle(&mut self, v: NodeId) -> bool {
        let entering = !self.cut.contains(v);
        let (inputs, outputs) = self.io_after(v, entering);
        let dag = self.ctx.block().dag();
        if entering {
            self.cut.insert(v);
            for &p in dag.preds(v) {
                self.fanout_to_cut[p.index()] += 1;
            }
            self.sw_sum += self.ctx.sw_cycles(v) as u64;
        } else {
            self.cut.remove(v);
            for &p in dag.preds(v) {
                self.fanout_to_cut[p.index()] -= 1;
            }
            self.sw_sum -= self.ctx.sw_cycles(v) as u64;
        }
        self.input_count = inputs;
        self.output_count = outputs;
        if entering {
            self.refresh_entering(v);
        } else {
            self.refresh_leaving(v);
        }
        entering
    }

    /// Toggles `v` and accumulates into `dirty` every node whose
    /// [`ToggleEngine::probe`] result may differ from before the commit —
    /// the invalidation set of the K-L gain cache ([`crate::GainCache`]).
    ///
    /// The set is conservative but cheap: `{v} ∪ anc(v) ∪ desc(v)` (the
    /// reachability cones cover every node whose longest-path or
    /// convexity-hull terms can move), consumers sharing a producer with
    /// `v` (their ΔI terms read the producer's fan-out counter), and the
    /// current cut members (leaving probes read global component state).
    ///
    /// Returns `true` when the caller must instead invalidate *all*
    /// cached probes: the convexity-violator set changed (entering
    /// probes everywhere test against it) or a leaving commit split a
    /// component.
    pub fn toggle_and_mark(&mut self, v: NodeId, dirty: &mut NodeSet) -> bool {
        self.violators_prev.clone_from(&self.violators);
        let comp_before = self.comp_count;
        let entering = self.toggle(v);

        let reach = self.ctx.reach();
        dirty.insert(v);
        dirty.union_with(reach.ancestors(v));
        dirty.union_with(reach.descendants(v));
        let dag = self.ctx.block().dag();
        for &p in dag.preds(v) {
            for &u in dag.succs(p) {
                dirty.insert(u);
            }
        }
        dirty.union_with(&self.cut);

        self.violators != self.violators_prev || (!entering && self.comp_count > comp_before)
    }

    // ----- incremental pieces ------------------------------------------

    /// Input/output counts after toggling `v`, derived in O(deg(v)) from
    /// the maintained counters — the ΔI/ΔO addendum scheme of Fig. 3.
    fn io_after(&self, v: NodeId, entering: bool) -> (u32, u32) {
        let dag = self.ctx.block().dag();
        let block = self.ctx.block();
        let vi = v.index();
        let mut inp = self.input_count as i64;
        let mut out = self.output_count as i64;
        let outside_v = dag.out_degree(v) as u32 - self.fanout_to_cut[vi];
        let v_escapes = outside_v > 0 || block.is_live_out(v);
        if entering {
            // v stops being an outside supplier of the cut.
            if self.fanout_to_cut[vi] > 0 {
                inp -= 1;
            }
            // v becomes an output if its value escapes the cut.
            if v_escapes {
                out += 1;
            }
        } else {
            // v resumes being an outside supplier if it feeds cut nodes.
            if self.fanout_to_cut[vi] > 0 {
                inp += 1;
            }
            // v stops being an output.
            if v_escapes {
                out -= 1;
            }
        }
        let preds = dag.preds(v);
        for (i, &p) in preds.iter().enumerate() {
            if preds[..i].contains(&p) {
                continue; // count each distinct producer once
            }
            let mult = preds.iter().filter(|&&q| q == p).count() as u32;
            let pi = p.index();
            if self.cut.contains(p) {
                let outside_p = dag.out_degree(p) as u32 - self.fanout_to_cut[pi];
                if entering {
                    // p's edges to v become internal; if v was p's only
                    // escape and p is not live-out, p stops being an output.
                    if outside_p == mult && !block.is_live_out(p) {
                        out -= 1;
                    }
                } else {
                    // p's edges to v become external; if p had no escape
                    // before and is not live-out, it becomes an output.
                    if outside_p == 0 && !block.is_live_out(p) {
                        out += 1;
                    }
                }
            } else if entering {
                // p becomes a supplier if it was not one already.
                if self.fanout_to_cut[pi] == 0 {
                    inp += 1;
                }
            } else {
                // p stops being a supplier if v consumed all of p's
                // cut-directed edges.
                if self.fanout_to_cut[pi] == mult {
                    inp -= 1;
                }
            }
        }
        debug_assert!(inp >= 0 && out >= 0, "io counters went negative");
        (inp as u32, out as u32)
    }

    /// Convexity after toggling `v`. Exact for entering moves (the union
    /// masks extend monotonically); exact for leaving a convex cut (the
    /// only possible new violation passes through `v`); pessimistic
    /// `false` when leaving a non-convex cut.
    ///
    /// The entering test is the fused word-level form of
    /// `((below ∪ desc(v)) ∩ (above ∪ anc(v))) \ cut \ {v} = ∅`:
    /// distributing the intersection and dropping the empty
    /// `desc(v) ∩ anc(v)` term leaves exactly the three maintained-set
    /// conditions below — no scratch sets are materialised.
    fn convex_after(&self, v: NodeId, entering: bool) -> bool {
        let reach = self.ctx.reach();
        if entering {
            // below ∩ above \ cut must already be ⊆ {v} …
            match self.violators.len() {
                0 => {}
                1 if self.violators.contains(v) => {}
                _ => return false,
            }
            // … and v's cones must not touch the hull outside the cut.
            !reach.ancestors(v).intersects(&self.below_ext)
                && !reach.descendants(v).intersects(&self.above_ext)
        } else if self.convex_now {
            if self.cut.len() <= 1 {
                return true;
            }
            let has_cut_anc = reach.ancestors(v).intersects(&self.cut);
            let has_cut_desc = reach.descendants(v).intersects(&self.cut);
            !(has_cut_anc && has_cut_desc)
        } else {
            false
        }
    }

    /// Longest hardware path that would pass *through* `v` if it entered
    /// the cut: `max(up over cut preds) + delay(v) + max(down over cut
    /// succs)`. The gain cache stores this per candidate; it only changes
    /// when a neighbouring cut node's longest-path value moves.
    pub(crate) fn entering_through(&self, v: NodeId) -> f64 {
        let dag = self.ctx.block().dag();
        let mut up_in = 0.0f64;
        for &p in dag.preds(v) {
            if self.cut.contains(p) && self.up[p.index()] > up_in {
                up_in = self.up[p.index()];
            }
        }
        let mut down_in = 0.0f64;
        for &s in dag.succs(v) {
            if self.cut.contains(s) && self.down[s.index()] > down_in {
                down_in = self.down[s.index()];
            }
        }
        up_in + self.ctx.hw_delay(v) + down_in
    }

    /// Hardware critical path after toggling `v`. Exact for entering
    /// moves (any new longest path must pass through `v`, and `up`/`down`
    /// are exact within the current cut); for leaving moves it returns
    /// the current critical path (an upper bound when `v` lies on it,
    /// exact otherwise).
    fn critical_after(&self, v: NodeId, entering: bool) -> f64 {
        if entering {
            self.critical.max(self.entering_through(v))
        } else {
            self.critical
        }
    }

    /// Summed critical paths of the components of the cut *other* than
    /// the one containing cut member `v`. O(1).
    pub(crate) fn other_components_hw(&self, v: NodeId) -> f64 {
        let label = self.comp_label[v.index()];
        debug_assert_ne!(label, OUTSIDE, "leaving node must be labelled");
        self.comp_cp_total - self.comp_cp[label as usize]
    }

    fn distinct_neighbors_in_cut(&self, v: NodeId) -> u32 {
        let dag = self.ctx.block().dag();
        let preds = dag.preds(v);
        let succs = dag.succs(v);
        let mut count = 0u32;
        for (i, &p) in preds.iter().enumerate() {
            if self.cut.contains(p) && !preds[..i].contains(&p) {
                count += 1;
            }
        }
        for (i, &s) in succs.iter().enumerate() {
            if self.cut.contains(s) && !succs[..i].contains(&s) && !preds.contains(&s) {
                count += 1;
            }
        }
        count
    }

    /// Full recount of I/O from the cut alone — initialisation and the
    /// reference the property tests compare the incremental path against.
    fn recount_io(&mut self) {
        let dag = self.ctx.block().dag();
        let block = self.ctx.block();
        let mut inputs = 0u32;
        let mut outputs = 0u32;
        let mut sw = 0u64;
        for v in dag.node_ids() {
            let vi = v.index();
            if self.cut.contains(v) {
                sw += self.ctx.sw_cycles(v) as u64;
                let outside = dag.out_degree(v) as u32 - self.fanout_to_cut[vi];
                if outside > 0 || block.is_live_out(v) {
                    outputs += 1;
                }
            } else if self.fanout_to_cut[vi] > 0 {
                inputs += 1;
            }
        }
        self.input_count = inputs;
        self.output_count = outputs;
        self.sw_sum = sw;
    }

    // ----- committed-toggle refresh ------------------------------------

    /// Refresh after `v` *entered* the cut. The reachability masks grow
    /// by one word-level union each; longest-path values are recomputed
    /// only for cut nodes in `desc(v)` / `anc(v)`; components merge by
    /// label. No full-graph walk, no allocation (buffers are reused).
    fn refresh_entering(&mut self, v: NodeId) {
        let ctx = self.ctx;
        let reach = ctx.reach();
        self.below.union_with(reach.descendants(v));
        self.above.union_with(reach.ancestors(v));

        // Longest paths: `up` changes only for v and cut ∩ desc(v)
        // (processed in topological order, v strictly first), `down` only
        // for v and cut ∩ anc(v) (reverse order, v first).
        self.collect_cut_members_by_rank(reach.descendants(v), true);
        self.recompute_up(v);
        let affected_up = std::mem::take(&mut self.order_scratch);
        for &w in &affected_up {
            self.recompute_up(w);
        }
        self.order_scratch = affected_up;

        self.collect_cut_members_by_rank(reach.ancestors(v), false);
        self.recompute_down(v);
        let affected_down = std::mem::take(&mut self.order_scratch);
        for &w in &affected_down {
            self.recompute_down(w);
        }
        self.order_scratch = affected_down;

        // Components: v attaches to the components of its cut neighbours.
        let dag = ctx.block().dag();
        let mut first_label = OUTSIDE;
        let mut merges = false;
        for &w in dag.preds(v).iter().chain(dag.succs(v)) {
            let l = self.comp_label[w.index()];
            if l == OUTSIDE {
                continue;
            }
            if first_label == OUTSIDE {
                first_label = l;
            } else if l != first_label {
                merges = true;
                break;
            }
        }
        if merges {
            self.rebuild_components();
        } else if first_label == OUTSIDE {
            self.comp_label[v.index()] = self.comp_count as u32;
            self.comp_count += 1;
        } else {
            self.comp_label[v.index()] = first_label;
        }

        self.rebuild_comp_cp();
        self.refresh_derived_masks();
    }

    /// Refresh after `v` *left* the cut: cut-local rebuild of the masks
    /// and components (removal can shrink hulls and split components),
    /// partial longest-path recompute as for entering. O(|C|·(deg+n/64)),
    /// allocation-free.
    fn refresh_leaving(&mut self, v: NodeId) {
        let ctx = self.ctx;
        let vi = v.index();
        self.up[vi] = 0.0;
        self.down[vi] = 0.0;
        self.comp_label[vi] = OUTSIDE;

        let reach = ctx.reach();
        self.below.clear();
        self.above.clear();
        for w in self.cut.iter() {
            self.below.union_with(reach.descendants(w));
            self.above.union_with(reach.ancestors(w));
        }

        self.collect_cut_members_by_rank(reach.descendants(v), true);
        let affected_up = std::mem::take(&mut self.order_scratch);
        for &w in &affected_up {
            self.recompute_up(w);
        }
        self.order_scratch = affected_up;

        self.collect_cut_members_by_rank(reach.ancestors(v), false);
        let affected_down = std::mem::take(&mut self.order_scratch);
        for &w in &affected_down {
            self.recompute_down(w);
        }
        self.order_scratch = affected_down;

        self.rebuild_components();
        self.rebuild_comp_cp();
        self.refresh_derived_masks();
    }

    /// Full derived-state rebuild, used at construction time only (the
    /// commit paths above maintain everything incrementally).
    fn refresh_full(&mut self) {
        let reach = self.ctx.reach();
        self.below.clear();
        self.above.clear();
        for v in self.cut.iter() {
            self.below.union_with(reach.descendants(v));
            self.above.union_with(reach.ancestors(v));
        }
        let topo = self.ctx.topo();
        self.order_scratch.clear();
        self.order_scratch.extend(self.cut.iter());
        self.order_scratch.sort_unstable_by_key(|&w| topo.rank(w));
        let members = std::mem::take(&mut self.order_scratch);
        for &w in &members {
            self.recompute_up(w);
        }
        for &w in members.iter().rev() {
            self.recompute_down(w);
        }
        self.order_scratch = members;
        self.rebuild_components();
        self.rebuild_comp_cp();
        self.refresh_derived_masks();
    }

    /// Fills `order_scratch` with `cut ∩ within`, sorted by topological
    /// rank (ascending or descending).
    fn collect_cut_members_by_rank(&mut self, within: &NodeSet, ascending: bool) {
        let topo = self.ctx.topo();
        self.order_scratch.clear();
        {
            // Word-zip of the two bitsets: touch only words where both
            // the cone and the cut have bits.
            let cut = &self.cut;
            let scratch = &mut self.order_scratch;
            within.for_each_word(|wi, w| {
                let mut m = w & cut.word(wi);
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    scratch.push(NodeId::from_index(wi * 64 + b));
                }
            });
        }
        if ascending {
            self.order_scratch.sort_unstable_by_key(|&w| topo.rank(w));
        } else {
            self.order_scratch
                .sort_unstable_by_key(|&w| std::cmp::Reverse(topo.rank(w)));
        }
    }

    /// Recomputes `up[w]` from `w`'s in-cut predecessors (which must
    /// already be current).
    fn recompute_up(&mut self, w: NodeId) {
        let dag = self.ctx.block().dag();
        let mut best = 0.0f64;
        for &p in dag.preds(w) {
            if self.cut.contains(p) && self.up[p.index()] > best {
                best = self.up[p.index()];
            }
        }
        self.up[w.index()] = best + self.ctx.hw_delay(w);
    }

    /// Recomputes `down[w]` from `w`'s in-cut successors (which must
    /// already be current).
    fn recompute_down(&mut self, w: NodeId) {
        let dag = self.ctx.block().dag();
        let mut best = 0.0f64;
        for &s in dag.succs(w) {
            if self.cut.contains(s) && self.down[s.index()] > best {
                best = self.down[s.index()];
            }
        }
        self.down[w.index()] = best + self.ctx.hw_delay(w);
    }

    /// Relabels the connected components of the cut by BFS over cut
    /// members only (undirected, as in the paper's "independently
    /// connected subgraphs"). O(|C|·deg), reusing the queue buffer.
    fn rebuild_components(&mut self) {
        let dag = self.ctx.block().dag();
        // Reset labels of cut members; non-members hold OUTSIDE already.
        self.order_scratch_b.clear();
        self.order_scratch_b.extend(self.cut.iter());
        let members = std::mem::take(&mut self.order_scratch_b);
        for &w in &members {
            self.comp_label[w.index()] = OUTSIDE;
        }
        let mut count = 0usize;
        for &start in &members {
            if self.comp_label[start.index()] != OUTSIDE {
                continue;
            }
            let comp = count as u32;
            count += 1;
            self.comp_label[start.index()] = comp;
            self.queue_scratch.clear();
            self.queue_scratch.push(start);
            while let Some(v) = self.queue_scratch.pop() {
                for &w in dag.preds(v).iter().chain(dag.succs(v)) {
                    if self.cut.contains(w) && self.comp_label[w.index()] == OUTSIDE {
                        self.comp_label[w.index()] = comp;
                        self.queue_scratch.push(w);
                    }
                }
            }
        }
        self.order_scratch_b = members;
        self.comp_count = count;
    }

    /// Recomputes per-component critical paths, their sum, and the cut's
    /// overall critical path from the (current) `up`/`down` arrays and
    /// component labels. O(|C|).
    fn rebuild_comp_cp(&mut self) {
        self.comp_cp.clear();
        self.comp_cp.resize(self.comp_count, 0.0);
        for v in self.cut.iter() {
            let vi = v.index();
            let through = self.up[vi] + self.down[vi] - self.ctx.hw_delay(v);
            let slot = &mut self.comp_cp[self.comp_label[vi] as usize];
            if through > *slot {
                *slot = through;
            }
        }
        self.comp_cp_total = self.comp_cp.iter().sum();
        self.critical = self.comp_cp.iter().fold(0.0f64, |a, &b| a.max(b));
    }

    /// Recomputes `below_ext`, `above_ext` and the violator set from the
    /// hull masks and the cut. O(n/64).
    fn refresh_derived_masks(&mut self) {
        self.below_ext.clone_from(&self.below);
        self.below_ext.subtract(&self.cut);
        self.above_ext.clone_from(&self.above);
        self.above_ext.subtract(&self.cut);
        self.violators.clone_from(&self.below_ext);
        self.violators.intersect_with(&self.above_ext);
        self.convex_now = self.violators.is_empty();
    }

    /// Number of connected components of the current cut.
    pub fn component_count(&self) -> usize {
        self.comp_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    fn check_against_scratch(engine: &ToggleEngine<'_, '_>, ctx: &BlockContext<'_>) {
        let reference = Cut::evaluate(ctx, engine.cut().clone());
        assert_eq!(engine.input_count(), reference.input_count(), "inputs");
        assert_eq!(engine.output_count(), reference.output_count(), "outputs");
        assert_eq!(
            engine.software_latency(),
            reference.software_latency(),
            "sw"
        );
        assert!(
            (engine.hardware_latency() - reference.hardware_latency()).abs() < 1e-9,
            "hw: {} vs {}",
            engine.hardware_latency(),
            reference.hardware_latency()
        );
        assert_eq!(engine.is_convex(), ctx.is_convex(engine.cut()), "convexity");
    }

    #[test]
    fn toggle_sequence_tracks_scratch_evaluation() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // toggle operations in and out in various orders
        for seq in &[
            vec![4, 5, 6],
            vec![6, 4, 5],
            vec![4, 4, 5, 6, 5],
            vec![6, 6],
        ] {
            let mut engine2 = ToggleEngine::new(&ctx);
            for &i in seq {
                engine2.toggle(ids[i]);
                check_against_scratch(&engine2, &ctx);
            }
        }
        // also from a seeded cut
        engine.toggle(ids[4]);
        engine.toggle(ids[6]);
        check_against_scratch(&engine, &ctx);
        let reseeded = ToggleEngine::from_cut(&ctx, engine.cut().clone());
        assert_eq!(reseeded.input_count(), engine.input_count());
        assert_eq!(reseeded.output_count(), engine.output_count());
    }

    #[test]
    fn probe_matches_commit_for_entering() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        for &i in &[4usize, 6, 5] {
            let p = engine.probe(ids[i]);
            assert!(p.entering);
            engine.toggle(ids[i]);
            assert_eq!(p.inputs, engine.input_count(), "probe inputs for {i}");
            assert_eq!(p.outputs, engine.output_count(), "probe outputs for {i}");
            assert_eq!(p.convex, engine.is_convex(), "probe convexity for {i}");
            if p.convex {
                assert!(
                    (p.merit - engine.merit()).abs() < 1e-9,
                    "probe merit {} vs {}",
                    p.merit,
                    engine.merit()
                );
            }
        }
    }

    #[test]
    fn probe_leaving_reports_components() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // two independent muls: two components
        engine.toggle(ids[4]);
        engine.toggle(ids[5]);
        assert_eq!(engine.component_count(), 2);
        let p = engine.probe(ids[4]);
        assert!(!p.entering);
        // the other component is the other mul: cp = 0.85
        assert!((p.other_components_hw - 0.85).abs() < 1e-9);
    }

    #[test]
    fn legality() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        assert!(
            !engine.is_legal(IoConstraints::new(4, 2)),
            "empty cut is not legal"
        );
        engine.toggle(ids[4]);
        engine.toggle(ids[5]);
        engine.toggle(ids[6]);
        assert!(engine.is_legal(IoConstraints::new(4, 2)));
        assert!(!engine.is_legal(IoConstraints::new(3, 1)));
        // {m1, add} with m2 outside is convex; {m1, m2} alone is too.
        engine.toggle(ids[5]);
        assert!(engine.is_convex());
    }

    #[test]
    fn snapshot_equals_scratch_cut() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        engine.toggle(ids[4]);
        engine.toggle(ids[6]);
        let snap = engine.snapshot();
        let reference = Cut::evaluate(&ctx, engine.cut().clone());
        assert_eq!(snap, reference);
    }

    #[test]
    fn non_convex_intermediate_detected() {
        // chain: in -> a -> b -> c. Cut {a, c} is not convex.
        let mut bb = BlockBuilder::new("chain");
        let x = bb.input("x");
        let a = bb.op(Opcode::Add, &[x, x]).unwrap();
        let b = bb.op(Opcode::Mul, &[a, a]).unwrap();
        let c = bb.op(Opcode::Not, &[b]).unwrap();
        let block = bb.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        engine.toggle(a);
        assert!(engine.is_convex());
        engine.toggle(c);
        assert!(!engine.is_convex());
        // filling the hole restores convexity
        engine.toggle(b);
        assert!(engine.is_convex());
    }

    #[test]
    fn toggle_and_mark_covers_probe_changes() {
        // Exhaustive check on the dot-product block: after each commit,
        // every node whose probe changed must be in the dirty set (or a
        // full invalidation must be signalled).
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let n = ctx.node_count();
        for seq in &[vec![4, 5, 6, 5], vec![6, 5, 4], vec![4, 6, 4, 6, 5]] {
            let mut engine = ToggleEngine::new(&ctx);
            for &i in seq {
                let before: Vec<Probe> = ids.iter().map(|&u| engine.probe(u)).collect();
                let mut dirty = NodeSet::new(n);
                let full = engine.toggle_and_mark(ids[i], &mut dirty);
                if full {
                    continue;
                }
                for (u, old) in ids.iter().zip(&before) {
                    if dirty.contains(*u) {
                        continue;
                    }
                    let new = engine.probe(*u);
                    // Clean nodes may still see the global counters move;
                    // the *local* probe pieces must be unchanged.
                    assert_eq!(new.entering, old.entering, "entering changed for {u}");
                    assert_eq!(new.convex, old.convex, "convexity changed for {u}");
                    assert_eq!(
                        new.neighbors_in_cut, old.neighbors_in_cut,
                        "neighbours changed for {u}"
                    );
                }
            }
        }
    }
}
