use crate::cache::{CacheStats, GainCache};
use crate::driver::CutFinder;
use crate::gain::gain_of;
use crate::{BlockContext, Cut, GainWeights, IoConstraints, ToggleEngine};
use isegen_graph::{NodeId, NodeSet};

/// Knobs of the modified Kernighan–Lin search (paper Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Maximum number of improvement passes. The paper found
    /// experimentally that 5 passes suffice; the loop also exits early
    /// when a pass fails to improve the best cut.
    pub max_passes: usize,
    /// Gain-function weights (paper §4.2).
    pub weights: GainWeights,
    /// Number of diversified restarts. A K-L pass follows one greedy
    /// toggle trajectory; on blocks with several distant high-merit
    /// regions a single trajectory can settle in the wrong basin. Each
    /// restart forces the first toggle onto the best-gain node of a
    /// *different* region (seeds are kept ≥ 3 edges apart), and the best
    /// cut across restarts wins. Deterministic. `1` reproduces the
    /// paper's single-trajectory algorithm exactly.
    pub restarts: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_passes: 5,
            weights: GainWeights::default(),
            restarts: 3,
        }
    }
}

/// Runs one ISEGEN bi-partition of a basic block (paper Fig. 2): finds the
/// best legal cut reachable by iterative improvement from the all-software
/// configuration, honouring `io` constraints and never touching nodes in
/// `forbidden` (e.g. nodes already claimed by earlier ISEs).
///
/// Returns the best cut found; the cut is empty when no legal cut with
/// positive merit exists (e.g. everything is forbidden).
///
/// The algorithm, following the paper:
///
/// 1. `BC` ← all-software (empty cut).
/// 2. Up to [`SearchConfig::max_passes`] times: starting from `BC`,
///    repeatedly evaluate the gain function for every unmarked node,
///    toggle the best node S↔H and mark it — intermediate cuts may
///    violate constraints ("we allow a cut to be illegal giving it an
///    opportunity to eventually grow into a valid cut") — while tracking
///    the best *legal* cut seen in the pass.
/// 3. If the pass improved on `BC`, commit and iterate; otherwise stop.
pub fn bipartition(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
) -> Cut {
    bipartition_with_stats(ctx, io, config, forbidden).0
}

/// [`bipartition`], additionally returning the gain-cache probe
/// statistics of the whole search (all weight flavours and restarts) —
/// the "probes avoided" number of the perf trajectory.
pub fn bipartition_with_stats(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
) -> (Cut, CacheStats) {
    let n = ctx.node_count();
    let mut stats = CacheStats::default();
    // Nodes the search may toggle: eligible and not forbidden.
    let mut free = ctx.eligible().clone();
    if let Some(f) = forbidden {
        free.subtract(f);
    }
    if free.is_empty() {
        return (Cut::empty(n), stats);
    }
    let free_nodes: Vec<NodeId> = free.iter().collect();

    // Two gain flavours per trajectory: the configured weights, and a
    // cohesion-boosted variant (double affinity). Low affinity finds the
    // best *independent-subgraph* cuts (fbital-style min/max pairs);
    // high affinity tracks deep *connected* clusters (Viterbi ACS
    // butterflies). The paper tunes one weight set per evaluation; the
    // small portfolio makes the defaults robust across both regimes.
    let cohesive = SearchConfig {
        weights: GainWeights {
            affinity: config.weights.affinity * 2.0,
            ..config.weights
        },
        ..config.clone()
    };
    let mut best_cut = Cut::empty(n);
    for cfg in [config, &cohesive] {
        let candidate = kl_trajectories(ctx, io, cfg, &free_nodes, None, &mut stats);
        if candidate.merit() > best_cut.merit() {
            best_cut = candidate;
        }
        for seed in restart_seeds(ctx, io, cfg, &free_nodes) {
            let candidate = kl_trajectories(ctx, io, cfg, &free_nodes, Some(seed), &mut stats);
            if candidate.merit() > best_cut.merit() {
                best_cut = candidate;
            }
        }
    }
    (best_cut, stats)
}

/// Runs the Fig. 2 pass loop once, optionally forcing the very first
/// toggle onto `seed` (restart diversification).
///
/// The sweep is served by a [`GainCache`]: after each committed toggle
/// only the nodes in the engine's dirty set are re-probed; every other
/// gain is recombined from cached local terms in O(1). The cached gains
/// are bit-identical to fresh probes (`tests/gain_cache_prop.rs`), so
/// the trajectory — and therefore the returned cut — is exactly the one
/// the uncached loop would take.
fn kl_trajectories(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    free_nodes: &[NodeId],
    seed: Option<NodeId>,
    stats: &mut CacheStats,
) -> Cut {
    let n = ctx.node_count();
    let mut best_cut = Cut::empty(n);
    let mut best_merit = 0.0f64;

    for pass in 0..config.max_passes {
        let mut engine = ToggleEngine::from_cut(ctx, best_cut.nodes().clone());
        let mut cache = GainCache::new(n);
        let mut marked = NodeSet::new(n);
        let mut pass_best: Option<Cut> = None;
        let mut pass_best_merit = best_merit;
        let mut forced = if pass == 0 { seed } else { None };

        for _ in 0..free_nodes.len() {
            // Evaluate the gain function for every unmarked node and pick
            // the best; ties break to the lowest node id (determinism).
            let chosen = match forced.take() {
                Some(s) => Some(s),
                None => {
                    let mut chosen: Option<(f64, NodeId)> = None;
                    for &v in free_nodes {
                        if marked.contains(v) {
                            continue;
                        }
                        let g = cache.gain(&engine, &config.weights, io, v);
                        let better = match chosen {
                            None => true,
                            Some((bg, _)) => g > bg,
                        };
                        if better {
                            chosen = Some((g, v));
                        }
                    }
                    chosen.map(|(_, v)| v)
                }
            };
            let Some(v) = chosen else { break };
            cache.commit(&mut engine, v);
            marked.insert(v);
            if engine.is_legal(io) {
                let m = engine.merit();
                if m > pass_best_merit {
                    pass_best_merit = m;
                    pass_best = Some(engine.snapshot());
                }
            }
        }

        stats.absorb(cache.stats());
        match pass_best {
            Some(cut) => {
                best_merit = pass_best_merit;
                best_cut = cut;
            }
            None => break, // no improvement this pass
        }
    }
    best_cut
}

/// Picks up to `restarts − 1` forced first moves, spread across the
/// block: the highest-gain unmarked nodes with pairwise undirected
/// distance ≥ 3, so each restart explores a different region.
fn restart_seeds(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    free_nodes: &[NodeId],
) -> Vec<NodeId> {
    if config.restarts <= 1 {
        return Vec::new();
    }
    let n = ctx.node_count();
    let engine = ToggleEngine::new(ctx);
    let mut scored: Vec<(f64, NodeId)> = free_nodes
        .iter()
        .map(|&v| (gain_of(&engine, ctx, &config.weights, io, v), v))
        .collect();
    // total_cmp, not partial_cmp().unwrap(): gains inherit NaN from
    // user-supplied weights (the daemon accepts arbitrary f64s), and a
    // NaN must sort deterministically, not panic the search.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let dag = ctx.block().dag();
    let mut banned = NodeSet::new(n);
    let mut seeds = Vec::new();
    for (_, v) in scored {
        if seeds.len() + 1 >= config.restarts {
            break;
        }
        if banned.contains(v) {
            continue;
        }
        seeds.push(v);
        // Ban the undirected 2-neighbourhood of the seed.
        let mut frontier = vec![v];
        banned.insert(v);
        for _ in 0..2 {
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in dag.preds(u).iter().chain(dag.succs(u)) {
                    if banned.insert(w) {
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
    }
    seeds
}

/// [`CutFinder`] adapter for the ISEGEN bi-partition, so the generic
/// application driver ([`crate::generate_with`]) can run ISEGEN alongside
/// the baseline algorithms.
#[derive(Debug, Clone, Default)]
pub struct IsegenFinder {
    config: SearchConfig,
}

impl IsegenFinder {
    /// Creates a finder with the given search configuration.
    pub fn new(config: SearchConfig) -> Self {
        IsegenFinder { config }
    }

    /// The search configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }
}

impl CutFinder for IsegenFinder {
    fn find_cut(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
    ) -> Cut {
        bipartition(ctx, io, &self.config, forbidden)
    }

    fn name(&self) -> &str {
        "isegen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_the_whole_cluster() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        assert_eq!(cut.nodes().len(), 3);
        assert_eq!(cut.input_count(), 4);
        assert_eq!(cut.output_count(), 1);
        assert!(ctx.is_convex(cut.nodes()));
        assert!(cut.merit() > 0.0);
    }

    #[test]
    fn respects_io_constraints() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        for (i, o) in [(2u32, 1u32), (3, 1), (4, 1), (4, 2)] {
            let io = IoConstraints::new(i, o);
            let cut = bipartition(&ctx, io, &SearchConfig::default(), None);
            assert!(
                cut.is_empty() || cut.satisfies_io(io),
                "cut {:?} violates {io}",
                cut
            );
            if !cut.is_empty() {
                assert!(ctx.is_convex(cut.nodes()), "cut must be convex under {io}");
            }
        }
    }

    #[test]
    fn respects_forbidden_nodes() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let forbidden = NodeSet::from_ids(7, [ids[6]]); // the add
        let cut = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            Some(&forbidden),
        );
        assert!(!cut.nodes().contains(ids[6]));
        assert!(!cut.is_empty(), "the muls alone still form a cut");
    }

    #[test]
    fn all_forbidden_yields_empty() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            Some(ctx.eligible()),
        );
        assert!(cut.is_empty());
    }

    #[test]
    fn deterministic() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let a = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        let b = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn adversarial_weights_do_not_panic() {
        // A service request may carry arbitrary f64 weights; NaN gains
        // used to panic the seed sort (partial_cmp().unwrap()). Every
        // pathological flavour must complete and return *some* cut.
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let poisoned = [
            GainWeights {
                merit: f64::NAN,
                io_penalty: f64::NAN,
                affinity: f64::NAN,
                growth: f64::NAN,
                independence: f64::NAN,
            },
            GainWeights {
                merit: f64::INFINITY,
                io_penalty: f64::NEG_INFINITY,
                affinity: f64::NAN,
                growth: 0.0,
                independence: -0.0,
            },
            GainWeights {
                merit: f64::MAX,
                io_penalty: f64::MIN_POSITIVE,
                affinity: -f64::MAX,
                growth: f64::NAN,
                independence: f64::INFINITY,
            },
        ];
        for weights in poisoned {
            let config = SearchConfig {
                weights,
                ..SearchConfig::default()
            };
            let cut = bipartition(&ctx, IoConstraints::new(4, 2), &config, None);
            // Whatever the search found must still be architecturally
            // legal — the guard rails hold even under junk weights.
            assert!(cut.is_empty() || cut.satisfies_io(IoConstraints::new(4, 2)));
            if !cut.is_empty() {
                assert!(ctx.is_convex(cut.nodes()));
            }
        }
    }

    #[test]
    fn single_pass_config() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let config = SearchConfig {
            max_passes: 1,
            ..SearchConfig::default()
        };
        let cut = bipartition(&ctx, IoConstraints::new(4, 2), &config, None);
        assert!(!cut.is_empty());
    }
}
