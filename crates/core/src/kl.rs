use crate::cache::{CacheStats, GainCache};
use crate::driver::{deal_indexed, CutFinder};
use crate::engine::EngineArena;
use crate::gain::gain_of;
use crate::{BlockContext, Cut, GainWeights, IoConstraints, ToggleEngine};
use isegen_graph::{NodeId, NodeSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Knobs of the modified Kernighan–Lin search (paper Fig. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchConfig {
    /// Maximum number of improvement passes. The paper found
    /// experimentally that 5 passes suffice; the loop also exits early
    /// when a pass fails to improve the best cut.
    pub max_passes: usize,
    /// Gain-function weights (paper §4.2).
    pub weights: GainWeights,
    /// Number of diversified restarts. A K-L pass follows one greedy
    /// toggle trajectory; on blocks with several distant high-merit
    /// regions a single trajectory can settle in the wrong basin. Each
    /// restart forces the first toggle onto the best-gain node of a
    /// *different* region (seeds are kept ≥ 3 edges apart), and the best
    /// cut across restarts wins. Deterministic. `1` reproduces the
    /// paper's single-trajectory algorithm exactly.
    pub restarts: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_passes: 5,
            weights: GainWeights::default(),
            restarts: 3,
        }
    }
}

/// A reusable per-worker search arena: every buffer a K-L trajectory
/// needs — the [`ToggleEngine`] node sets, the [`GainCache`] entry
/// table, the mark set and the pass-best snapshot buffer — pooled so
/// that trajectory setup is a reset, not an allocation.
///
/// One scratch serves one worker thread; it is reset between
/// trajectories and between *blocks* (buffers resize to each block,
/// allocation-free once the scratch has seen a block at least as
/// large). [`IsegenFinder`] keeps a pool of these across `find_cut`
/// calls, so a long-lived service searches with warm arenas.
#[derive(Debug, Default)]
pub struct SearchScratch {
    arena: EngineArena,
    cache: GainCache,
    marked: NodeSet,
    best_nodes: NodeSet,
    warm: bool,
}

impl SearchScratch {
    /// A cold scratch; the first trajectory builds its buffers.
    pub fn new() -> Self {
        SearchScratch::default()
    }
}

/// Timing and outcome of one portfolio trajectory, reported by
/// [`bipartition_profiled`] — the per-trajectory evidence of the perf
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryReport {
    /// Gain flavour: `"base"` (configured weights) or `"cohesive"`
    /// (double affinity).
    pub flavour: &'static str,
    /// Forced first toggle (restart diversification), if any.
    pub seed: Option<NodeId>,
    /// Wall time of the trajectory, in milliseconds.
    pub wall_ms: f64,
    /// Merit of the trajectory's best cut.
    pub merit: f64,
    /// Probe statistics of this trajectory alone.
    pub stats: CacheStats,
}

/// One entry of the search portfolio: a gain flavour plus an optional
/// forced first toggle. The spec list is built in the exact order the
/// historical sequential scan visited, so the merge is reproducible.
struct TrajectorySpec<'s> {
    config: &'s SearchConfig,
    flavour: &'static str,
    seed: Option<NodeId>,
}

/// Runs one ISEGEN bi-partition of a basic block (paper Fig. 2): finds the
/// best legal cut reachable by iterative improvement from the all-software
/// configuration, honouring `io` constraints and never touching nodes in
/// `forbidden` (e.g. nodes already claimed by earlier ISEs).
///
/// Returns the best cut found; the cut is empty when no legal cut with
/// positive merit exists (e.g. everything is forbidden).
///
/// The algorithm, following the paper:
///
/// 1. `BC` ← all-software (empty cut).
/// 2. Up to [`SearchConfig::max_passes`] times: starting from `BC`,
///    repeatedly evaluate the gain function for every unmarked node,
///    toggle the best node S↔H and mark it — intermediate cuts may
///    violate constraints ("we allow a cut to be illegal giving it an
///    opportunity to eventually grow into a valid cut") — while tracking
///    the best *legal* cut seen in the pass.
/// 3. If the pass improved on `BC`, commit and iterate; otherwise stop.
pub fn bipartition(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
) -> Cut {
    bipartition_with_stats(ctx, io, config, forbidden).0
}

/// [`bipartition`], additionally returning the gain-cache probe
/// statistics of the whole search (all weight flavours and restarts) —
/// the "probes avoided" number of the perf trajectory.
pub fn bipartition_with_stats(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
) -> (Cut, CacheStats) {
    let mut pool = Vec::new();
    let (cut, stats, _) = bipartition_profiled(ctx, io, config, forbidden, 1, &mut pool);
    (cut, stats)
}

/// [`bipartition`] with its weight-flavour × restart portfolio fanned
/// out over up to `threads` scoped threads. The output is
/// **byte-identical** to the sequential search at every thread count:
/// trajectories are independent (each starts from the all-software
/// configuration), and the merge scans them in the fixed portfolio
/// order with the same strict-improvement tie-break the sequential loop
/// applies (`tests/portfolio_parity.rs`).
pub fn bipartition_portfolio(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
    threads: usize,
) -> Cut {
    let mut pool = Vec::new();
    bipartition_profiled(ctx, io, config, forbidden, threads, &mut pool).0
}

/// The full-fat entry point under [`bipartition`] and friends: portfolio
/// search on up to `threads` threads, drawing per-worker
/// [`SearchScratch`] arenas from `pool` (grown to the worker count on
/// demand; pass the same pool again to search with warm arenas), and
/// reporting per-trajectory wall times alongside the merged statistics.
pub fn bipartition_profiled(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
    threads: usize,
    pool: &mut Vec<SearchScratch>,
) -> (Cut, CacheStats, Vec<TrajectoryReport>) {
    let n = ctx.node_count();
    let mut stats = CacheStats::default();
    // Nodes the search may toggle: eligible and not forbidden.
    let mut free = ctx.eligible().clone();
    if let Some(f) = forbidden {
        free.subtract(f);
    }
    if free.is_empty() {
        return (Cut::empty(n), stats, Vec::new());
    }
    let free_nodes: Vec<NodeId> = free.iter().collect();

    // Two gain flavours per trajectory: the configured weights, and a
    // cohesion-boosted variant (double affinity). Low affinity finds the
    // best *independent-subgraph* cuts (fbital-style min/max pairs);
    // high affinity tracks deep *connected* clusters (Viterbi ACS
    // butterflies). The paper tunes one weight set per evaluation; the
    // small portfolio makes the defaults robust across both regimes.
    let cohesive = SearchConfig {
        weights: GainWeights {
            affinity: config.weights.affinity * 2.0,
            ..config.weights
        },
        ..config.clone()
    };
    let mut specs: Vec<TrajectorySpec<'_>> = Vec::new();
    for (cfg, flavour) in [(config, "base"), (&cohesive, "cohesive")] {
        specs.push(TrajectorySpec {
            config: cfg,
            flavour,
            seed: None,
        });
        for seed in restart_seeds(ctx, io, cfg, &free_nodes) {
            specs.push(TrajectorySpec {
                config: cfg,
                flavour,
                seed: Some(seed),
            });
        }
    }

    let results = run_trajectories(ctx, io, &free_nodes, &specs, threads, pool);

    // Deterministic merge: visit the results in spec order and keep the
    // first strict improvement — exactly the comparison sequence of the
    // sequential scan, whatever the thread count. NaN merits (possible
    // under hostile weights) never beat the incumbent, same as before.
    let mut best_cut = Cut::empty(n);
    let mut reports = Vec::with_capacity(results.len());
    for (spec, (cut, traj_stats, wall_ms)) in specs.iter().zip(results) {
        stats.absorb(traj_stats);
        reports.push(TrajectoryReport {
            flavour: spec.flavour,
            seed: spec.seed,
            wall_ms,
            merit: cut.merit(),
            stats: traj_stats,
        });
        if cut.merit() > best_cut.merit() {
            best_cut = cut;
        }
    }
    (best_cut, stats, reports)
}

/// A finished trajectory: its best cut, its probe statistics, and its
/// wall time in milliseconds.
type TrajectoryResult = (Cut, CacheStats, f64);

/// Executes every spec, inline on one scratch when `threads <= 1`, else
/// on scoped worker threads dealing specs from an atomic cursor
/// ([`deal_indexed`]). Results come back in spec order, so scheduling
/// cannot leak into the merge.
fn run_trajectories(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    free_nodes: &[NodeId],
    specs: &[TrajectorySpec<'_>],
    threads: usize,
    pool: &mut Vec<SearchScratch>,
) -> Vec<TrajectoryResult> {
    let workers = threads.max(1).min(specs.len());
    if pool.len() < workers {
        pool.resize_with(workers, SearchScratch::default);
    }
    deal_indexed(specs, &mut pool[..workers], |spec, scratch| {
        run_trajectory(ctx, io, free_nodes, spec, scratch)
    })
}

/// Runs the Fig. 2 pass loop for one portfolio trajectory, optionally
/// forcing the very first toggle onto the spec's seed (restart
/// diversification). All working state lives in `scratch`; the only
/// allocations are the returned [`Cut`] snapshots.
///
/// The sweep is served by a [`GainCache`]: after each committed toggle
/// only the nodes in the engine's dirty set are re-probed; every other
/// gain is recombined from cached local terms in O(1). The cached gains
/// are bit-identical to fresh probes (`tests/gain_cache_prop.rs`), so
/// the trajectory — and therefore the returned cut — is exactly the one
/// the uncached loop would take.
fn run_trajectory(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    free_nodes: &[NodeId],
    spec: &TrajectorySpec<'_>,
    scratch: &mut SearchScratch,
) -> TrajectoryResult {
    let start = Instant::now();
    let n = ctx.node_count();
    let config = spec.config;
    let mut stats = CacheStats {
        trajectories: 1,
        ..CacheStats::default()
    };
    if std::mem::replace(&mut scratch.warm, true) {
        stats.arena_reuses = 1;
    } else {
        stats.arena_allocs = 1;
    }

    let mut best_cut = Cut::empty(n);
    let mut best_merit = 0.0f64;
    let mut engine =
        ToggleEngine::from_cut_in(ctx, best_cut.nodes(), std::mem::take(&mut scratch.arena));
    let cache = &mut scratch.cache;
    let marked = &mut scratch.marked;
    let best_nodes = &mut scratch.best_nodes;

    for pass in 0..config.max_passes {
        if pass > 0 {
            engine.reset_from_cut(best_cut.nodes());
        }
        cache.reset(n);
        marked.reset(n);
        // Scalars of the pass-best snapshot; the nodes live in
        // `best_nodes` (copied, not allocated, on each improvement).
        let mut pass_best: Option<(u32, u32, u64, f64)> = None;
        let mut pass_best_merit = best_merit;
        let mut forced = if pass == 0 { spec.seed } else { None };

        for _ in 0..free_nodes.len() {
            // Evaluate the gain function for every unmarked node and pick
            // the best; ties break to the lowest node id (determinism).
            let chosen = match forced.take() {
                Some(s) => Some(s),
                None => {
                    let mut chosen: Option<(f64, NodeId)> = None;
                    for &v in free_nodes {
                        if marked.contains(v) {
                            continue;
                        }
                        let g = cache.gain(&engine, &config.weights, io, v);
                        let better = match chosen {
                            None => true,
                            Some((bg, _)) => g > bg,
                        };
                        if better {
                            chosen = Some((g, v));
                        }
                    }
                    chosen.map(|(_, v)| v)
                }
            };
            let Some(v) = chosen else { break };
            cache.commit(&mut engine, v);
            marked.insert(v);
            if engine.is_legal(io) {
                let m = engine.merit();
                if m > pass_best_merit {
                    pass_best_merit = m;
                    best_nodes.copy_from(engine.cut());
                    pass_best = Some((
                        engine.input_count(),
                        engine.output_count(),
                        engine.software_latency(),
                        engine.hardware_latency(),
                    ));
                }
            }
        }

        stats.absorb(cache.stats());
        match pass_best {
            Some((inputs, outputs, sw, hw)) => {
                best_merit = pass_best_merit;
                best_cut = Cut::from_parts(best_nodes.clone(), inputs, outputs, sw, hw);
            }
            None => break, // no improvement this pass
        }
    }
    scratch.arena = engine.into_arena();
    (best_cut, stats, start.elapsed().as_secs_f64() * 1e3)
}

/// Picks up to `restarts − 1` forced first moves, spread across the
/// block: the highest-gain unmarked nodes with pairwise undirected
/// distance ≥ 3, so each restart explores a different region.
fn restart_seeds(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    free_nodes: &[NodeId],
) -> Vec<NodeId> {
    if config.restarts <= 1 {
        return Vec::new();
    }
    let n = ctx.node_count();
    let engine = ToggleEngine::new(ctx);
    let mut scored: Vec<(f64, NodeId)> = free_nodes
        .iter()
        .map(|&v| (gain_of(&engine, ctx, &config.weights, io, v), v))
        .collect();
    // total_cmp, not partial_cmp().unwrap(): gains inherit NaN from
    // user-supplied weights (the daemon accepts arbitrary f64s), and a
    // NaN must sort deterministically, not panic the search.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let dag = ctx.block().dag();
    let mut banned = NodeSet::new(n);
    let mut seeds = Vec::new();
    for (_, v) in scored {
        if seeds.len() + 1 >= config.restarts {
            break;
        }
        if banned.contains(v) {
            continue;
        }
        seeds.push(v);
        // Ban the undirected 2-neighbourhood of the seed.
        let mut frontier = vec![v];
        banned.insert(v);
        for _ in 0..2 {
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in dag.preds(u).iter().chain(dag.succs(u)) {
                    if banned.insert(w) {
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
    }
    seeds
}

/// [`CutFinder`] adapter for the ISEGEN bi-partition, so the generic
/// application driver ([`crate::generate_with`]) can run ISEGEN alongside
/// the baseline algorithms.
///
/// The finder owns a pool of [`SearchScratch`] arenas that stays warm
/// across `find_cut` calls (and therefore across blocks), and shares a
/// [`CacheStats`] accumulator with every clone of itself — the batched
/// driver clones one finder per worker, and the accumulated statistics
/// of the whole generation remain readable from the original via
/// [`IsegenFinder::accumulated_stats`].
#[derive(Debug)]
pub struct IsegenFinder {
    config: SearchConfig,
    portfolio_threads: usize,
    pool: Vec<SearchScratch>,
    stats: Arc<Mutex<CacheStats>>,
}

impl Clone for IsegenFinder {
    /// Clones share the stats accumulator but start with a cold arena
    /// pool of their own (arenas are per-thread working memory).
    fn clone(&self) -> Self {
        IsegenFinder {
            config: self.config.clone(),
            portfolio_threads: self.portfolio_threads,
            pool: Vec::new(),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl Default for IsegenFinder {
    fn default() -> Self {
        IsegenFinder::new(SearchConfig::default())
    }
}

impl IsegenFinder {
    /// Creates a finder with the given search configuration.
    pub fn new(config: SearchConfig) -> Self {
        IsegenFinder {
            config,
            portfolio_threads: 1,
            pool: Vec::new(),
            stats: Arc::new(Mutex::new(CacheStats::default())),
        }
    }

    /// Sets the intra-block portfolio thread count used by direct
    /// `find_cut` calls, and the floor for driver-assigned budgets.
    /// `1` (the default) searches each block sequentially.
    pub fn with_portfolio_threads(mut self, threads: usize) -> Self {
        self.portfolio_threads = threads.max(1);
        self
    }

    /// The intra-block portfolio thread count.
    pub fn portfolio_threads(&self) -> usize {
        self.portfolio_threads
    }

    /// The search configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The probe/arena statistics accumulated by every `find_cut` call
    /// on this finder *and all its clones* since construction.
    pub fn accumulated_stats(&self) -> CacheStats {
        self.stats.lock().map(|s| *s).unwrap_or_default()
    }
}

impl CutFinder for IsegenFinder {
    fn find_cut(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
    ) -> Cut {
        self.find_cut_budget(ctx, io, forbidden, 1)
    }

    fn find_cut_budget(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
        threads: usize,
    ) -> Cut {
        let threads = threads.max(self.portfolio_threads);
        let (cut, stats, _) =
            bipartition_profiled(ctx, io, &self.config, forbidden, threads, &mut self.pool);
        if let Ok(mut acc) = self.stats.lock() {
            acc.absorb(stats);
        }
        cut
    }

    fn name(&self) -> &str {
        "isegen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_the_whole_cluster() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        assert_eq!(cut.nodes().len(), 3);
        assert_eq!(cut.input_count(), 4);
        assert_eq!(cut.output_count(), 1);
        assert!(ctx.is_convex(cut.nodes()));
        assert!(cut.merit() > 0.0);
    }

    #[test]
    fn respects_io_constraints() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        for (i, o) in [(2u32, 1u32), (3, 1), (4, 1), (4, 2)] {
            let io = IoConstraints::new(i, o);
            let cut = bipartition(&ctx, io, &SearchConfig::default(), None);
            assert!(
                cut.is_empty() || cut.satisfies_io(io),
                "cut {:?} violates {io}",
                cut
            );
            if !cut.is_empty() {
                assert!(ctx.is_convex(cut.nodes()), "cut must be convex under {io}");
            }
        }
    }

    #[test]
    fn respects_forbidden_nodes() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let forbidden = NodeSet::from_ids(7, [ids[6]]); // the add
        let cut = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            Some(&forbidden),
        );
        assert!(!cut.nodes().contains(ids[6]));
        assert!(!cut.is_empty(), "the muls alone still form a cut");
    }

    #[test]
    fn all_forbidden_yields_empty() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            Some(ctx.eligible()),
        );
        assert!(cut.is_empty());
    }

    #[test]
    fn deterministic() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let a = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        let b = bipartition(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn adversarial_weights_do_not_panic() {
        // A service request may carry arbitrary f64 weights; NaN gains
        // used to panic the seed sort (partial_cmp().unwrap()). Every
        // pathological flavour must complete and return *some* cut.
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let poisoned = [
            GainWeights {
                merit: f64::NAN,
                io_penalty: f64::NAN,
                affinity: f64::NAN,
                growth: f64::NAN,
                independence: f64::NAN,
            },
            GainWeights {
                merit: f64::INFINITY,
                io_penalty: f64::NEG_INFINITY,
                affinity: f64::NAN,
                growth: 0.0,
                independence: -0.0,
            },
            GainWeights {
                merit: f64::MAX,
                io_penalty: f64::MIN_POSITIVE,
                affinity: -f64::MAX,
                growth: f64::NAN,
                independence: f64::INFINITY,
            },
        ];
        for weights in poisoned {
            let config = SearchConfig {
                weights,
                ..SearchConfig::default()
            };
            let cut = bipartition(&ctx, IoConstraints::new(4, 2), &config, None);
            // Whatever the search found must still be architecturally
            // legal — the guard rails hold even under junk weights.
            assert!(cut.is_empty() || cut.satisfies_io(IoConstraints::new(4, 2)));
            if !cut.is_empty() {
                assert!(ctx.is_convex(cut.nodes()));
            }
        }
    }

    #[test]
    fn single_pass_config() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let config = SearchConfig {
            max_passes: 1,
            ..SearchConfig::default()
        };
        let cut = bipartition(&ctx, IoConstraints::new(4, 2), &config, None);
        assert!(!cut.is_empty());
    }
}
