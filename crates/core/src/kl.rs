use crate::cache::{CacheStats, EnteringTerms, GainCache};
use crate::coarsen::{multilevel_search, MultilevelConfig, MultilevelReport};
use crate::driver::{deal_indexed, CutFinder};
use crate::engine::EngineArena;
use crate::gain::gain_of;
use crate::{BlockContext, Cut, GainWeights, IoConstraints, ToggleEngine};
use isegen_graph::{NodeId, NodeSet};
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How the K-L inner loop picks the max-gain candidate before each
/// commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SelectionStrategy {
    /// Lazy-decrease max-gain priority queue: candidates are keyed on
    /// frame-free cached terms, popped entries are re-validated against
    /// the exact [`GainCache`] gain, and the toggle engine's dirty set
    /// drives targeted reinsertion — a commit costs O(dirty · log n)
    /// instead of O(free). Selection is bit-identical to
    /// [`SelectionStrategy::Scan`]; under non-finite gains (hostile
    /// weights) it falls back to the scan automatically.
    #[default]
    Queue,
    /// The reference per-commit full scan over every unmarked candidate
    /// — O(free) per commit. Retained as the semantic baseline the
    /// queue is property-tested against (`tests/queue_parity.rs`).
    Scan,
}

/// Knobs of the modified Kernighan–Lin search (paper Fig. 2).
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`SearchConfig::default`] (or [`SearchConfig::new`]) and the
/// `with_*` setters, so future knobs (e.g. a multi-level coarsening
/// pass) never break callers.
///
/// ```
/// use isegen_core::SearchConfig;
/// let config = SearchConfig::new().with_max_passes(3).with_restarts(1);
/// assert_eq!(config.max_passes, 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SearchConfig {
    /// Maximum number of improvement passes. The paper found
    /// experimentally that 5 passes suffice; the loop also exits early
    /// when a pass fails to improve the best cut.
    pub max_passes: usize,
    /// Gain-function weights (paper §4.2).
    pub weights: GainWeights,
    /// Number of diversified restarts. A K-L pass follows one greedy
    /// toggle trajectory; on blocks with several distant high-merit
    /// regions a single trajectory can settle in the wrong basin. Each
    /// restart forces the first toggle onto the best-gain node of a
    /// *different* region (seeds are kept ≥ 3 edges apart), and the best
    /// cut across restarts wins. Deterministic. `1` reproduces the
    /// paper's single-trajectory algorithm exactly.
    pub restarts: usize,
    /// Candidate-selection strategy of the inner loop. Both strategies
    /// produce bit-identical cuts; [`SelectionStrategy::Queue`] (the
    /// default) is asymptotically faster on large blocks.
    pub strategy: SelectionStrategy,
    /// Invariant-audit cadence: every `audit_cadence`-th committed
    /// toggle, re-derive the engine, gain-cache and queue state from
    /// scratch and panic with a structured [`crate::AuditReport`] on any
    /// divergence. `0` (the default) disables auditing; the
    /// `IsegenAudit` environment variable supplies a process-wide
    /// fallback cadence when this field is `0`.
    pub audit_cadence: usize,
    /// Multilevel coarsen→search→uncoarsen pipeline for huge blocks:
    /// when set, a block whose free (searchable) node count exceeds
    /// [`MultilevelConfig::min_coarse_ops`] is coarsened into a
    /// hierarchy of supernode quotients, searched at the coarsest
    /// level, and refined level by level from the projected cut
    /// (see [`crate::coarsen`] docs). `None` (the default) always runs
    /// the single-level search; blocks at or below the threshold run
    /// the single-level search bit for bit even when this is set.
    pub multilevel: Option<MultilevelConfig>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            max_passes: 5,
            weights: GainWeights::default(),
            restarts: 3,
            strategy: SelectionStrategy::default(),
            audit_cadence: 0,
            multilevel: None,
        }
    }
}

impl SearchConfig {
    /// Alias of [`SearchConfig::default`], reading better at the head of
    /// a builder chain.
    pub fn new() -> Self {
        SearchConfig::default()
    }

    /// Sets the maximum number of improvement passes.
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        self.max_passes = max_passes;
        self
    }

    /// Sets the gain-function weights.
    pub fn with_weights(mut self, weights: GainWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the number of diversified restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Sets the candidate-selection strategy.
    pub fn with_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the invariant-audit cadence (`0` disables; see
    /// [`SearchConfig::audit_cadence`]).
    pub fn with_audit_cadence(mut self, audit_cadence: usize) -> Self {
        self.audit_cadence = audit_cadence;
        self
    }

    /// Enables the multilevel coarsen→search→uncoarsen pipeline for
    /// blocks above [`MultilevelConfig::min_coarse_ops`] free nodes
    /// (see [`SearchConfig::multilevel`]).
    pub fn with_multilevel(mut self, multilevel: MultilevelConfig) -> Self {
        self.multilevel = Some(multilevel);
        self
    }
}

/// A reusable per-worker search arena: every buffer a K-L trajectory
/// needs — the [`ToggleEngine`] node sets, the [`GainCache`] entry
/// table, the mark set and the pass-best snapshot buffer — pooled so
/// that trajectory setup is a reset, not an allocation.
///
/// One scratch serves one worker thread; it is reset between
/// trajectories and between *blocks* (buffers resize to each block,
/// allocation-free once the scratch has seen a block at least as
/// large). [`IsegenFinder`] keeps a pool of these across `find_cut`
/// calls, so a long-lived service searches with warm arenas.
#[derive(Debug, Default)]
pub struct SearchScratch {
    arena: EngineArena,
    cache: GainCache,
    marked: NodeSet,
    best_nodes: NodeSet,
    /// Lazy max-gain queue over the entering candidates of the pass,
    /// keyed by the frame-free *base* key (I/O-linearised violation +
    /// affinity + growth; no merit) — the exact gain ordering whenever
    /// the convexity gate is closed.
    heap_base: BinaryHeap<QueueEntry>,
    /// The cone-locally-convex candidates again, keyed base +
    /// `w_merit · sw(v)` — consulted alongside `heap_base` whenever the
    /// gate is open, with the latency frame applied as a per-step
    /// offset.
    heap_merit: BinaryHeap<QueueEntry>,
    /// Per-node insertion stamps; a popped entry whose stamp is behind
    /// the node's current stamp has been superseded and is discarded.
    /// One stamp covers a node's entries in *both* heaps.
    stamps: Vec<u32>,
    /// Dirty delta of the latest commit ([`GainCache::commit_tracked`]).
    touched: NodeSet,
    /// The cut at pass start; unmarked candidates never change side
    /// within a pass, so this splits them into entering vs. leaving.
    start_cut: NodeSet,
    /// Free leaving candidates of the pass (pass-start cut ∩ free).
    leave_list: Vec<NodeId>,
    /// Popped-but-losing entries `(key, node, from_merit_heap)` restored
    /// verbatim to their heap at step end (their keys are frame-free, so
    /// a losing pop never re-keys anything).
    requeue: Vec<(f64, u32, bool)>,
    warm: bool,
}

impl SearchScratch {
    /// A cold scratch; the first trajectory builds its buffers.
    pub fn new() -> Self {
        SearchScratch::default()
    }
}

/// One lazy-queue entry. `key` is *frame-free*: it folds only the
/// node's cached per-node terms ([`EnteringTerms`]), never a global
/// count or latency — those enter as exact per-step offsets at pop
/// time ([`StepFrame`]). A key therefore goes stale only when its
/// node's cache entry changes, and every such node is re-keyed by the
/// commit that dirtied it. Max-heap order is key-descending with ties
/// to the **lowest** node id, mirroring the scan's tie-break.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    key: f64,
    node: u32,
    stamp: u32,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The frame-free heap keys of one entering candidate, built from its
/// cached [`EnteringTerms`]:
///
/// * `base` — `−w_io·(ΔI+ΔO) + w_a·N(v,C) + w_g·growth(v)`: the gain
///   with the violation hinges *linearised* and every global count
///   stripped into the step offset. Since `(x)⁺ ≥ x`, the linearised
///   violation never exceeds the true one, so `base + offset` bounds
///   the true gate-closed gain from above — and equals it exactly once
///   the cut is at least [`HingeSlack`] ports into violation.
/// * `merit` — `base + w_m·sw(v)`, for cone-locally-convex candidates
///   only: the gate-open gain with `max(HW, through(v))` relaxed to
///   `HW`, again an upper bound whose slack [`HingeSlack`] closes.
///
/// Requires `w_io ≥ 0` and `w_m ≥ 0` (checked once per trajectory by
/// [`queue_weights_ok`]); the per-node-signed terms fold into the key.
fn entering_keys(
    weights: &GainWeights,
    growth: f64,
    sw: u64,
    t: &EnteringTerms,
) -> (f64, Option<f64>) {
    let base = -(weights.io_penalty * (t.di + t.dout) as f64)
        + weights.affinity * t.neighbors_in_cut as f64
        + weights.growth * growth;
    let merit = t.local_convex.then_some(base + weights.merit * sw as f64);
    (base, merit)
}

/// The per-step global frame: exact offsets that turn a frame-free key
/// into an upper bound on the candidate's true gain, recomputed from
/// live engine globals at every selection (so keys never drift).
///
/// For a key `κ` the bound is `κ + off + slack`: `off` restores the
/// linearised global contribution and `slack` covers the hinge
/// nonlinearities ([`HingeSlack`]) plus a rounding margin scaled to the
/// magnitudes involved (the true gain is recombined in a different
/// association order, so bit-equality cannot be assumed — but the
/// relative error is ulps, far below the `1e-13` margin).
#[derive(Debug, Clone, Copy)]
struct StepFrame {
    /// `−w_io·((I−N_in) + (O−N_out))` — the linearised violation frame.
    off_base: f64,
    /// `off_base + w_m·(SW − HW)` — the merit heap's frame.
    off_merit: f64,
    /// Hinge slack of the base keys: `w_io·((N_in−I+D)⁺ + (N_out−O+A)⁺)`.
    slack_base: f64,
    /// `slack_base + w_m·(T−HW)⁺` — adds the merit hinge slack.
    slack_merit: f64,
}

impl StepFrame {
    fn new(
        engine: &ToggleEngine<'_, '_>,
        weights: &GainWeights,
        io: IoConstraints,
        hinges: &HingeSlack,
    ) -> StepFrame {
        let i = f64::from(engine.input_count());
        let o = f64::from(engine.output_count());
        let nin = f64::from(io.max_inputs());
        let nout = f64::from(io.max_outputs());
        let off_base = -(weights.io_penalty * ((i - nin) + (o - nout)));
        let slack_base = weights.io_penalty
            * ((nin - i + hinges.din).max(0.0) + (nout - o + hinges.dout).max(0.0));
        let sw = engine.software_latency() as f64;
        let hw = engine.hardware_latency();
        let off_merit = off_base + weights.merit * (sw - hw);
        let slack_merit = slack_base + weights.merit * (hinges.through - hw).max(0.0);
        StepFrame {
            off_base,
            off_merit,
            slack_base,
            slack_merit,
        }
    }

    /// Upper bound on the true gain of a key from the given heap.
    fn bound(&self, key: f64, merit_heap: bool) -> f64 {
        let (off, slack) = if merit_heap {
            (self.off_merit, self.slack_merit)
        } else {
            (self.off_base, self.slack_base)
        };
        let b = key + off + slack;
        b + (1.0 + key.abs() + off.abs()) * 1e-13
    }
}

/// Running maxima over every candidate keyed so far, closing the
/// one-sided gaps between the linearised keys and the true hinged
/// terms: `din = max(−ΔI)⁺`, `dout = max(−ΔO)⁺` (how far below the
/// global count a candidate's post-toggle I/O can sit) and `through`
/// (the tallest cached through-path). Maxima only grow, so they stay
/// conservative for every live entry.
#[derive(Debug, Clone, Copy)]
struct HingeSlack {
    din: f64,
    dout: f64,
    through: f64,
}

impl HingeSlack {
    fn new() -> HingeSlack {
        HingeSlack {
            din: 0.0,
            dout: 0.0,
            through: 0.0,
        }
    }

    fn absorb(&mut self, t: &EnteringTerms) {
        self.din = self.din.max(f64::from(-t.di));
        self.dout = self.dout.max(f64::from(-t.dout));
        self.through = self.through.max(t.through);
    }
}

/// The queue path needs finite weights (NaN/∞ poison every bound) and
/// non-negative violation/merit weights: the upper-bound direction of
/// the linearised keys leans on `(x)⁺ ≥ x` entering the gain with a
/// non-positive sign. Anything else falls back to the reference scan.
fn queue_weights_ok(w: &GainWeights) -> bool {
    w.merit.is_finite()
        && w.io_penalty.is_finite()
        && w.affinity.is_finite()
        && w.growth.is_finite()
        && w.independence.is_finite()
        && w.io_penalty >= 0.0
        && w.merit >= 0.0
}

/// The reference selection: evaluate the gain of every unmarked free
/// node and keep the best, ties to the lowest node id. This is the
/// paper's literal inner loop; the queue path must match it toggle for
/// toggle (`tests/queue_parity.rs`) and falls back to it on NaN gains.
fn scan_select(
    cache: &mut GainCache,
    engine: &ToggleEngine<'_, '_>,
    weights: &GainWeights,
    io: IoConstraints,
    free_nodes: &[NodeId],
    marked: &NodeSet,
) -> Option<NodeId> {
    let mut chosen: Option<(f64, NodeId)> = None;
    for &v in free_nodes {
        if marked.contains(v) {
            continue;
        }
        let g = cache.gain(engine, weights, io, v);
        let better = match chosen {
            None => true,
            Some((bg, _)) => g > bg,
        };
        if better {
            chosen = Some((g, v));
        }
    }
    chosen.map(|(_, v)| v)
}

/// Timing and outcome of one portfolio trajectory, reported by
/// [`bipartition_profiled`] — the per-trajectory evidence of the perf
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryReport {
    /// Gain flavour: `"base"` (configured weights) or `"cohesive"`
    /// (double affinity).
    pub flavour: &'static str,
    /// Forced first toggle (restart diversification), if any.
    pub seed: Option<NodeId>,
    /// Wall time of the trajectory, in milliseconds.
    pub wall_ms: f64,
    /// Merit of the trajectory's best cut.
    pub merit: f64,
    /// Probe statistics of this trajectory alone.
    pub stats: CacheStats,
}

/// One entry of the search portfolio: a gain flavour plus an optional
/// forced first toggle and an optional starting cut (multilevel
/// refinement seeds the trajectory from a projected coarse cut instead
/// of the all-software configuration). The spec list is built in the
/// exact order the historical sequential scan visited, so the merge is
/// reproducible.
struct TrajectorySpec<'s> {
    config: &'s SearchConfig,
    flavour: &'static str,
    seed: Option<NodeId>,
    start: Option<&'s NodeSet>,
}

/// Everything one [`Search`] run produced: the best cut, the merged
/// probe/queue statistics of the whole portfolio, and — when the search
/// ran profiled — one report per trajectory.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SearchOutcome {
    /// The best legal cut found; empty when no legal cut with positive
    /// merit exists (e.g. everything is forbidden).
    pub cut: Cut,
    /// Gain-cache probe and queue statistics merged over every
    /// trajectory (all weight flavours and restarts).
    pub stats: CacheStats,
    /// Per-trajectory wall times and statistics; empty unless the
    /// search was built with [`Search::profiled`].
    pub reports: Vec<TrajectoryReport>,
    /// Per-level V-cycle evidence when the multilevel pipeline actually
    /// ran (the block exceeded [`MultilevelConfig::min_coarse_ops`] free
    /// nodes under a [`SearchConfig::with_multilevel`] config); `None`
    /// for single-level searches.
    pub multilevel: Option<MultilevelReport>,
}

/// One ISEGEN bi-partition of a basic block (paper Fig. 2), builder
/// style: finds the best legal cut reachable by iterative improvement
/// from the all-software configuration.
///
/// ```no_run
/// # use isegen_core::{BlockContext, IoConstraints, Search, SearchConfig};
/// # fn demo(ctx: &BlockContext<'_>) {
/// let outcome = Search::new(SearchConfig::default())
///     .threads(4)
///     .run(ctx, IoConstraints::new(4, 2));
/// println!("merit {}", outcome.cut.merit());
/// # }
/// ```
///
/// The algorithm, following the paper:
///
/// 1. `BC` ← all-software (empty cut).
/// 2. Up to [`SearchConfig::max_passes`] times: starting from `BC`,
///    repeatedly evaluate the gain function for every unmarked node,
///    toggle the best node S↔H and mark it — intermediate cuts may
///    violate constraints ("we allow a cut to be illegal giving it an
///    opportunity to eventually grow into a valid cut") — while tracking
///    the best *legal* cut seen in the pass.
/// 3. If the pass improved on `BC`, commit and iterate; otherwise stop.
///
/// With `threads > 1` the weight-flavour × restart portfolio fans out
/// over scoped threads; the output is **byte-identical** to the
/// sequential search at every thread count (trajectories are
/// independent, and the merge scans them in the fixed portfolio order
/// with the sequential strict-improvement tie-break —
/// `tests/portfolio_parity.rs`).
#[derive(Debug, Clone, Default)]
pub struct Search {
    config: SearchConfig,
    threads: usize,
    forbidden: Option<NodeSet>,
    profile: bool,
}

impl Search {
    /// A sequential, unprofiled search with the given configuration.
    pub fn new(config: SearchConfig) -> Self {
        Search {
            config,
            threads: 1,
            forbidden: None,
            profile: false,
        }
    }

    /// Fans the trajectory portfolio out over up to `threads` scoped
    /// threads (`0` is treated as `1`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Forbids a set of nodes from entering the cut (e.g. nodes already
    /// claimed by earlier ISEs). The set is cloned into the builder.
    pub fn forbidden(mut self, forbidden: &NodeSet) -> Self {
        self.forbidden = Some(forbidden.clone());
        self
    }

    /// Collects per-trajectory reports into
    /// [`SearchOutcome::reports`] (off by default — the reports allocate).
    pub fn profiled(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// The search configuration this builder runs with.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the search with a throwaway scratch pool.
    pub fn run(&self, ctx: &BlockContext<'_>, io: IoConstraints) -> SearchOutcome {
        let mut pool = Vec::new();
        self.run_pooled(ctx, io, &mut pool)
    }

    /// Runs the search drawing per-worker [`SearchScratch`] arenas from
    /// `pool` (grown to the worker count on demand); pass the same pool
    /// again to search with warm arenas.
    pub fn run_pooled(
        &self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        pool: &mut Vec<SearchScratch>,
    ) -> SearchOutcome {
        let (cut, stats, reports, multilevel) = search_impl(
            ctx,
            io,
            &self.config,
            self.forbidden.as_ref(),
            self.threads.max(1),
            pool,
        );
        SearchOutcome {
            cut,
            stats,
            reports: if self.profile { reports } else { Vec::new() },
            multilevel,
        }
    }
}

/// See [`Search`] — this shim returns `Search::new(config).run(..).cut`.
#[deprecated(note = "use `Search::new(config).run(ctx, io).cut`")]
pub fn bipartition(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
) -> Cut {
    let mut pool = Vec::new();
    search_impl(ctx, io, config, forbidden, 1, &mut pool).0
}

/// See [`Search`] — the outcome carries the statistics as
/// [`SearchOutcome::stats`].
#[deprecated(note = "use `Search::new(config).run(ctx, io)` and read `.cut` / `.stats`")]
pub fn bipartition_with_stats(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
) -> (Cut, CacheStats) {
    let mut pool = Vec::new();
    let (cut, stats, _, _) = search_impl(ctx, io, config, forbidden, 1, &mut pool);
    (cut, stats)
}

/// See [`Search`] — thread fan-out is the [`Search::threads`] knob.
#[deprecated(note = "use `Search::new(config).threads(threads).run(ctx, io).cut`")]
pub fn bipartition_portfolio(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
    threads: usize,
) -> Cut {
    let mut pool = Vec::new();
    search_impl(ctx, io, config, forbidden, threads, &mut pool).0
}

/// See [`Search`] — profiling is the [`Search::profiled`] knob and the
/// warm pool is [`Search::run_pooled`].
#[deprecated(
    note = "use `Search::new(config).threads(threads).profiled(true).run_pooled(ctx, io, pool)`"
)]
pub fn bipartition_profiled(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
    threads: usize,
    pool: &mut Vec<SearchScratch>,
) -> (Cut, CacheStats, Vec<TrajectoryReport>) {
    let (cut, stats, reports, _) = search_impl(ctx, io, config, forbidden, threads, pool);
    (cut, stats, reports)
}

/// The engine under [`Search`] and the deprecated `bipartition*` shims:
/// computes the free set, dispatches oversized blocks to the multilevel
/// pipeline when one is configured, and otherwise runs the single-level
/// portfolio. Blocks at or below the multilevel threshold take the exact
/// single-level code path, so enabling multilevel is a no-op for them.
fn search_impl(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
    threads: usize,
    pool: &mut Vec<SearchScratch>,
) -> (
    Cut,
    CacheStats,
    Vec<TrajectoryReport>,
    Option<MultilevelReport>,
) {
    let n = ctx.node_count();
    // Nodes the search may toggle: eligible and not forbidden.
    let mut free = ctx.eligible().clone();
    if let Some(f) = forbidden {
        free.subtract(f);
    }
    if free.is_empty() {
        return (Cut::empty(n), CacheStats::default(), Vec::new(), None);
    }
    if let Some(ml) = config.multilevel {
        if free.len() > ml.min_coarse_ops.max(1) {
            return multilevel_search(ctx, io, config, &ml, &free, threads, pool);
        }
    }
    let (cut, stats, reports) = portfolio_search(ctx, io, config, &free, threads, pool, None);
    (cut, stats, reports, None)
}

/// One single-level portfolio run over an explicit free set: the weight
/// flavours (± restart seeds) fan out, and the results merge in spec
/// order. With `start` set (multilevel refinement), every trajectory is
/// seeded from that cut and restart diversification is skipped — the
/// projected cut already places the trajectory in the right basin.
pub(crate) fn portfolio_search(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    free: &NodeSet,
    threads: usize,
    pool: &mut Vec<SearchScratch>,
    start: Option<&NodeSet>,
) -> (Cut, CacheStats, Vec<TrajectoryReport>) {
    let n = ctx.node_count();
    let mut stats = CacheStats::default();
    if free.is_empty() {
        return (Cut::empty(n), stats, Vec::new());
    }
    let free_nodes: Vec<NodeId> = free.iter().collect();

    // Two gain flavours per trajectory: the configured weights, and a
    // cohesion-boosted variant (double affinity). Low affinity finds the
    // best *independent-subgraph* cuts (fbital-style min/max pairs);
    // high affinity tracks deep *connected* clusters (Viterbi ACS
    // butterflies). The paper tunes one weight set per evaluation; the
    // small portfolio makes the defaults robust across both regimes.
    let cohesive = SearchConfig {
        weights: GainWeights {
            affinity: config.weights.affinity * 2.0,
            ..config.weights
        },
        ..config.clone()
    };
    let mut specs: Vec<TrajectorySpec<'_>> = Vec::new();
    for (cfg, flavour) in [(config, "base"), (&cohesive, "cohesive")] {
        specs.push(TrajectorySpec {
            config: cfg,
            flavour,
            seed: None,
            start,
        });
        if start.is_none() {
            for seed in restart_seeds(ctx, io, cfg, &free_nodes) {
                specs.push(TrajectorySpec {
                    config: cfg,
                    flavour,
                    seed: Some(seed),
                    start: None,
                });
            }
        }
    }

    let results = run_trajectories(ctx, io, free, &free_nodes, &specs, threads, pool);

    // Deterministic merge: visit the results in spec order and keep the
    // first strict improvement — exactly the comparison sequence of the
    // sequential scan, whatever the thread count. NaN merits (possible
    // under hostile weights) never beat the incumbent, same as before.
    let mut best_cut = Cut::empty(n);
    let mut reports = Vec::with_capacity(results.len());
    for (spec, (cut, traj_stats, wall_ms)) in specs.iter().zip(results) {
        stats.absorb(traj_stats);
        reports.push(TrajectoryReport {
            flavour: spec.flavour,
            seed: spec.seed,
            wall_ms,
            merit: cut.merit(),
            stats: traj_stats,
        });
        if cut.merit() > best_cut.merit() {
            best_cut = cut;
        }
    }
    (best_cut, stats, reports)
}

/// A finished trajectory: its best cut, its probe statistics, and its
/// wall time in milliseconds.
type TrajectoryResult = (Cut, CacheStats, f64);

/// Executes every spec, inline on one scratch when `threads <= 1`, else
/// on scoped worker threads dealing specs from an atomic cursor
/// ([`deal_indexed`]). Results come back in spec order, so scheduling
/// cannot leak into the merge.
fn run_trajectories(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    free: &NodeSet,
    free_nodes: &[NodeId],
    specs: &[TrajectorySpec<'_>],
    threads: usize,
    pool: &mut Vec<SearchScratch>,
) -> Vec<TrajectoryResult> {
    let workers = threads.max(1).min(specs.len());
    if pool.len() < workers {
        pool.resize_with(workers, SearchScratch::default);
    }
    deal_indexed(specs, &mut pool[..workers], |spec, scratch| {
        run_trajectory(ctx, io, free, free_nodes, spec, scratch, None)
    })
}

/// Runs the Fig. 2 pass loop for one portfolio trajectory, optionally
/// forcing the very first toggle onto the spec's seed (restart
/// diversification). All working state lives in `scratch`; the only
/// allocations are the returned [`Cut`] snapshots.
///
/// The sweep is served by a [`GainCache`]: after each committed toggle
/// only the nodes in the engine's dirty set are re-probed; every other
/// gain is recombined from cached local terms in O(1). The cached gains
/// are bit-identical to fresh probes (`tests/gain_cache_prop.rs`).
///
/// Under [`SelectionStrategy::Queue`] the per-commit argmax itself is
/// served by a lazy max-gain heap pair instead of a full scan.
/// Exactness rests on four invariants:
///
/// * **Fixed sides.** A node changes side only when toggled, and every
///   toggled node is marked, so an unmarked candidate keeps its
///   pass-start side. The heaps hold only *entering* candidates; the
///   few free *leaving* candidates (pass-start cut ∩ free) are scanned
///   exactly each step.
/// * **Frame-free keys.** Heap keys fold only per-node cached terms
///   ([`entering_keys`]); the global counts and latencies enter as an
///   exact per-step offset ([`StepFrame`]) recomputed from the live
///   engine at every selection. A key therefore goes stale only when
///   its node's cache entry changes — and the commit that dirties a
///   node immediately re-keys it — so no amount of global movement
///   ever invalidates the heaps. `key + offset + slack` bounds the
///   true gain from above, where the slack covers the two hinge
///   nonlinearities ([`HingeSlack`]): it is exactly zero once the cut
///   is deep enough in violation and the hardware path has passed the
///   tallest candidate, i.e. on almost every step of a pass. The pop
///   loop re-validates each popped entry against the exact cached
///   gain, stops as soon as the active bounds cannot beat the
///   incumbent, and restores losers verbatim at step end (their keys
///   are still current), so the heaps never livelock.
/// * **Gate-split heaps.** The entering convexity gate depends only on
///   (#violators clamped to 2, the sole violator's id), and it affects
///   a gain in exactly one way: the merit term is zeroed when the gate
///   is closed. The base heap keys every candidate without merit — the
///   exact ordering whenever the gate is closed; the merit heap keys
///   the cone-locally-convex candidates with it. Each step reads the
///   live signature: no violators → consult both heaps, ≥ 2 violators
///   → base heap only, and a sole violator → base heap plus one exact
///   evaluation of the violator itself outside the heaps. A
///   violator-set flip switches regimes; it never rebuilds anything.
/// * **NaN fallback.** Non-finite or negative violation/merit weights,
///   or a NaN gain mid-pass, abandon the queue and finish the
///   trajectory with the reference scan, preserving the scan's NaN
///   semantics bit for bit.
///
/// The result is toggle-for-toggle identical to the scan, ties to the
/// lowest node id included (`tests/queue_parity.rs`), at
/// O((dirty + pops) · log n) per commit instead of O(free).
fn run_trajectory(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    free: &NodeSet,
    free_nodes: &[NodeId],
    spec: &TrajectorySpec<'_>,
    scratch: &mut SearchScratch,
    mut trace: Option<&mut Vec<NodeId>>,
) -> TrajectoryResult {
    let start = Instant::now();
    let n = ctx.node_count();
    let config = spec.config;
    let mut stats = CacheStats {
        trajectories: 1,
        ..CacheStats::default()
    };
    if std::mem::replace(&mut scratch.warm, true) {
        stats.arena_reuses = 1;
    } else {
        stats.arena_allocs = 1;
    }

    // Seeded refinement (multilevel uncoarsening): the trajectory starts
    // from the projected coarse cut instead of the all-software
    // configuration. The seed becomes the incumbent only when it is
    // already a legal positive-merit cut at *this* level — a coarse cut
    // may under-count fine I/O, and an illegal start is exactly the
    // "allow a cut to be illegal" regime of the paper's pass loop: the
    // toggles get the chance to legalize it, and only legal states are
    // ever recorded.
    let mut best_cut = Cut::empty(n);
    let mut best_merit = 0.0f64;
    if let Some(seed) = spec.start {
        if !seed.is_empty() {
            let c = Cut::evaluate(ctx, seed.clone());
            if c.satisfies_io(io) && c.merit() > 0.0 && ctx.is_convex(c.nodes()) {
                best_merit = c.merit();
                best_cut = c;
            }
        }
    }
    let start_nodes = spec.start.unwrap_or_else(|| best_cut.nodes());
    let mut engine =
        ToggleEngine::from_cut_in(ctx, start_nodes, std::mem::take(&mut scratch.arena));
    let cache = &mut scratch.cache;
    let marked = &mut scratch.marked;
    let best_nodes = &mut scratch.best_nodes;
    let heap_base = &mut scratch.heap_base;
    let heap_merit = &mut scratch.heap_merit;
    let stamps = &mut scratch.stamps;
    let touched = &mut scratch.touched;
    let start_cut = &mut scratch.start_cut;
    let leave_list = &mut scratch.leave_list;
    let requeue = &mut scratch.requeue;

    // Sticky queue eligibility for the whole trajectory: once a NaN
    // gain is seen, every later step runs the scan.
    let mut queue_ok =
        config.strategy == SelectionStrategy::Queue && queue_weights_ok(&config.weights);

    // Invariant-audit cadence; the disabled path is one integer compare
    // per commit.
    let audit_every = crate::audit::effective_cadence(config.audit_cadence) as u64;
    let mut commits_done: u64 = 0;

    for pass in 0..config.max_passes {
        if pass > 0 {
            engine.reset_from_cut(best_cut.nodes());
        }
        cache.reset(n);
        marked.reset(n);
        // Scalars of the pass-best snapshot; the nodes live in
        // `best_nodes` (copied, not allocated, on each improvement).
        let mut pass_best: Option<(u32, u32, u64, f64)> = None;
        let mut pass_best_merit = best_merit;
        let mut forced = if pass == 0 { spec.seed } else { None };

        // Queue state of the pass: the pass-start side split, the two
        // entering-candidate heaps keyed by frame-free terms, and the
        // hinge-slack maxima their bounds lean on.
        let mut queue_live = queue_ok;
        let mut hinges = HingeSlack::new();
        if queue_live {
            start_cut.copy_from(engine.cut());
            leave_list.clear();
            for v in start_cut.iter() {
                if free.contains(v) {
                    leave_list.push(v);
                }
            }
            heap_base.clear();
            heap_merit.clear();
            stamps.clear();
            stamps.resize(n, 0);
            for &v in free_nodes {
                if start_cut.contains(v) {
                    continue;
                }
                let t = cache.entering_terms(&engine, v);
                hinges.absorb(&t);
                let (kb, km) = entering_keys(
                    &config.weights,
                    ctx.growth_score(v),
                    u64::from(ctx.sw_cycles(v)),
                    &t,
                );
                let node = v.index() as u32;
                heap_base.push(QueueEntry {
                    key: kb,
                    node,
                    stamp: 0,
                });
                if let Some(km) = km {
                    heap_merit.push(QueueEntry {
                        key: km,
                        node,
                        stamp: 0,
                    });
                }
            }
        }

        for _ in 0..free_nodes.len() {
            // Pick the max-gain unmarked node; ties break to the lowest
            // node id (determinism).
            let mut chosen = forced.take();
            if chosen.is_none() && queue_live {
                // Exact scan over the few leaving candidates first …
                let mut best: Option<(f64, NodeId)> = None;
                let mut nan_seen = false;
                for &v in leave_list.iter() {
                    if marked.contains(v) {
                        continue;
                    }
                    let g = cache.gain(&engine, &config.weights, io, v);
                    if g.is_nan() {
                        nan_seen = true;
                        break;
                    }
                    let better = match best {
                        None => true,
                        Some((bg, _)) => g > bg,
                    };
                    if better {
                        best = Some((g, v));
                    }
                }
                // … then the live gate signature picks the heaps to
                // consult: no violators → both (the merit heap bounds
                // the cone-locally-convex candidates, the base heap
                // the rest), ≥ 2 violators → base heap only (merit is
                // gate-closed for everyone). A sole violator is the
                // one node whose merit survives a closed gate: if it
                // is an entering candidate, evaluate it exactly here
                // and skip its base-heap entries below.
                let sig = engine.gate_signature();
                let mut special: Option<NodeId> = None;
                if !nan_seen && sig.0 == 1 {
                    let x = NodeId::from_index(sig.1 as usize);
                    if free.contains(x) && !marked.contains(x) && !start_cut.contains(x) {
                        special = Some(x);
                        let g = cache.gain(&engine, &config.weights, io, x);
                        if g.is_nan() {
                            nan_seen = true;
                        } else {
                            let wins = match best {
                                None => true,
                                Some((bg, bid)) => g > bg || (g == bg && x.index() < bid.index()),
                            };
                            if wins {
                                best = Some((g, x));
                            }
                        }
                    }
                }
                let frame = StepFrame::new(&engine, &config.weights, io, &hinges);
                let use_merit = sig.0 == 0;
                // The popped-but-undefeated incumbent's heap entry,
                // restored verbatim if it is later dethroned.
                let mut parked: Option<(f64, u32, bool)> = None;
                // Pop entering candidates while some consulted bound
                // can still beat the incumbent. Every live key is
                // current (commits immediately re-key their dirty
                // delta), so losers restore verbatim at step end — the
                // deferred flush is what prevents a pop/requeue
                // livelock within the step.
                while !nan_seen {
                    // Skim dead tops (stale stamp or already toggled)
                    // off each consulted heap, then race the two live
                    // bounds; base wins ties so the choice is
                    // deterministic.
                    let b_base = loop {
                        let Some(&top) = heap_base.peek() else {
                            break None;
                        };
                        let node = NodeId::from_index(top.node as usize);
                        if top.stamp != stamps[top.node as usize] || marked.contains(node) {
                            heap_base.pop();
                            stats.queue_pops += 1;
                            continue;
                        }
                        if special == Some(node) {
                            // Already judged exactly above; keep it keyed.
                            heap_base.pop();
                            stats.queue_pops += 1;
                            requeue.push((top.key, top.node, false));
                            continue;
                        }
                        break Some(frame.bound(top.key, false));
                    };
                    let b_merit = if use_merit {
                        loop {
                            let Some(&top) = heap_merit.peek() else {
                                break None;
                            };
                            let node = NodeId::from_index(top.node as usize);
                            if top.stamp != stamps[top.node as usize] || marked.contains(node) {
                                heap_merit.pop();
                                stats.queue_pops += 1;
                                continue;
                            }
                            break Some(frame.bound(top.key, true));
                        }
                    } else {
                        None
                    };
                    let from_merit = match (b_base, b_merit) {
                        (None, None) => break,
                        (Some(_), None) => false,
                        (None, Some(_)) => true,
                        (Some(b), Some(m)) => m > b,
                    };
                    let bound = if from_merit { b_merit } else { b_base }.unwrap();
                    if let Some((bg, _)) = best {
                        // `bound` dominates every consulted heap, and
                        // each unmarked entering candidate has a live
                        // entry in a consulted heap whose bound
                        // dominates its true gain — nothing left can
                        // win or tie.
                        if bound < bg {
                            break;
                        }
                    }
                    let top = if from_merit {
                        heap_merit.pop().expect("live top just peeked")
                    } else {
                        heap_base.pop().expect("live top just peeked")
                    };
                    stats.queue_pops += 1;
                    stats.queue_stale_revalidations += 1;
                    let node_idx = top.node as usize;
                    let node = NodeId::from_index(node_idx);
                    let g = cache.gain(&engine, &config.weights, io, node);
                    if g.is_nan() {
                        nan_seen = true;
                        break;
                    }
                    let wins = match best {
                        None => true,
                        Some((bg, bid)) => g > bg || (g == bg && node_idx < bid.index()),
                    };
                    if wins {
                        if let Some(p) = parked.take() {
                            requeue.push(p);
                        }
                        parked = Some((top.key, top.node, from_merit));
                        best = Some((g, node));
                    } else {
                        requeue.push((top.key, top.node, from_merit));
                    }
                }
                if nan_seen {
                    // Hostile weights made a gain NaN mid-pass: abandon
                    // the queue and redo this step with the scan, whose
                    // NaN semantics the trajectory must now follow.
                    queue_ok = false;
                    queue_live = false;
                    requeue.clear();
                } else {
                    // Losers (and a dethroned incumbent) rejoin their
                    // heaps verbatim: their keys fold only per-node
                    // cached terms, all still current. The winner is
                    // about to be committed and marked, so it stays
                    // out.
                    for &(key, node, from_merit) in requeue.iter() {
                        let entry = QueueEntry {
                            key,
                            node,
                            stamp: stamps[node as usize],
                        };
                        if from_merit {
                            heap_merit.push(entry);
                        } else {
                            heap_base.push(entry);
                        }
                        stats.queue_reinsertions += 1;
                    }
                    requeue.clear();
                    chosen = best.map(|(_, v)| v);
                }
            }
            if chosen.is_none() && !queue_live {
                chosen = scan_select(cache, &engine, &config.weights, io, free_nodes, marked);
            }
            let Some(v) = chosen else { break };
            if let Some(t) = trace.as_deref_mut() {
                t.push(v);
            }
            if queue_live {
                cache.commit_tracked(&mut engine, v, touched);
                marked.insert(v);
                // Targeted re-key: exactly the commit's dirty delta is
                // refreshed and re-stamped; every clean entry's key is
                // still current because keys fold no global state.
                // Word-level pre-mask: the dirty set is dominated by
                // already-committed cut members (leave-term coverage),
                // which the re-key must skip — filter them out 64 at a
                // time instead of testing three sets per bit.
                touched.for_each_word(|wi, w| {
                    let mut m = w & free.word(wi) & !start_cut.word(wi) & !marked.word(wi);
                    while m != 0 {
                        let b = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let u = NodeId::from_index(wi * 64 + b);
                        let t = cache.entering_terms(&engine, u);
                        hinges.absorb(&t);
                        let (kb, km) = entering_keys(
                            &config.weights,
                            ctx.growth_score(u),
                            u64::from(ctx.sw_cycles(u)),
                            &t,
                        );
                        let s = &mut stamps[u.index()];
                        *s = s.wrapping_add(1);
                        let node = u.index() as u32;
                        heap_base.push(QueueEntry {
                            key: kb,
                            node,
                            stamp: *s,
                        });
                        if let Some(km) = km {
                            heap_merit.push(QueueEntry {
                                key: km,
                                node,
                                stamp: *s,
                            });
                        }
                        stats.queue_reinsertions += 1;
                    }
                });
            } else {
                cache.commit(&mut engine, v);
                marked.insert(v);
            }
            commits_done += 1;
            if audit_every != 0 && commits_done.is_multiple_of(audit_every) {
                let mut divergences = engine.audit_divergences();
                divergences.extend(cache.audit_divergences(&engine));
                if queue_live {
                    // Queue stamp consistency: every unmarked entering
                    // candidate must be covered by a live (current-
                    // stamp) base-heap entry, or selection would
                    // silently skip it.
                    let mut covered = vec![false; n];
                    for e in heap_base.iter() {
                        let i = e.node as usize;
                        if i < n && e.stamp == stamps[i] {
                            covered[i] = true;
                        }
                    }
                    for &u in free_nodes {
                        if !start_cut.contains(u) && !marked.contains(u) && !covered[u.index()] {
                            divergences.push(format!(
                                "queue: entering candidate n{} has no live heap entry",
                                u.index()
                            ));
                        }
                    }
                }
                cache.note_audit();
                if !divergences.is_empty() {
                    panic!(
                        "{}",
                        crate::AuditReport {
                            flavour: spec.flavour.to_string(),
                            commits: commits_done,
                            divergences,
                        }
                    );
                }
            }
            if engine.is_legal(io) {
                let m = engine.merit();
                if m > pass_best_merit {
                    pass_best_merit = m;
                    best_nodes.copy_from(engine.cut());
                    pass_best = Some((
                        engine.input_count(),
                        engine.output_count(),
                        engine.software_latency(),
                        engine.hardware_latency(),
                    ));
                }
            }
        }

        stats.absorb(cache.stats());
        match pass_best {
            Some((inputs, outputs, sw, hw)) => {
                best_merit = pass_best_merit;
                best_cut = Cut::from_parts(best_nodes.clone(), inputs, outputs, sw, hw);
            }
            None => break, // no improvement this pass
        }
    }
    scratch.arena = engine.into_arena();
    (best_cut, stats, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs a single trajectory with the given flavour weights and no
/// restart seed, returning the exact sequence of committed toggles —
/// the observable `tests/queue_parity.rs` pins across
/// [`SelectionStrategy`] values. Hidden: test scaffolding, not API.
#[doc(hidden)]
pub fn trajectory_commit_trace(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    forbidden: Option<&NodeSet>,
) -> Vec<NodeId> {
    let mut trace = Vec::new();
    let mut free = ctx.eligible().clone();
    if let Some(f) = forbidden {
        free.subtract(f);
    }
    if free.is_empty() {
        return trace;
    }
    let free_nodes: Vec<NodeId> = free.iter().collect();
    let spec = TrajectorySpec {
        config,
        flavour: "base",
        seed: None,
        start: None,
    };
    let mut scratch = SearchScratch::new();
    let _ = run_trajectory(
        ctx,
        io,
        &free,
        &free_nodes,
        &spec,
        &mut scratch,
        Some(&mut trace),
    );
    trace
}

/// Picks up to `restarts − 1` forced first moves, spread across the
/// block: the highest-gain unmarked nodes with pairwise undirected
/// distance ≥ 3, so each restart explores a different region.
fn restart_seeds(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    free_nodes: &[NodeId],
) -> Vec<NodeId> {
    if config.restarts <= 1 {
        return Vec::new();
    }
    let n = ctx.node_count();
    let engine = ToggleEngine::new(ctx);
    let mut scored: Vec<(f64, NodeId)> = free_nodes
        .iter()
        .map(|&v| (gain_of(&engine, ctx, &config.weights, io, v), v))
        .collect();
    // total_cmp, not partial_cmp().unwrap(): gains inherit NaN from
    // user-supplied weights (the daemon accepts arbitrary f64s), and a
    // NaN must sort deterministically, not panic the search.
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

    let dag = ctx.block().dag();
    let mut banned = NodeSet::new(n);
    let mut seeds = Vec::new();
    for (_, v) in scored {
        if seeds.len() + 1 >= config.restarts {
            break;
        }
        if banned.contains(v) {
            continue;
        }
        seeds.push(v);
        // Ban the undirected 2-neighbourhood of the seed.
        let mut frontier = vec![v];
        banned.insert(v);
        for _ in 0..2 {
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in dag.preds(u).iter().chain(dag.succs(u)) {
                    if banned.insert(w) {
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
    }
    seeds
}

/// [`CutFinder`] adapter for the ISEGEN bi-partition, so the generic
/// application driver ([`crate::generate_with`]) can run ISEGEN alongside
/// the baseline algorithms.
///
/// The finder owns a pool of [`SearchScratch`] arenas that stays warm
/// across `find_cut` calls (and therefore across blocks), and shares a
/// [`CacheStats`] accumulator with every clone of itself — the batched
/// driver clones one finder per worker, and the accumulated statistics
/// of the whole generation remain readable from the original via
/// [`IsegenFinder::accumulated_stats`].
#[derive(Debug)]
pub struct IsegenFinder {
    config: SearchConfig,
    portfolio_threads: usize,
    pool: Vec<SearchScratch>,
    stats: Arc<Mutex<CacheStats>>,
}

impl Clone for IsegenFinder {
    /// Clones share the stats accumulator but start with a cold arena
    /// pool of their own (arenas are per-thread working memory).
    fn clone(&self) -> Self {
        IsegenFinder {
            config: self.config.clone(),
            portfolio_threads: self.portfolio_threads,
            pool: Vec::new(),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl Default for IsegenFinder {
    fn default() -> Self {
        IsegenFinder::new(SearchConfig::default())
    }
}

impl IsegenFinder {
    /// Creates a finder with the given search configuration.
    pub fn new(config: SearchConfig) -> Self {
        IsegenFinder {
            config,
            portfolio_threads: 1,
            pool: Vec::new(),
            stats: Arc::new(Mutex::new(CacheStats::default())),
        }
    }

    /// Sets the intra-block portfolio thread count used by direct
    /// `find_cut` calls, and the floor for driver-assigned budgets.
    /// `1` (the default) searches each block sequentially.
    pub fn with_portfolio_threads(mut self, threads: usize) -> Self {
        self.portfolio_threads = threads.max(1);
        self
    }

    /// The intra-block portfolio thread count.
    pub fn portfolio_threads(&self) -> usize {
        self.portfolio_threads
    }

    /// The search configuration in use.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The probe/arena statistics accumulated by every `find_cut` call
    /// on this finder *and all its clones* since construction.
    pub fn accumulated_stats(&self) -> CacheStats {
        self.stats.lock().map(|s| *s).unwrap_or_default()
    }
}

impl CutFinder for IsegenFinder {
    fn find_cut(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
    ) -> Cut {
        self.find_cut_budget(ctx, io, forbidden, 1)
    }

    fn find_cut_budget(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
        threads: usize,
    ) -> Cut {
        let threads = threads.max(self.portfolio_threads);
        let (cut, stats, _, _) =
            search_impl(ctx, io, &self.config, forbidden, threads, &mut self.pool);
        if let Ok(mut acc) = self.stats.lock() {
            acc.absorb(stats);
        }
        cut
    }

    fn name(&self) -> &str {
        "isegen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    fn search(
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        config: &SearchConfig,
        forbidden: Option<&NodeSet>,
    ) -> Cut {
        let mut s = Search::new(config.clone());
        if let Some(f) = forbidden {
            s = s.forbidden(f);
        }
        s.run(ctx, io).cut
    }

    #[test]
    fn finds_the_whole_cluster() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = search(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        assert_eq!(cut.nodes().len(), 3);
        assert_eq!(cut.input_count(), 4);
        assert_eq!(cut.output_count(), 1);
        assert!(ctx.is_convex(cut.nodes()));
        assert!(cut.merit() > 0.0);
    }

    #[test]
    fn respects_io_constraints() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        for (i, o) in [(2u32, 1u32), (3, 1), (4, 1), (4, 2)] {
            let io = IoConstraints::new(i, o);
            let cut = search(&ctx, io, &SearchConfig::default(), None);
            assert!(
                cut.is_empty() || cut.satisfies_io(io),
                "cut {:?} violates {io}",
                cut
            );
            if !cut.is_empty() {
                assert!(ctx.is_convex(cut.nodes()), "cut must be convex under {io}");
            }
        }
    }

    #[test]
    fn respects_forbidden_nodes() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let forbidden = NodeSet::from_ids(7, [ids[6]]); // the add
        let cut = search(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            Some(&forbidden),
        );
        assert!(!cut.nodes().contains(ids[6]));
        assert!(!cut.is_empty(), "the muls alone still form a cut");
    }

    #[test]
    fn all_forbidden_yields_empty() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = search(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            Some(ctx.eligible()),
        );
        assert!(cut.is_empty());
    }

    #[test]
    fn deterministic() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let a = search(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        let b = search(
            &ctx,
            IoConstraints::new(4, 2),
            &SearchConfig::default(),
            None,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn adversarial_weights_do_not_panic() {
        // A service request may carry arbitrary f64 weights; NaN gains
        // used to panic the seed sort (partial_cmp().unwrap()). Every
        // pathological flavour must complete and return *some* cut.
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let poisoned = [
            GainWeights {
                merit: f64::NAN,
                io_penalty: f64::NAN,
                affinity: f64::NAN,
                growth: f64::NAN,
                independence: f64::NAN,
            },
            GainWeights {
                merit: f64::INFINITY,
                io_penalty: f64::NEG_INFINITY,
                affinity: f64::NAN,
                growth: 0.0,
                independence: -0.0,
            },
            GainWeights {
                merit: f64::MAX,
                io_penalty: f64::MIN_POSITIVE,
                affinity: -f64::MAX,
                growth: f64::NAN,
                independence: f64::INFINITY,
            },
        ];
        for weights in poisoned {
            let config = SearchConfig {
                weights,
                ..SearchConfig::default()
            };
            let cut = search(&ctx, IoConstraints::new(4, 2), &config, None);
            // Whatever the search found must still be architecturally
            // legal — the guard rails hold even under junk weights.
            assert!(cut.is_empty() || cut.satisfies_io(IoConstraints::new(4, 2)));
            if !cut.is_empty() {
                assert!(ctx.is_convex(cut.nodes()));
            }
        }
    }

    #[test]
    fn queue_and_scan_agree_on_dotprod() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(4, 2);
        let queue = SearchConfig::new().with_strategy(SelectionStrategy::Queue);
        let scan = SearchConfig::new().with_strategy(SelectionStrategy::Scan);
        assert_eq!(
            search(&ctx, io, &queue, None),
            search(&ctx, io, &scan, None)
        );
        assert_eq!(
            trajectory_commit_trace(&ctx, io, &queue, None),
            trajectory_commit_trace(&ctx, io, &scan, None),
        );
    }

    #[test]
    fn single_pass_config() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let config = SearchConfig {
            max_passes: 1,
            ..SearchConfig::default()
        };
        let cut = search(&ctx, IoConstraints::new(4, 2), &config, None);
        assert!(!cut.is_empty());
    }
}
