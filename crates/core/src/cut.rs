use crate::{BlockContext, IoConstraints};
use isegen_graph::{path, NodeSet};

/// An evaluated cut: a node set together with its input/output operand
/// counts, software latency and hardware critical path.
///
/// The *merit* of a cut (paper §5) is
/// `M(C) = λ_sw(C) − λ_hw(C)`: the cycles the block spends executing the
/// cut's operations in software, minus the (fractional, MAC-normalised)
/// critical-path delay of the cut as an AFU datapath. When the cut is
/// actually implemented, the AFU instruction occupies whole issue cycles,
/// so the integral saving is [`Cut::saved_cycles`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    nodes: NodeSet,
    inputs: u32,
    outputs: u32,
    sw_latency: u64,
    hw_latency: f64,
}

impl Cut {
    /// Evaluates `nodes` as a cut of `ctx`'s block, deriving all counts
    /// from scratch.
    ///
    /// Inputs are the distinct producers outside the cut feeding it
    /// (external-input markers included); outputs are the cut nodes whose
    /// value is consumed outside the cut or live-out of the block.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` has a different capacity than the block.
    pub fn evaluate(ctx: &BlockContext<'_>, nodes: NodeSet) -> Cut {
        let dag = ctx.block().dag();
        assert_eq!(
            nodes.capacity(),
            dag.node_count(),
            "cut capacity does not match block"
        );
        let mut inputs = 0u32;
        let mut outputs = 0u32;
        let mut sw_latency = 0u64;
        // Distinct outside producers: count p ∉ cut with ≥1 edge into cut,
        // each once.
        let mut feeds_cut = NodeSet::new(dag.node_count());
        for v in nodes.iter() {
            sw_latency += ctx.sw_cycles(v) as u64;
            for &p in dag.preds(v) {
                if !nodes.contains(p) {
                    feeds_cut.insert(p);
                }
            }
            let escapes =
                dag.succs(v).iter().any(|s| !nodes.contains(*s)) || ctx.block().is_live_out(v);
            if escapes {
                outputs += 1;
            }
        }
        inputs += feeds_cut.len() as u32;
        let hw_latency = path::critical_path_within(dag, ctx.topo(), &nodes, |v| ctx.hw_delay(v));
        Cut {
            nodes,
            inputs,
            outputs,
            sw_latency,
            hw_latency,
        }
    }

    /// Creates an empty cut (the all-software configuration).
    pub fn empty(node_capacity: usize) -> Cut {
        Cut {
            nodes: NodeSet::new(node_capacity),
            inputs: 0,
            outputs: 0,
            sw_latency: 0,
            hw_latency: 0.0,
        }
    }

    /// Reconstructs a previously-evaluated cut from its saved parts —
    /// the deserialization path of the `ised` disk cache tier, which
    /// must reproduce the searched cut *bit for bit* (re-running
    /// [`Cut::evaluate`] would recompute `hw_latency` along a different
    /// float summation order than the incremental engine used).
    ///
    /// The counts are trusted as given; callers replaying untrusted
    /// bytes should validate `nodes.capacity()` against the block.
    pub fn from_saved(
        nodes: NodeSet,
        inputs: u32,
        outputs: u32,
        sw_latency: u64,
        hw_latency: f64,
    ) -> Cut {
        Cut::from_parts(nodes, inputs, outputs, sw_latency, hw_latency)
    }

    pub(crate) fn from_parts(
        nodes: NodeSet,
        inputs: u32,
        outputs: u32,
        sw_latency: u64,
        hw_latency: f64,
    ) -> Cut {
        Cut {
            nodes,
            inputs,
            outputs,
            sw_latency,
            hw_latency,
        }
    }

    /// The nodes of the cut.
    #[inline]
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// Whether the cut contains no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of distinct input operands.
    #[inline]
    pub fn input_count(&self) -> u32 {
        self.inputs
    }

    /// Number of output operands.
    #[inline]
    pub fn output_count(&self) -> u32 {
        self.outputs
    }

    /// Software latency `λ_sw(C)` in cycles.
    #[inline]
    pub fn software_latency(&self) -> u64 {
        self.sw_latency
    }

    /// Hardware critical-path delay `λ_hw(C)` in MAC units.
    #[inline]
    pub fn hardware_latency(&self) -> f64 {
        self.hw_latency
    }

    /// Whole cycles the AFU implementation of the cut occupies:
    /// `ceil(λ_hw(C))`, at least 1 for a non-empty cut.
    pub fn hw_cycles(&self) -> u64 {
        if self.nodes.is_empty() {
            0
        } else {
            (self.hw_latency.ceil() as u64).max(1)
        }
    }

    /// Merit `M(C) = λ_sw(C) − λ_hw(C)` (fractional; used for search
    /// comparisons).
    #[inline]
    pub fn merit(&self) -> f64 {
        self.sw_latency as f64 - self.hw_latency
    }

    /// Cycles actually saved per execution when the cut becomes an ISE:
    /// `max(0, λ_sw(C) − ceil(λ_hw(C)))`.
    pub fn saved_cycles(&self) -> u64 {
        self.sw_latency.saturating_sub(self.hw_cycles())
    }

    /// Whether the I/O counts fit `io` (convexity is checked separately
    /// via [`BlockContext::is_convex`]).
    #[inline]
    pub fn satisfies_io(&self, io: IoConstraints) -> bool {
        io.admits(self.inputs, self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        // m1 = a*b; m2 = c*d; s = m1+m2 (live out)
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_cluster_io() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = Cut::evaluate(&ctx, ctx.eligible().clone());
        assert_eq!(cut.input_count(), 4);
        assert_eq!(cut.output_count(), 1);
        assert_eq!(cut.software_latency(), 3 + 3 + 1);
        // hw: mul(0.85) -> add(0.30) = 1.15
        assert!((cut.hardware_latency() - 1.15).abs() < 1e-9);
        assert_eq!(cut.hw_cycles(), 2);
        assert_eq!(cut.saved_cycles(), 5);
        assert!(cut.satisfies_io(IoConstraints::new(4, 2)));
        assert!(!cut.satisfies_io(IoConstraints::new(3, 1)));
    }

    #[test]
    fn partial_cut_exposes_internal_edge() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<_> = block.dag().node_ids().collect();
        // only the add node: inputs = 2 (the muls), outputs = 1
        let cut = Cut::evaluate(&ctx, NodeSet::from_ids(7, [ids[6]]));
        assert_eq!(cut.input_count(), 2);
        assert_eq!(cut.output_count(), 1);
        assert_eq!(cut.software_latency(), 1);
        assert_eq!(cut.saved_cycles(), 0); // 1 sw cycle vs 1 hw cycle
    }

    #[test]
    fn duplicate_operand_counts_one_input() {
        let mut b = BlockBuilder::new("sq");
        let x = b.input("x");
        let sq = b.op(Opcode::Mul, &[x, x]).unwrap();
        let block = b.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = Cut::evaluate(&ctx, NodeSet::from_ids(2, [sq]));
        assert_eq!(
            cut.input_count(),
            1,
            "x feeds both operands but is one value"
        );
    }

    #[test]
    fn live_out_inside_cut_counts_as_output() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let a = b.op(Opcode::Add, &[x, x]).unwrap();
        let n = b.op(Opcode::Not, &[a]).unwrap();
        b.live_out(a).unwrap();
        let block = b.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cut = Cut::evaluate(&ctx, NodeSet::from_ids(3, [a, n]));
        // both a (live-out) and n (sink) escape
        assert_eq!(cut.output_count(), 2);
    }

    #[test]
    fn empty_cut() {
        let cut = Cut::empty(10);
        assert!(cut.is_empty());
        assert_eq!(cut.merit(), 0.0);
        assert_eq!(cut.saved_cycles(), 0);
        assert_eq!(cut.hw_cycles(), 0);
    }
}
