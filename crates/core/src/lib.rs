//! ISEGEN: generation of instruction set extensions by iterative
//! improvement (Biswas, Banerjee, Dutt, Pozzi, Ienne — DATE 2005).
//!
//! ISE identification is hardware/software partitioning at instruction
//! granularity: pick *cuts* (subgraphs, possibly disconnected) of a basic
//! block's data-flow graph to execute on an Ad-hoc Functional Unit (AFU),
//! subject to register-file port constraints and convexity. This crate
//! implements the paper's contribution:
//!
//! * [`IoConstraints`] — the `(N_in, N_out)` port budget.
//! * [`BlockContext`] — per-block precomputation (topological order,
//!   transitive closure, barrier distances, per-node latencies).
//! * [`Cut`] — an evaluated cut: I/O counts, software latency, hardware
//!   critical path, merit.
//! * [`ToggleEngine`] — the incremental bookkeeping of paper §4.3: toggling
//!   a node between software (S) and hardware (H) updates I/O counts,
//!   critical-path estimates and convexity masks in O(deg) / O(n/64)
//!   rather than re-deriving them from scratch.
//! * [`AddendumTable`] — the paper's Fig. 3 per-node ΔI/ΔO addendum
//!   scheme as a standalone, property-tested artifact (its locality
//!   claim is verified rather than proven-by-reference).
//! * [`GainWeights`] / the gain function — the five weighted control
//!   parameters of §4.2 (merit, I/O penalty, convexity affinity,
//!   directional growth, independent cuts).
//! * [`Search`] — the modified Kernighan–Lin pass structure of Fig. 2,
//!   served by [`GainCache`]: a dirty-set probe cache that re-evaluates
//!   only the candidates a committed toggle could have changed, and a
//!   lazy-decrease max-gain queue ([`SelectionStrategy::Queue`]) that
//!   replaces the per-commit full scan ([`SearchOutcome`] exposes the
//!   probes-avoided and queue counters).
//! * [`Generator`] — the whole-application driver (Problem 2): block
//!   ranking by speedup potential, up to `N_ISE` successive
//!   bi-partitions, optional reuse of each ISE across all its isomorphic
//!   instances (the AES regularity play of §5); `.threads(n)` fans block
//!   searches out over scoped threads with cross-round memoisation,
//!   output byte-identical to the sequential driver.
//!
//! # Quickstart
//!
//! ```
//! use isegen_core::{BlockContext, IoConstraints, Search};
//! use isegen_ir::{BlockBuilder, LatencyModel, Opcode};
//!
//! # fn main() -> Result<(), isegen_ir::BuildError> {
//! // (a*b + c*d) — a classic 2-MUL + ADD cluster.
//! let mut b = BlockBuilder::new("dotprod");
//! let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
//! let m1 = b.op(Opcode::Mul, &[a, b_])?;
//! let m2 = b.op(Opcode::Mul, &[c, d])?;
//! b.op(Opcode::Add, &[m1, m2])?;
//! let block = b.build()?;
//!
//! let model = LatencyModel::paper_default();
//! let ctx = BlockContext::new(&block, &model);
//! let cut = Search::default().run(&ctx, IoConstraints::new(4, 2)).cut;
//! assert_eq!(cut.nodes().len(), 3); // all three ops fused into one ISE
//! assert!(cut.merit() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addendum;
mod audit;
mod cache;
mod coarsen;
mod constraints;
mod context;
mod cut;
mod driver;
mod engine;
mod gain;
mod kl;
mod speedup;

pub use addendum::AddendumTable;
pub use audit::AuditReport;
pub use cache::{CacheStats, GainCache};
#[doc(hidden)]
pub use coarsen::roundtrip_audit;
pub use coarsen::{LevelReport, MultilevelConfig, MultilevelReport};
pub use constraints::IoConstraints;
pub use context::{BlockContext, ContextData};
pub use cut::Cut;
#[allow(deprecated)]
pub use driver::{
    generate, generate_batched, generate_batched_in_contexts, generate_batched_with,
    generate_in_contexts, generate_with,
};
pub use driver::{CutFinder, Generator, Ise, IseConfig, IseInstance, IseSelection};
pub use engine::{EngineArena, Probe, ToggleEngine};
pub use gain::GainWeights;
#[doc(hidden)]
pub use kl::trajectory_commit_trace;
#[allow(deprecated)]
pub use kl::{bipartition, bipartition_portfolio, bipartition_profiled, bipartition_with_stats};
pub use kl::{
    IsegenFinder, Search, SearchConfig, SearchOutcome, SearchScratch, SelectionStrategy,
    TrajectoryReport,
};
pub use speedup::application_speedup;
