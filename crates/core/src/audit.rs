//! Opt-in invariant auditing of the incremental search state.
//!
//! The K-L inner loop lives or dies by its incremental bookkeeping: the
//! [`crate::ToggleEngine`]'s incidence sets and hull masks, the
//! [`crate::GainCache`]'s recombined probes, and the lazy selection
//! queue's stamp discipline. Audit mode re-derives all of it from
//! scratch at a configurable commit cadence and fails loudly — with a
//! structured [`AuditReport`] naming every diverging field — the moment
//! the incremental state disagrees with ground truth.
//!
//! Enable it with [`crate::SearchConfig::with_audit_cadence`] or the
//! `IsegenAudit` environment variable (a positive integer: audit every
//! N-th committed toggle; the config knob wins when both are set). The
//! disabled path costs one integer compare per commit and performs no
//! audit work — `CacheStats::audit_checks` stays `0`, which the
//! `perf_report` spot-check pins.

use std::fmt;
use std::sync::OnceLock;

/// A failed invariant audit: which trajectory, after how many commits,
/// and every field-level divergence between the incremental state and
/// the from-scratch recomputation.
///
/// The search turns a non-empty report into a panic — a diverged
/// incremental state would otherwise silently corrupt every later gain
/// in the trajectory.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Weight flavour of the trajectory being audited.
    pub flavour: String,
    /// Committed toggles at the time of the audit.
    pub commits: u64,
    /// One line per diverging field, `live` vs `fresh`.
    pub divergences: Vec<String>,
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "invariant audit failed: trajectory {:?}, commit {}, {} divergence(s)",
            self.flavour,
            self.commits,
            self.divergences.len()
        )?;
        for d in &self.divergences {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// The `IsegenAudit` cadence, read once per process.
fn env_cadence() -> usize {
    static CADENCE: OnceLock<usize> = OnceLock::new();
    *CADENCE.get_or_init(|| {
        std::env::var("IsegenAudit")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Resolves the effective audit cadence: the explicit
/// [`crate::SearchConfig::audit_cadence`] when non-zero, the
/// `IsegenAudit` environment variable otherwise. Zero disables
/// auditing.
pub(crate) fn effective_cadence(config_cadence: usize) -> usize {
    if config_cadence != 0 {
        config_cadence
    } else {
        env_cadence()
    }
}
