use isegen_graph::{convex, NodeId, NodeSet, Reachability, TopoOrder};
use isegen_ir::{BasicBlock, LatencyModel};
use std::sync::Arc;

/// The owned, block-independent part of a [`BlockContext`]: topological
/// order, transitive closure, per-node latencies, eligibility mask and
/// growth scores.
///
/// Splitting this out of the borrowing [`BlockContext`] lets a long-lived
/// service cache the O(V·E/64) precomputation across requests: the data
/// carries no lifetime, is `Send + Sync`, and reattaches to its block via
/// [`BlockContext::with_data`] at the cost of an `Arc` clone.
#[derive(Debug, Clone)]
pub struct ContextData {
    topo: TopoOrder,
    reach: Reachability,
    sw: Vec<u32>,
    hw: Vec<f64>,
    eligible: NodeSet,
    growth: Vec<f64>,
}

impl ContextData {
    /// Number of DFG nodes this data was computed for.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.sw.len()
    }

    /// The transitive closure (for in-crate consumers holding only the
    /// data, e.g. the coarsening pass matching over quotient levels).
    #[inline]
    pub(crate) fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// Precomputes search state for `block` under `model`.
    pub fn compute(block: &BasicBlock, model: &LatencyModel) -> Self {
        let dag = block.dag();
        let sw: Vec<u32> = dag
            .nodes()
            .map(|(_, op)| model.sw_cycles(op.opcode()))
            .collect();
        let hw: Vec<f64> = dag
            .nodes()
            .map(|(_, op)| model.hw_delay(op.opcode()))
            .collect();
        ContextData::compute_with_latencies(block, sw, hw)
    }

    /// Precomputes search state for `block` with explicit per-node
    /// latencies instead of a [`LatencyModel`] walk — the multilevel
    /// coarsening pass summarizes supernode latencies itself (software
    /// cycles add; hardware delay is an internal-critical-path bound).
    /// Topological order, reachability, eligibility and growth scores
    /// are still derived from the block's own structure.
    ///
    /// # Panics
    ///
    /// Panics if `sw` or `hw` is not exactly one entry per DAG node.
    pub fn compute_with_latencies(block: &BasicBlock, sw: Vec<u32>, hw: Vec<f64>) -> Self {
        let dag = block.dag();
        let n = dag.node_count();
        assert_eq!(sw.len(), n, "one sw latency per node");
        assert_eq!(hw.len(), n, "one hw delay per node");
        let topo = TopoOrder::new(dag);
        let reach = Reachability::new(dag, &topo);
        let eligible = block.eligible_nodes();

        // Barrier distances (paper §4.2 "Large Cut"): external inputs and
        // memory operations are hard barriers (distance 0); the block
        // boundary (no predecessors / no successors / live-out escape)
        // acts as a barrier at distance 1 and propagates like any other.
        let is_hard_barrier = |v: NodeId| dag.weight(v).opcode().is_barrier();
        let mut d_up = vec![u32::MAX; n];
        for &v in topo.order() {
            let i = v.index();
            if is_hard_barrier(v) {
                d_up[i] = 0;
                continue;
            }
            let mut best = if dag.in_degree(v) == 0 { 1 } else { u32::MAX };
            for &p in dag.preds(v) {
                best = best.min(d_up[p.index()].saturating_add(1));
            }
            d_up[i] = best;
        }
        let mut d_down = vec![u32::MAX; n];
        for &v in topo.order().iter().rev() {
            let i = v.index();
            if is_hard_barrier(v) {
                d_down[i] = 0;
                continue;
            }
            let mut best = if dag.out_degree(v) == 0 || block.is_live_out(v) {
                1
            } else {
                u32::MAX
            };
            for &s in dag.succs(v) {
                best = best.min(d_down[s.index()].saturating_add(1));
            }
            d_down[i] = best;
        }
        let growth = (0..n)
            .map(|i| {
                let d = d_up[i].min(d_down[i]);
                if d == u32::MAX {
                    0.0
                } else {
                    1.0 / (1.0 + d as f64)
                }
            })
            .collect();

        ContextData {
            topo,
            reach,
            sw,
            hw,
            eligible,
            growth,
        }
    }
}

/// Per-block precomputation shared by every algorithm that searches the
/// block for cuts.
///
/// Built once per basic block in O(V·E/64); it bundles the topological
/// order, the transitive closure (for O(n/64) convexity tests), per-node
/// latencies, the ISE-eligibility mask and the static barrier-distance
/// *growth scores* used by the paper's "Large Cut" gain component. The
/// precomputation lives in a shared [`ContextData`], so caches can keep
/// it alive across requests and reattach it with
/// [`BlockContext::with_data`].
#[derive(Debug, Clone)]
pub struct BlockContext<'a> {
    block: &'a BasicBlock,
    data: Arc<ContextData>,
}

impl<'a> BlockContext<'a> {
    /// Precomputes search state for `block` under `model`.
    pub fn new(block: &'a BasicBlock, model: &LatencyModel) -> Self {
        BlockContext {
            block,
            data: Arc::new(ContextData::compute(block, model)),
        }
    }

    /// Reattaches cached [`ContextData`] to its block, skipping the
    /// precomputation — the fast path of a serving-layer context cache.
    ///
    /// # Panics
    ///
    /// Panics if `data` was computed for a block with a different node
    /// count; callers key their caches so this cannot happen.
    pub fn with_data(block: &'a BasicBlock, data: Arc<ContextData>) -> Self {
        assert_eq!(
            data.node_count(),
            block.dag().node_count(),
            "cached context data does not match block"
        );
        BlockContext { block, data }
    }

    /// The shared precomputation, for caching (cheap `Arc` clone).
    #[inline]
    pub fn data(&self) -> Arc<ContextData> {
        Arc::clone(&self.data)
    }

    /// The block this context was built for.
    #[inline]
    pub fn block(&self) -> &'a BasicBlock {
        self.block
    }

    /// Number of DFG nodes (including external-input markers).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.block.dag().node_count()
    }

    /// Cached topological order.
    #[inline]
    pub fn topo(&self) -> &TopoOrder {
        &self.data.topo
    }

    /// Cached transitive closure.
    #[inline]
    pub fn reach(&self) -> &Reachability {
        &self.data.reach
    }

    /// Software cycles of `node` on the baseline core.
    #[inline]
    pub fn sw_cycles(&self, node: NodeId) -> u32 {
        self.data.sw[node.index()]
    }

    /// Hardware delay of `node` in MAC units.
    #[inline]
    pub fn hw_delay(&self, node: NodeId) -> f64 {
        self.data.hw[node.index()]
    }

    /// Total software cycles of one block execution (all nodes, input
    /// markers included at cost 0) — lets drivers working from cached
    /// contexts avoid a fresh [`LatencyModel`] walk.
    pub fn block_sw_latency(&self) -> u64 {
        self.data.sw.iter().map(|&c| c as u64).sum()
    }

    /// Nodes that may be part of a cut.
    #[inline]
    pub fn eligible(&self) -> &NodeSet {
        &self.data.eligible
    }

    /// Static growth score of `node`: `1/(1 + min(d_up, d_down))` with
    /// distances to the nearest barrier. In `[0, 1]`; higher means closer
    /// to a barrier and therefore favoured by directional growth.
    #[inline]
    pub fn growth_score(&self, node: NodeId) -> f64 {
        self.data.growth[node.index()]
    }

    /// Exact convexity test for an arbitrary node set, O(|cut|·n/64).
    pub fn is_convex(&self, cut: &NodeSet) -> bool {
        convex::is_convex(&self.data.reach, cut)
    }

    /// Upper bound on the merit obtainable from the still-uncovered part
    /// of the block: the software latency of all eligible, unforbidden
    /// nodes. Used by the driver to rank blocks by *speedup potential*
    /// (paper §4: "a function of its execution frequency and estimated
    /// gain from mapping all its nodes to hardware").
    pub fn potential(&self, forbidden: Option<&NodeSet>) -> u64 {
        self.data
            .eligible
            .iter()
            .filter(|&v| forbidden.is_none_or(|f| !f.contains(v)))
            .map(|v| self.data.sw[v.index()] as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BlockBuilder, Opcode};

    fn sample_block() -> BasicBlock {
        // in(x) -> add -> mul -> not (live-out); mul only sees add, so it
        // sits two steps from either barrier.
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let a = b.op(Opcode::Add, &[x, x]).unwrap();
        let m = b.op(Opcode::Mul, &[a, a]).unwrap();
        b.op(Opcode::Not, &[m]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn latencies_and_eligibility() {
        let block = sample_block();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        assert_eq!(ctx.node_count(), 4);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        assert_eq!(ctx.sw_cycles(ids[0]), 0); // input
        assert_eq!(ctx.sw_cycles(ids[2]), 3); // mul
        assert!(!ctx.eligible().contains(ids[0]));
        assert!(ctx.eligible().contains(ids[1]));
    }

    #[test]
    fn growth_scores_peak_at_barriers() {
        let block = sample_block();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // add is adjacent to the input barrier (d_up = 1)
        assert!((ctx.growth_score(ids[1]) - 0.5).abs() < 1e-12);
        // not is a live-out sink (d_down = 1)
        assert!((ctx.growth_score(ids[3]) - 0.5).abs() < 1e-12);
        // mul is two steps from either barrier
        assert!(ctx.growth_score(ids[2]) < ctx.growth_score(ids[1]));
    }

    #[test]
    fn cached_data_reattaches() {
        let block = sample_block();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let data = ctx.data();
        let reused = BlockContext::with_data(&block, data);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        for &v in &ids {
            assert_eq!(reused.sw_cycles(v), ctx.sw_cycles(v));
            assert_eq!(reused.growth_score(v), ctx.growth_score(v));
        }
        assert_eq!(reused.eligible(), ctx.eligible());
        assert_eq!(reused.potential(None), ctx.potential(None));
        assert_eq!(
            reused.block_sw_latency(),
            block.software_latency(&model),
            "block_sw_latency matches the model walk"
        );
    }

    #[test]
    #[should_panic(expected = "does not match block")]
    fn mismatched_data_rejected() {
        let block = sample_block();
        let mut b = BlockBuilder::new("other");
        let x = b.input("x");
        b.op(Opcode::Not, &[x]).unwrap();
        let other = b.build().unwrap();
        let model = LatencyModel::paper_default();
        let data = BlockContext::new(&other, &model).data();
        let _ = BlockContext::with_data(&block, data);
    }

    #[test]
    fn potential_sums_uncovered_sw() {
        let block = sample_block();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        // add(1) + mul(3) + not(1)
        assert_eq!(ctx.potential(None), 5);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let mut covered = NodeSet::new(4);
        covered.insert(ids[2]);
        assert_eq!(ctx.potential(Some(&covered)), 2);
    }
}
