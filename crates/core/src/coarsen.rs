//! Multi-level search: coarsen → K-L → uncoarsen (an hMETIS-style
//! V-cycle) for blocks far beyond the paper's ~700-op scale.
//!
//! The single-level search explores a 2k+-op block from random-seed
//! restarts, which covers a vanishing fraction of the solution space.
//! The multilevel pipeline instead:
//!
//! 1. **Coarsens** the block into a hierarchy of supernode quotients.
//!    Each round greedily matches *fanout-free cone* pairs (a producer
//!    entirely consumed by one node) and *operand-exclusive* pairs (a
//!    node fed entirely by one producer), heaviest connection first.
//!    Both shapes forbid any directed path from leaving the pair and
//!    re-entering it — even through other simultaneously-contracted
//!    pairs — so a matching of them is provably acyclic in the
//!    quotient, and every *convex* coarse cut projects to a convex
//!    fine cut. Dense graphs with few exclusive pairs additionally
//!    match *path-free* heavy edges (no second directed path between
//!    the endpoints); that shape is only pairwise-safe — three
//!    pairwise-clean pairs can close a quotient cycle through each
//!    other's members — so the contraction is cycle-checked and the
//!    round falls back to exclusive-only matching if the check fails.
//!    Forbidden and ineligible nodes (inputs, memory barriers) never
//!    merge.
//! 2. **Searches** the coarsest level with the existing portfolio
//!    (queue strategy, restart diversification, pooled arenas). A
//!    supernode's software latency is the sum of its members'; its
//!    hardware delay is an upper bound on the members' internal
//!    critical path — so coarse merit *under*-estimates fine merit and
//!    the coarse search stays conservative.
//! 3. **Uncoarsens**: each level's cut is projected one level down and
//!    K-L re-runs seeded from the projected cut with the free set
//!    restricted to a boundary band around it, instead of random
//!    restarts. A projected cut may under-count fine I/O and start
//!    illegal; the pass loop already tolerates illegal intermediate
//!    cuts and records only legal ones.
//!
//! If coarsening fails to shrink the block or the V-cycle bottoms out
//! empty while a single-level search might still find a cut, the
//! pipeline falls back to the single-level portfolio, so enabling
//! multilevel never turns a findable cut into an empty result.

use crate::cache::CacheStats;
use crate::kl::{portfolio_search, SearchConfig, SearchScratch, TrajectoryReport};
use crate::{BlockContext, ContextData, Cut, IoConstraints};
use isegen_graph::{Contraction, Dag, NodeId, NodeSet};
use isegen_ir::{BasicBlock, Operation};
use std::sync::Arc;
use std::time::Instant;

/// Knobs of the multilevel coarsen→search→uncoarsen pipeline
/// ([`SearchConfig::with_multilevel`]).
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`MultilevelConfig::default`] (or [`MultilevelConfig::new`]) and the
/// `with_*` setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct MultilevelConfig {
    /// Size gate and coarsening target: a block whose *free* node count
    /// is at or below this runs the plain single-level search bit for
    /// bit, and coarsening stops once a level shrinks to at most this
    /// many free nodes. Values below 8 are clamped up internally.
    pub min_coarse_ops: usize,
    /// Maximum number of coarse levels stacked above the original
    /// block (clamped to `1..=32` internally). Each round of matching
    /// removes up to half the nodes, so 8 levels cover blocks ~256×
    /// beyond the coarsening target.
    pub max_levels: usize,
    /// Refinement free-set radius: when a cut is projected down a
    /// level, K-L may toggle only nodes within this many undirected
    /// hops of the projected cut (clamped to ≥ 1). Wider bands refine
    /// more aggressively at more cost.
    pub boundary_band: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            min_coarse_ops: 512,
            max_levels: 8,
            boundary_band: 8,
        }
    }
}

impl MultilevelConfig {
    /// Alias of [`MultilevelConfig::default`], reading better at the
    /// head of a builder chain.
    pub fn new() -> Self {
        MultilevelConfig::default()
    }

    /// Sets the size gate / coarsening target (see
    /// [`MultilevelConfig::min_coarse_ops`]).
    pub fn with_min_coarse_ops(mut self, min_coarse_ops: usize) -> Self {
        self.min_coarse_ops = min_coarse_ops;
        self
    }

    /// Sets the maximum number of coarse levels.
    pub fn with_max_levels(mut self, max_levels: usize) -> Self {
        self.max_levels = max_levels;
        self
    }

    /// Sets the refinement boundary-band radius.
    pub fn with_boundary_band(mut self, boundary_band: usize) -> Self {
        self.boundary_band = boundary_band;
        self
    }

    /// Clamps every knob into its sane operating range.
    fn normalized(&self) -> MultilevelConfig {
        MultilevelConfig {
            min_coarse_ops: self.min_coarse_ops.max(8),
            max_levels: self.max_levels.clamp(1, 32),
            boundary_band: self.boundary_band.max(1),
        }
    }
}

/// Evidence from one level of the V-cycle, coarsest first — the
/// substance of `perf_report --strategy multilevel`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct LevelReport {
    /// Node count of the level's (quotient) block.
    pub nodes: usize,
    /// Free (searchable) node count at this level.
    pub free_ops: usize,
    /// Nodes of the projected seed cut this level refined from
    /// (0 at the coarsest level, which searches from scratch).
    pub seed_ops: usize,
    /// Size of the restricted free set actually searched (the boundary
    /// band around the seed; equals `free_ops` at the coarsest level).
    pub band_ops: usize,
    /// Merit of the best cut after this level's search, measured in
    /// this level's (conservative) latency summary.
    pub merit: f64,
    /// Lazy-queue pops spent by this level's search.
    pub refine_pops: u64,
    /// Wall time of this level's search, in milliseconds.
    pub wall_ms: f64,
}

/// What the multilevel pipeline did for one search, attached to
/// [`crate::SearchOutcome::multilevel`] whenever the pipeline ran.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct MultilevelReport {
    /// Per-level search evidence in execution order: coarsest level
    /// first, the original block last.
    pub levels: Vec<LevelReport>,
    /// Wall time spent building the coarsening hierarchy, in
    /// milliseconds.
    pub coarsen_wall_ms: f64,
    /// Whether the pipeline fell back to a full single-level search
    /// (coarsening failed to shrink the block, or the V-cycle bottomed
    /// out with an empty cut).
    pub fell_back: bool,
}

/// One coarse level: the quotient block, its context, the free mask,
/// the per-node latency summaries, and the contraction mapping the next
/// finer level's nodes into this one.
struct Level {
    block: BasicBlock,
    data: Arc<ContextData>,
    free: NodeSet,
    sw: Vec<u32>,
    hw: Vec<f64>,
    contraction: Contraction,
}

/// Greedy contractible matching over the free nodes of one level, in
/// node-index order (blocks are emitted topologically, so this is a
/// deterministic topological sweep). Returns one cluster label per
/// node, or `None` when nothing matched.
///
/// Two pair shapes are matched, in preference order:
///
/// * **Exclusive** — along an edge `u→v`, all of `u`'s out-edges land
///   on `v` (fanout-free cone) or all of `v`'s in-edges come from `u`
///   (operand-exclusive). No directed path can enter such a pair at `v`
///   and leave at `u` — exactly what a quotient cycle through the pair
///   would need — so *any* set of disjoint exclusive pairs contracts
///   to a DAG unconditionally.
/// * **Path-free** (only with `reach`) — an edge `u→v` with no other
///   directed path `u ⇝ v`. Safe for a single pair but not jointly:
///   three pairwise-clean pairs can close a quotient cycle through each
///   other's members, so a matching that uses this shape must be
///   cycle-checked by [`Contraction::new`] and retried without `reach`
///   if it fails. The payoff is shrink on dense graphs (random layered
///   DAGs) where exclusive pairs are rare and matching would stall far
///   above the coarsening target.
fn match_clusters(
    dag: &Dag<Operation>,
    free: &NodeSet,
    reach: Option<&isegen_graph::Reachability>,
) -> Option<Vec<u32>> {
    let n = dag.node_count();
    let mut partner: Vec<Option<NodeId>> = vec![None; n];
    let mut matched = NodeSet::new(n);
    let mut any = false;
    let mut cands: Vec<(usize, NodeId)> = Vec::new();
    // Exclusive pairs outrank path-free pairs regardless of fan width.
    const EXCLUSIVE: usize = 1 << 32;
    for i in 0..n {
        let u = NodeId::from_index(i);
        if !free.contains(u) || matched.contains(u) {
            continue;
        }
        cands.clear();
        let succs = dag.succs(u);
        let preds = dag.preds(u);
        // u as a fanout-free cone into its sole consumer.
        if let Some(&v0) = succs.first() {
            if succs.iter().all(|&s| s == v0) {
                cands.push((EXCLUSIVE + succs.len(), v0));
            }
        }
        // A consumer fed exclusively by u.
        for &v in succs {
            let vp = dag.preds(v);
            if !vp.is_empty() && vp.iter().all(|&p| p == u) {
                cands.push((EXCLUSIVE + vp.len(), v));
            }
        }
        // u fed exclusively by its sole producer.
        if let Some(&p0) = preds.first() {
            if preds.iter().all(|&p| p == p0) {
                cands.push((EXCLUSIVE + preds.len(), p0));
            }
        }
        // A producer entirely consumed by u.
        for &p in preds {
            let ps = dag.succs(p);
            if !ps.is_empty() && ps.iter().all(|&s| s == u) {
                cands.push((EXCLUSIVE + ps.len(), p));
            }
        }
        // Path-free heavy edges, weighted by parallel-edge multiplicity.
        if let Some(reach) = reach {
            for &v in succs {
                if reach.descendants(u).is_disjoint(reach.ancestors(v)) {
                    let multiplicity = succs.iter().filter(|&&s| s == v).count();
                    cands.push((multiplicity, v));
                }
            }
            for &p in preds {
                if reach.descendants(p).is_disjoint(reach.ancestors(u)) {
                    let multiplicity = preds.iter().filter(|&&q| q == p).count();
                    cands.push((multiplicity, p));
                }
            }
        }
        // Heavy-edge choice: most operand slots first, ties to the
        // lowest partner id — deterministic.
        let mut best: Option<(usize, NodeId)> = None;
        for &(w, v) in &cands {
            if v == u || !free.contains(v) || matched.contains(v) {
                continue;
            }
            let better = match best {
                None => true,
                Some((bw, bv)) => w > bw || (w == bw && v.index() < bv.index()),
            };
            if better {
                best = Some((w, v));
            }
        }
        if let Some((_, v)) = best {
            matched.insert(u);
            matched.insert(v);
            partner[u.index()] = Some(v);
            partner[v.index()] = Some(u);
            any = true;
        }
    }
    if !any {
        return None;
    }
    Some(
        (0..n)
            .map(|i| match partner[i] {
                Some(p) => i.min(p.index()) as u32,
                None => i as u32,
            })
            .collect(),
    )
}

/// Contracts one level into the next-coarser one, or `None` when the
/// matching finds nothing (or shrinks the level by less than 2%, at
/// which point further rounds are not worth their setup cost).
fn coarsen_step(
    block: &BasicBlock,
    free: &NodeSet,
    sw: &[u32],
    hw: &[f64],
    reach: &isegen_graph::Reachability,
) -> Option<Level> {
    let dag = block.dag();
    let n = dag.node_count();
    // Path-free pairs are only pairwise-safe; when their joint quotient
    // turns out cyclic, fall back to the unconditionally safe
    // exclusive-only matching for this round.
    let contraction = match Contraction::new(dag, &match_clusters(dag, free, Some(reach))?) {
        Some(c) => c,
        None => {
            let labels = match_clusters(dag, free, None)?;
            let c = Contraction::new(dag, &labels);
            debug_assert!(c.is_some(), "exclusive matching produced a cyclic quotient");
            c?
        }
    };
    let k = contraction.coarse_count();
    if k * 50 >= n * 49 {
        return None; // shrank by < 2%: not worth another level
    }

    // Quotient block: a supernode carries its root member's opcode
    // (members are never inputs or barriers, so eligibility and growth
    // stay honest), every inter-cluster edge with multiplicity, and
    // live-out when any member escapes the block.
    let quotient = contraction.quotient(dag, |_, members| Operation::new(block.opcode(members[0])));
    let mut live = NodeSet::new(k);
    for v in block.live_outs().iter() {
        live.insert(contraction.coarse_of(v));
    }
    let coarse_block = BasicBlock::from_dag(block.name(), quotient, block.frequency(), live);

    // Latency summaries: software adds exactly; the summed hardware
    // delay upper-bounds the cluster's internal critical path, keeping
    // coarse merit conservative.
    let mut csw = vec![0u32; k];
    let mut chw = vec![0f64; k];
    for c in 0..k {
        for &m in contraction.members(NodeId::from_index(c)) {
            csw[c] += sw[m.index()];
            chw[c] += hw[m.index()];
        }
    }
    let data = Arc::new(ContextData::compute_with_latencies(
        &coarse_block,
        csw.clone(),
        chw.clone(),
    ));

    // Only free nodes merge, so a cluster is free iff its members are.
    let mut cfree = NodeSet::new(k);
    for c in 0..k {
        let root = contraction.members(NodeId::from_index(c))[0];
        if free.contains(root) {
            cfree.insert(NodeId::from_index(c));
        }
    }

    Some(Level {
        block: coarse_block,
        data,
        free: cfree,
        sw: csw,
        hw: chw,
        contraction,
    })
}

/// Builds the coarsening hierarchy bottom-up until the free set fits
/// the coarsening target, the level cap is hit, or matching stalls.
fn build_hierarchy(ctx: &BlockContext<'_>, free: &NodeSet, ml: &MultilevelConfig) -> Vec<Level> {
    let n0 = ctx.node_count();
    let sw0: Vec<u32> = (0..n0)
        .map(|i| ctx.sw_cycles(NodeId::from_index(i)))
        .collect();
    let hw0: Vec<f64> = (0..n0)
        .map(|i| ctx.hw_delay(NodeId::from_index(i)))
        .collect();
    let mut levels: Vec<Level> = Vec::new();
    while levels.len() < ml.max_levels {
        let next = {
            let (block, cfree, sw, hw, reach) = match levels.last() {
                None => (
                    ctx.block(),
                    free,
                    sw0.as_slice(),
                    hw0.as_slice(),
                    ctx.reach(),
                ),
                Some(l) => (
                    &l.block,
                    &l.free,
                    l.sw.as_slice(),
                    l.hw.as_slice(),
                    l.data.reach(),
                ),
            };
            if cfree.len() <= ml.min_coarse_ops {
                break;
            }
            coarsen_step(block, cfree, sw, hw, reach)
        };
        match next {
            Some(level) => levels.push(level),
            None => break,
        }
    }
    levels
}

/// Free nodes within `hops` undirected hops of the seed cut — the
/// restricted free set of one refinement level. The seed itself is
/// always included, so K-L can still toggle any seed node back out.
///
/// The band is additionally size-capped at `64 × hops` nodes: on a
/// sparse graph the band grows roughly linearly in `hops` anyway, while
/// on a dense graph a few hops would otherwise swallow the entire free
/// set and refinement would cost full-search prices. The BFS is in
/// node-index order, so the cap truncates deterministically.
fn boundary_band(dag: &Dag<Operation>, seed: &NodeSet, hops: usize, free: &NodeSet) -> NodeSet {
    let cap = hops.saturating_mul(64).max(seed.len());
    let mut band = seed.clone();
    band.intersect_with(free);
    let mut frontier: Vec<NodeId> = band.iter().collect();
    'grow: for _ in 0..hops {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in dag.preds(u).iter().chain(dag.succs(u).iter()) {
                if band.len() >= cap {
                    break 'grow;
                }
                if free.contains(w) && band.insert(w) {
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    band
}

/// The level-independent knobs of one V-cycle's refinement sweep.
struct RefineKnobs<'a> {
    ml: &'a MultilevelConfig,
    io: IoConstraints,
    config: &'a SearchConfig,
    threads: usize,
}

/// Projects a cut one level down and re-runs K-L seeded from it with
/// the free set restricted to the boundary band.
fn refine_level(
    fctx: &BlockContext<'_>,
    ffree: &NodeSet,
    seed: &NodeSet,
    knobs: &RefineKnobs<'_>,
    pool: &mut Vec<SearchScratch>,
) -> (Cut, CacheStats, Vec<TrajectoryReport>, LevelReport) {
    let t = Instant::now();
    let band = boundary_band(fctx.block().dag(), seed, knobs.ml.boundary_band, ffree);
    let (cut, stats, reports) = portfolio_search(
        fctx,
        knobs.io,
        knobs.config,
        &band,
        knobs.threads,
        pool,
        Some(seed),
    );
    let report = LevelReport {
        nodes: fctx.node_count(),
        free_ops: ffree.len(),
        seed_ops: seed.len(),
        band_ops: band.len(),
        merit: cut.merit(),
        refine_pops: stats.queue_pops,
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
    };
    (cut, stats, reports, report)
}

/// The multilevel V-cycle: coarsen, search the coarsest level with the
/// full portfolio, then project-and-refine back down to the original
/// block. Falls back to the single-level portfolio when coarsening
/// stalls or the cycle bottoms out empty.
pub(crate) fn multilevel_search(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    config: &SearchConfig,
    ml: &MultilevelConfig,
    free: &NodeSet,
    threads: usize,
    pool: &mut Vec<SearchScratch>,
) -> (
    Cut,
    CacheStats,
    Vec<TrajectoryReport>,
    Option<MultilevelReport>,
) {
    let ml = ml.normalized();
    let t0 = Instant::now();
    let levels = build_hierarchy(ctx, free, &ml);
    let coarsen_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut stats = CacheStats::default();
    let mut reports = Vec::new();
    let mut level_reports: Vec<LevelReport> = Vec::new();
    let mut final_cut = Cut::empty(ctx.node_count());

    if !levels.is_empty() {
        // Coarsest level: the restart portfolio on the small graph.
        // When matching stalled far above the target size (dense graphs
        // run out of contractible pairs), restart diversification up
        // there costs near-single-level prices — drop to one restart and
        // let the seeded refinements below recover the diversity.
        let top = levels.last().expect("levels non-empty");
        let stalled = top.free.len() > ml.min_coarse_ops.saturating_mul(3) / 2;
        let coarse_config = if stalled {
            config.clone().with_restarts(1)
        } else {
            config.clone()
        };
        let t = Instant::now();
        let tctx = BlockContext::with_data(&top.block, Arc::clone(&top.data));
        let (coarse_cut, s, r) =
            portfolio_search(&tctx, io, &coarse_config, &top.free, threads, pool, None);
        stats.absorb(s);
        reports.extend(r);
        level_reports.push(LevelReport {
            nodes: top.block.node_count(),
            free_ops: top.free.len(),
            seed_ops: 0,
            band_ops: top.free.len(),
            merit: coarse_cut.merit(),
            refine_pops: s.queue_pops,
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
        });

        // Uncoarsen: project each level's cut one level down and refine.
        let knobs = RefineKnobs {
            ml: &ml,
            io,
            config,
            threads,
        };
        let mut cur = coarse_cut.nodes().clone();
        for i in (0..levels.len()).rev() {
            let seed = levels[i].contraction.project(&cur);
            let (refined, s, r, lr) = if i == 0 {
                refine_level(ctx, free, &seed, &knobs, pool)
            } else {
                let finer = &levels[i - 1];
                let fctx = BlockContext::with_data(&finer.block, Arc::clone(&finer.data));
                refine_level(&fctx, &finer.free, &seed, &knobs, pool)
            };
            stats.absorb(s);
            reports.extend(r);
            level_reports.push(lr);
            // An empty refinement keeps projecting the raw seed: a cut
            // that is illegal at this granularity may still legalize at
            // a finer one, where the band has more room to move.
            cur = if refined.is_empty() {
                seed
            } else {
                refined.nodes().clone()
            };
            if i == 0 {
                final_cut = refined;
            }
        }
    }

    // Safety net: never let the pipeline turn a findable cut into an
    // empty result — when the V-cycle produced nothing, pay for one
    // plain single-level search.
    let fell_back = final_cut.is_empty();
    if fell_back {
        let (cut, s, r) = portfolio_search(ctx, io, config, free, threads, pool, None);
        stats.absorb(s);
        reports.extend(r);
        final_cut = cut;
    }

    let report = MultilevelReport {
        levels: level_reports,
        coarsen_wall_ms,
        fell_back,
    };
    (final_cut, stats, reports, Some(report))
}

/// Test scaffolding for the coarsen→project round-trip property: builds
/// the hierarchy, searches every level in isolation, projects each cut
/// down to the original block and checks the projection invariants —
/// convexity, membership in the free set, exact software latency, and
/// the conservative direction of the coarse I/O counts and hardware
/// delay. Returns the number of coarse levels built. Hidden: not API.
#[doc(hidden)]
pub fn roundtrip_audit(
    ctx: &BlockContext<'_>,
    ml: &MultilevelConfig,
    io: IoConstraints,
) -> Result<usize, String> {
    let ml = ml.normalized();
    let free = ctx.eligible().clone();
    let levels = build_hierarchy(ctx, &free, &ml);
    let config = SearchConfig::new().with_restarts(1).with_max_passes(2);
    let mut pool = Vec::new();
    for (idx, level) in levels.iter().enumerate() {
        let lctx = BlockContext::with_data(&level.block, Arc::clone(&level.data));
        let (cut, _, _) = portfolio_search(&lctx, io, &config, &level.free, 1, &mut pool, None);
        if cut.is_empty() {
            continue;
        }
        if !lctx.is_convex(cut.nodes()) {
            return Err(format!(
                "level {idx}: coarse cut is not convex on its own level"
            ));
        }
        let mut cur = cut.nodes().clone();
        for j in (0..=idx).rev() {
            cur = levels[j].contraction.project(&cur);
        }
        if !ctx.is_convex(&cur) {
            return Err(format!(
                "level {idx}: projected cut is not convex on the fine DAG"
            ));
        }
        if !cur.is_subset(&free) {
            return Err(format!("level {idx}: projected cut leaves the free set"));
        }
        let fine = Cut::evaluate(ctx, cur);
        if fine.software_latency() != cut.software_latency() {
            return Err(format!(
                "level {idx}: sw latency drifted in projection ({} vs {})",
                cut.software_latency(),
                fine.software_latency()
            ));
        }
        if fine.hardware_latency() > cut.hardware_latency() + 1e-9 {
            return Err(format!(
                "level {idx}: coarse hw delay {} is not conservative (fine {})",
                cut.hardware_latency(),
                fine.hardware_latency()
            ));
        }
        if fine.input_count() < cut.input_count() || fine.output_count() < cut.output_count() {
            return Err(format!(
                "level {idx}: coarse I/O over-counts fine I/O ({}/{} vs {}/{})",
                cut.input_count(),
                cut.output_count(),
                fine.input_count(),
                fine.output_count()
            ));
        }
    }
    Ok(levels.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Search;
    use isegen_ir::{BlockBuilder, LatencyModel, Opcode};

    /// A long multiply-accumulate chain with a few side taps: deep
    /// enough to coarsen several times.
    fn chain_block(len: usize) -> BasicBlock {
        let mut b = BlockBuilder::new("chain");
        let x = b.input("x");
        let y = b.input("y");
        let mut acc = b.op(Opcode::Mul, &[x, y]).unwrap();
        for i in 0..len {
            let op = if i % 3 == 0 { Opcode::Mul } else { Opcode::Add };
            acc = b.op(op, &[acc, if i % 5 == 0 { x } else { y }]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn hierarchy_shrinks_and_projects() {
        let block = chain_block(96);
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ml = MultilevelConfig::new().with_min_coarse_ops(8);
        let free = ctx.eligible().clone();
        let levels = build_hierarchy(&ctx, &free, &ml.normalized());
        assert!(!levels.is_empty(), "a 96-op chain must coarsen");
        let mut prev = free.len();
        for l in &levels {
            assert!(l.free.len() < prev, "each level must shrink the free set");
            prev = l.free.len();
        }
        let n = roundtrip_audit(&ctx, &ml, IoConstraints::new(4, 2)).unwrap();
        assert_eq!(n, levels.len());
    }

    #[test]
    fn multilevel_cut_is_legal_and_convex() {
        let block = chain_block(120);
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(4, 2);
        let config = SearchConfig::default()
            .with_multilevel(MultilevelConfig::new().with_min_coarse_ops(16));
        let outcome = Search::new(config).run(&ctx, io);
        let report = outcome.multilevel.expect("pipeline must have run");
        assert!(!report.levels.is_empty());
        assert!(!outcome.cut.is_empty(), "the chain has profitable cuts");
        assert!(outcome.cut.satisfies_io(io));
        assert!(ctx.is_convex(outcome.cut.nodes()));
        assert!(outcome.cut.merit() > 0.0);
    }

    #[test]
    fn collapses_to_single_level_below_threshold() {
        let block = chain_block(40);
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(4, 2);
        let plain = Search::new(SearchConfig::default()).run(&ctx, io);
        let ml = Search::new(SearchConfig::default().with_multilevel(MultilevelConfig::default()))
            .run(&ctx, io);
        assert_eq!(
            plain.cut, ml.cut,
            "below min_coarse_ops the paths are identical"
        );
        assert_eq!(plain.stats, ml.stats);
        assert!(ml.multilevel.is_none(), "the pipeline must not have run");
    }

    #[test]
    fn forbidden_nodes_never_merge_or_enter() {
        let block = chain_block(120);
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(4, 2);
        // Forbid a stripe of the chain.
        let mut forbidden = NodeSet::new(ctx.node_count());
        for (i, v) in block.dag().node_ids().enumerate() {
            if i % 4 == 0 {
                forbidden.insert(v);
            }
        }
        let config = SearchConfig::default()
            .with_multilevel(MultilevelConfig::new().with_min_coarse_ops(16));
        let outcome = Search::new(config).forbidden(&forbidden).run(&ctx, io);
        assert!(outcome.cut.nodes().is_disjoint(&forbidden));
        if !outcome.cut.is_empty() {
            assert!(ctx.is_convex(outcome.cut.nodes()));
            assert!(outcome.cut.satisfies_io(io));
        }
    }

    #[test]
    fn determinism_across_thread_counts() {
        let block = chain_block(150);
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(4, 2);
        let config = SearchConfig::default()
            .with_multilevel(MultilevelConfig::new().with_min_coarse_ops(16));
        let seq = Search::new(config.clone()).run(&ctx, io);
        let par = Search::new(config).threads(4).run(&ctx, io);
        assert_eq!(
            seq.cut, par.cut,
            "multilevel must stay thread-count independent"
        );
    }

    #[test]
    fn audited_vcycle_passes() {
        let block = chain_block(100);
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(4, 2);
        let config = SearchConfig::default()
            .with_audit_cadence(4)
            .with_multilevel(MultilevelConfig::new().with_min_coarse_ops(16));
        let outcome = Search::new(config).run(&ctx, io);
        assert!(
            outcome.stats.audit_checks > 0,
            "the auditor must have fired at every level of the V-cycle"
        );
        assert!(!outcome.cut.is_empty());
    }
}
