use crate::engine::{Probe, ToggleEngine};
use crate::{BlockContext, IoConstraints};
use isegen_graph::NodeId;

/// Weights of the five gain-function components (paper §4.2).
///
/// The gain for toggling node `v` with respect to the current cut `C` is
///
/// ```text
/// Gain(v) = w_merit · F1  + w_io_penalty · F2 + w_affinity · F3
///         + w_growth · F4 + w_independence · F5
/// ```
///
/// with
///
/// * `F1` — merit `M(C′)` of the cut after the toggle (0 if non-convex),
/// * `F2` — `−(input violations + output violations)` of `C′`,
/// * `F3` — `+N(v,C)` when entering, `−N(v,C)` when leaving (`N` =
///   neighbours already in the cut): joining neighbours is favoured,
///   removing embedded nodes is resisted,
/// * `F4` — `±` the node's static barrier-proximity growth score
///   (directional growth; near-barrier nodes are consistently favoured,
///   which aligns cuts with the DFG's regular regions and favours reuse),
/// * `F5` — for leaving moves, the summed hardware critical paths of the
///   *other* connected components (lets hardware nodes retreat so
///   independent subgraphs can grow).
///
/// The paper determined its weights experimentally and does not publish
/// them; the defaults here were tuned on the bundled workloads (see the
/// `ablation` experiment) so that the I/O penalty dominates per-node merit
/// differences and the structural terms act as directional tie-breakers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainWeights {
    /// Weight of the merit component `F1`.
    pub merit: f64,
    /// Weight of the I/O violation penalty `F2` ("a large factor").
    pub io_penalty: f64,
    /// Weight of the convexity-affinity component `F3`.
    pub affinity: f64,
    /// Weight of the directional-growth component `F4`.
    pub growth: f64,
    /// Weight of the independent-cuts component `F5`.
    pub independence: f64,
}

impl Default for GainWeights {
    fn default() -> Self {
        GainWeights {
            merit: 1.0,
            io_penalty: 50.0,
            affinity: 1.0,
            growth: 1.0,
            independence: 0.5,
        }
    }
}

impl GainWeights {
    /// Combines a [`Probe`] into the scalar gain.
    pub fn combine(
        &self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        v: NodeId,
        probe: &Probe,
    ) -> f64 {
        let f1 = probe.merit;
        let f2 = -(io.violation(probe.inputs, probe.outputs) as f64);
        let n = probe.neighbors_in_cut as f64;
        let f3 = if probe.entering { n } else { -n };
        let g = ctx.growth_score(v);
        let f4 = if probe.entering { g } else { -g };
        let f5 = if probe.entering {
            0.0
        } else {
            probe.other_components_hw
        };
        self.merit * f1
            + self.io_penalty * f2
            + self.affinity * f3
            + self.growth * f4
            + self.independence * f5
    }
}

/// Evaluates the gain of toggling `v` against the engine's current cut.
pub(crate) fn gain_of(
    engine: &ToggleEngine<'_, '_>,
    ctx: &BlockContext<'_>,
    weights: &GainWeights,
    io: IoConstraints,
    v: NodeId,
) -> f64 {
    let probe = engine.probe(v);
    weights.combine(ctx, io, v, &probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ToggleEngine;
    use isegen_ir::{BlockBuilder, LatencyModel, Opcode};

    #[test]
    fn io_violations_are_penalised() {
        // A 2-input add under (2,1) is fine; a 4-input tree root is not
        // until its operands join.
        let mut b = BlockBuilder::new("t");
        let (p, q, r, s) = (b.input("p"), b.input("q"), b.input("r"), b.input("s"));
        let a1 = b.op(Opcode::Add, &[p, q]).unwrap();
        let a2 = b.op(Opcode::Add, &[r, s]).unwrap();
        let root = b.op(Opcode::Add, &[a1, a2]).unwrap();
        let block = b.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(2, 1);
        let weights = GainWeights::default();
        let mut engine = ToggleEngine::new(&ctx);
        engine.toggle(a1);
        engine.toggle(a2);
        // cut {a1, a2} has 4 inputs, 2 outputs: violations. Adding the root
        // keeps 4 inputs but drops outputs to 1; gain should exceed that of
        // re-removing a1 ... all the structural terms should favour root.
        let g_root = gain_of(&engine, &ctx, &weights, io, root);
        let probe_root = engine.probe(root);
        assert!(probe_root.entering);
        assert_eq!(probe_root.inputs, 4);
        assert_eq!(probe_root.outputs, 1);
        // the penalty term is negative (2 input violations)
        assert!(g_root < probe_root.merit, "penalty must reduce the gain");
    }

    #[test]
    fn affinity_prefers_nodes_with_cut_neighbors() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let a = b.op(Opcode::Add, &[x, x]).unwrap();
        let c = b.op(Opcode::Xor, &[a, a]).unwrap();
        let lone = b.op(Opcode::Xor, &[x, x]).unwrap();
        let block = b.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut engine = ToggleEngine::new(&ctx);
        engine.toggle(a);
        let pc = engine.probe(c);
        let pl = engine.probe(lone);
        assert_eq!(pc.neighbors_in_cut, 1);
        assert_eq!(pl.neighbors_in_cut, 0);
        // both xors have identical latency profiles, so affinity decides
        let weights = GainWeights::default();
        let io = IoConstraints::new(4, 2);
        let gc = weights.combine(&ctx, io, c, &pc);
        let gl = weights.combine(&ctx, io, lone, &pl);
        assert!(
            gc > gl,
            "neighbour of the cut should score higher: {gc} vs {gl}"
        );
    }

    #[test]
    fn default_weights_are_positive() {
        let w = GainWeights::default();
        assert!(w.merit > 0.0);
        assert!(w.io_penalty > 0.0);
        assert!(w.affinity > 0.0);
        assert!(w.growth > 0.0);
        assert!(w.independence > 0.0);
    }
}
