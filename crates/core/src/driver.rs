use crate::kl::{IsegenFinder, SearchConfig};
use crate::speedup::application_speedup;
use crate::{BlockContext, Cut, IoConstraints};
use isegen_graph::NodeSet;
use isegen_ir::{Application, LatencyModel};
use isegen_match::{find_disjoint_instances, Pattern};

/// A single-cut identification algorithm, pluggable into the
/// whole-application driver ([`Generator`]).
///
/// ISEGEN ([`IsegenFinder`]), the exhaustive baselines and the genetic
/// baseline all implement this trait, so every algorithm is compared under
/// the *same* Problem-2 driver, as in the paper's evaluation.
pub trait CutFinder {
    /// Finds the best cut of `ctx`'s block under `io`, avoiding
    /// `forbidden` nodes. Returns an empty cut when nothing profitable is
    /// found.
    fn find_cut(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
    ) -> Cut;

    /// [`CutFinder::find_cut`] with a thread budget for *intra-block*
    /// parallelism. The batched driver splits its overall budget between
    /// block-level waves and each block's search and passes the share
    /// here. The result must not depend on `threads` (parallel finders
    /// are required to be byte-identical at every thread count); the
    /// default implementation ignores the budget and searches
    /// sequentially.
    fn find_cut_budget(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
        threads: usize,
    ) -> Cut {
        let _ = threads;
        self.find_cut(ctx, io, forbidden)
    }

    /// Short identifier used in reports.
    fn name(&self) -> &str {
        "custom"
    }
}

/// Configuration of the whole-application ISE generation (Problem 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IseConfig {
    /// Register-file port budget per ISE.
    pub io: IoConstraints,
    /// Maximum number of ISEs (AFUs) to generate, the paper's `N_ISE`.
    pub max_ises: usize,
    /// When `true`, every generated ISE is matched against the whole
    /// application and all node-disjoint isomorphic instances are
    /// accelerated by the same AFU — the reuse exploitation that lets
    /// ISEGEN cover AES's regular structure (paper §5, Fig. 7).
    pub reuse_matching: bool,
}

impl IseConfig {
    /// The paper's headline configuration: I/O `(4,2)`, `N_ISE = 4`,
    /// reuse matching on.
    pub fn paper_default() -> Self {
        IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 4,
            reuse_matching: true,
        }
    }
}

/// One matched occurrence of an ISE in some block.
#[derive(Debug, Clone, PartialEq)]
pub struct IseInstance {
    /// Index of the block (into [`Application::blocks`]) containing the
    /// instance.
    pub block_index: usize,
    /// The nodes of the occurrence.
    pub nodes: NodeSet,
}

/// A generated instruction set extension: the defining cut plus every
/// accelerated instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Ise {
    /// Index of the block the cut was identified in.
    pub block_index: usize,
    /// The defining cut (first instance).
    pub cut: Cut,
    /// All accelerated instances, including the defining one.
    pub instances: Vec<IseInstance>,
    /// Cycles saved per single execution of one instance.
    pub saved_per_execution: u64,
}

/// The result of whole-application ISE generation.
#[derive(Debug, Clone, PartialEq)]
pub struct IseSelection {
    /// The generated ISEs, in selection order.
    pub ises: Vec<Ise>,
    /// Total dynamic software latency of the application (cycles).
    pub total_sw_cycles: u64,
    /// Total dynamic cycles saved by all ISE instances.
    pub saved_cycles: u64,
}

impl IseSelection {
    /// Whole-application speedup
    /// `Λ_sw / (Λ_sw − Σ freq·instances·saved)` (paper §5).
    pub fn speedup(&self) -> f64 {
        application_speedup(self.total_sw_cycles, self.saved_cycles)
    }

    /// Total number of accelerated instances across all ISEs.
    pub fn instance_count(&self) -> usize {
        self.ises.iter().map(|i| i.instances.len()).sum()
    }
}

/// Builder-style entry point for whole-application ISE generation —
/// the Problem-2 driver.
///
/// Per iteration the driver ranks blocks by *speedup potential*
/// (`frequency × software latency of the still-uncovered eligible nodes`,
/// paper §4), asks the finder for a cut in the most promising block
/// (falling back to the next block when nothing profitable is found),
/// then — if [`IseConfig::reuse_matching`] — matches the cut across the
/// whole application and accelerates every valid, node-disjoint instance
/// with the same AFU. Selected nodes are locked away from later ISEs.
///
/// ```no_run
/// # use isegen_core::{Generator, IseConfig, SearchConfig};
/// # fn demo(app: &isegen_ir::Application, model: &isegen_ir::LatencyModel) {
/// let selection = Generator::new(IseConfig::paper_default())
///     .search(SearchConfig::default())
///     .threads(8)
///     .run(app, model);
/// println!("speedup {:.2}×", selection.speedup());
/// # }
/// ```
///
/// The defaults run ISEGEN ([`IsegenFinder`]) sequentially; swap the
/// algorithm with [`Generator::finder`] (any [`CutFinder`]) and fan
/// block searches out with [`Generator::threads`]. With more than one
/// thread the driver batches: cut memoisation plus speculative search
/// waves, byte-identical to the sequential driver at every thread count
/// (see [`Generator::run`] for the exact guarantee).
#[derive(Debug, Clone)]
pub struct Generator<F = IsegenFinder> {
    config: IseConfig,
    finder: F,
    threads: usize,
}

impl Generator<IsegenFinder> {
    /// A sequential ISEGEN generator with default search settings.
    pub fn new(config: IseConfig) -> Self {
        Generator {
            config,
            finder: IsegenFinder::default(),
            threads: 1,
        }
    }

    /// Replaces the ISEGEN search configuration (resets the finder).
    pub fn search(mut self, search: SearchConfig) -> Self {
        self.finder = IsegenFinder::new(search);
        self
    }
}

impl<F: CutFinder> Generator<F> {
    /// Swaps in a different cut-identification algorithm, e.g. one of
    /// the baseline finders.
    pub fn finder<G: CutFinder>(self, finder: G) -> Generator<G> {
        Generator {
            config: self.config,
            finder,
            threads: self.threads,
        }
    }

    /// Thread budget for the batched driver (`1`, the default, runs the
    /// sequential driver; `0` is treated as `1`). The budget feeds both
    /// block-level waves and each block's intra-block portfolio.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The generation configuration.
    pub fn config(&self) -> &IseConfig {
        &self.config
    }

    /// Borrows the finder, e.g. to read accumulated statistics after a
    /// run ([`IsegenFinder::accumulated_stats`]).
    pub fn finder_ref(&self) -> &F {
        &self.finder
    }

    /// Consumes the generator and returns the finder.
    pub fn into_finder(self) -> F {
        self.finder
    }

    /// Runs the sequential driver regardless of the thread budget — the
    /// entry point for finders that are not `Clone + Send + Sync`.
    pub fn run_sequential(&mut self, app: &Application, model: &LatencyModel) -> IseSelection {
        let contexts: Vec<BlockContext<'_>> = app
            .blocks()
            .iter()
            .map(|b| BlockContext::new(b, model))
            .collect();
        run_sequential_in_contexts(&mut self.finder, &contexts, &self.config)
    }
}

impl<F: CutFinder + Clone + Send + Sync> Generator<F> {
    /// Runs the driver end to end on an application: block ranking, up
    /// to `N_ISE` cut searches, optional instance reuse.
    ///
    /// With `threads > 1` the batched driver runs; its output is
    /// **byte-identical to the sequential driver** for any finder whose
    /// `find_cut_budget` is a pure function of `(ctx, io, forbidden)` —
    /// true of every finder in this workspace.
    pub fn run(&mut self, app: &Application, model: &LatencyModel) -> IseSelection {
        let contexts: Vec<BlockContext<'_>> = app
            .blocks()
            .iter()
            .map(|b| BlockContext::new(b, model))
            .collect();
        self.run_in_contexts(&contexts)
    }

    /// [`Generator::run`] over prebuilt block contexts (one per block,
    /// in block order; each context's [`BlockContext::block`] is the
    /// block it searches). This is the entry point for callers that
    /// cache contexts across runs — e.g. the `ised` service, which
    /// reattaches cached [`crate::ContextData`] instead of recomputing
    /// transitive closures per request.
    pub fn run_in_contexts(&mut self, contexts: &[BlockContext<'_>]) -> IseSelection {
        if self.threads > 1 {
            run_batched_in_contexts(&self.finder, contexts, &self.config, self.threads)
        } else {
            run_sequential_in_contexts(&mut self.finder, contexts, &self.config)
        }
    }
}

/// See [`Generator`] — this shim runs
/// `Generator::new(*config).search(search.clone()).run(app, model)`.
#[deprecated(note = "use `Generator::new(config).search(search).run(app, model)`")]
pub fn generate(
    app: &Application,
    model: &LatencyModel,
    config: &IseConfig,
    search: &SearchConfig,
) -> IseSelection {
    let mut finder = IsegenFinder::new(search.clone());
    let contexts: Vec<BlockContext<'_>> = app
        .blocks()
        .iter()
        .map(|b| BlockContext::new(b, model))
        .collect();
    run_sequential_in_contexts(&mut finder, &contexts, config)
}

/// See [`Generator`] — custom finders plug in via [`Generator::finder`]
/// (or [`Generator::run_sequential`] for non-`Clone` finders).
#[deprecated(note = "use `Generator::new(config).finder(finder).run_sequential(app, model)`")]
pub fn generate_with<F: CutFinder + ?Sized>(
    finder: &mut F,
    app: &Application,
    model: &LatencyModel,
    config: &IseConfig,
) -> IseSelection {
    let contexts: Vec<BlockContext<'_>> = app
        .blocks()
        .iter()
        .map(|b| BlockContext::new(b, model))
        .collect();
    run_sequential_in_contexts(finder, &contexts, config)
}

/// See [`Generator`] — prebuilt contexts go through
/// [`Generator::run_in_contexts`].
#[deprecated(note = "use `Generator::new(config).finder(finder).run_in_contexts(contexts)`")]
pub fn generate_in_contexts<F: CutFinder + ?Sized>(
    finder: &mut F,
    contexts: &[BlockContext<'_>],
    config: &IseConfig,
) -> IseSelection {
    run_sequential_in_contexts(finder, contexts, config)
}

/// The sequential Problem-2 driver under [`Generator`].
fn run_sequential_in_contexts<F: CutFinder + ?Sized>(
    finder: &mut F,
    contexts: &[BlockContext<'_>],
    config: &IseConfig,
) -> IseSelection {
    let blocks: Vec<&isegen_ir::BasicBlock> = contexts.iter().map(|c| c.block()).collect();
    let blocks = &blocks[..];
    let mut covered: Vec<NodeSet> = blocks
        .iter()
        .map(|b| NodeSet::new(b.dag().node_count()))
        .collect();
    let total_sw_cycles = total_sw_cycles(blocks, contexts);
    let mut saved_cycles = 0u64;
    let mut ises = Vec::new();

    for _ in 0..config.max_ises {
        // Rank blocks by remaining speedup potential.
        let order = rank_blocks(blocks, contexts, &covered);
        let potential = |bi: usize| -> u64 {
            blocks[bi].frequency() * contexts[bi].potential(Some(&covered[bi]))
        };

        let mut found: Option<(usize, Cut)> = None;
        for &bi in &order {
            if potential(bi) == 0 {
                continue;
            }
            let cut = finder.find_cut(&contexts[bi], config.io, Some(&covered[bi]));
            if !cut.is_empty() && cut.saved_cycles() > 0 {
                found = Some((bi, cut));
                break;
            }
        }
        let Some((bi, cut)) = found else { break };

        deploy_cut(
            blocks,
            contexts,
            config,
            &mut covered,
            &mut ises,
            &mut saved_cycles,
            bi,
            cut,
        );
    }

    IseSelection {
        ises,
        total_sw_cycles,
        saved_cycles,
    }
}

/// See [`Generator`] — the batched driver is what
/// [`Generator::run`] uses when [`Generator::threads`] exceeds one.
#[deprecated(note = "use `Generator::new(config).finder(finder).threads(threads).run(app, model)`")]
pub fn generate_batched_with<F>(
    finder: &F,
    app: &Application,
    model: &LatencyModel,
    config: &IseConfig,
    threads: usize,
) -> IseSelection
where
    F: CutFinder + Clone + Send + Sync,
{
    let contexts: Vec<BlockContext<'_>> = app
        .blocks()
        .iter()
        .map(|b| BlockContext::new(b, model))
        .collect();
    run_batched_in_contexts(finder, &contexts, config, threads)
}

/// See [`Generator`] — prebuilt contexts with a thread budget go
/// through [`Generator::threads`] + [`Generator::run_in_contexts`].
#[deprecated(
    note = "use `Generator::new(config).finder(finder).threads(threads).run_in_contexts(contexts)`"
)]
pub fn generate_batched_in_contexts<F>(
    finder: &F,
    contexts: &[BlockContext<'_>],
    config: &IseConfig,
    threads: usize,
) -> IseSelection
where
    F: CutFinder + Clone + Send + Sync,
{
    run_batched_in_contexts(finder, contexts, config, threads)
}

/// The batched Problem-2 driver under [`Generator`]: block searches fan
/// out over `threads` hand-rolled scoped threads — the ROADMAP's
/// *batched multi-block driver*.
///
/// Two mechanisms stack on top of the sequential driver:
///
/// * **Cut memoisation.** A cut found for block `b` stays valid until an
///   accepted ISE claims nodes in `b`, so blocks the sequential driver
///   re-searches every iteration (high-potential blocks that keep
///   failing, or blocks searched past on the way to a success) are
///   searched once. Even at `threads = 1` the batched driver therefore
///   performs a subset of the sequential driver's searches.
/// * **Speculative waves.** When the next ranked block has no memoised
///   cut, the driver searches it *and* the following un-memoised
///   promising blocks concurrently, `threads` at a time. Speculation is
///   never wasted: every wave result is memoised and consumed by a later
///   iteration unless coverage invalidates it first.
///
/// The `threads` budget feeds **two** parallelism levels: wave-level
/// workers, and — when a wave is shorter than the budget — each block
/// search's intra-block portfolio via [`CutFinder::find_cut_budget`]
/// (a single huge block gets the whole budget as portfolio threads).
///
/// Results are consumed strictly in rank order and waves merge by block
/// index, so the output is deterministic and **byte-identical to the
/// sequential driver** for any finder whose `find_cut_budget` is a pure
/// function of `(ctx, io, forbidden)` — independent of the thread
/// budget and of any retained working state. True of every finder in
/// this workspace: [`IsegenFinder`] keeps search *arenas* between
/// calls, but resets them before every trajectory.
fn run_batched_in_contexts<F>(
    finder: &F,
    contexts: &[BlockContext<'_>],
    config: &IseConfig,
    threads: usize,
) -> IseSelection
where
    F: CutFinder + Clone + Send + Sync,
{
    let blocks: Vec<&isegen_ir::BasicBlock> = contexts.iter().map(|c| c.block()).collect();
    let blocks = &blocks[..];
    let mut covered: Vec<NodeSet> = blocks
        .iter()
        .map(|b| NodeSet::new(b.dag().node_count()))
        .collect();
    let total_sw_cycles = total_sw_cycles(blocks, contexts);
    let mut saved_cycles = 0u64;
    let mut ises = Vec::new();
    // Cut found for block `bi` against the *current* covered[bi]; carried
    // across iterations until covered[bi] changes.
    let mut cut_cache: Vec<Option<Cut>> = vec![None; blocks.len()];

    for _ in 0..config.max_ises {
        let order = rank_blocks(blocks, contexts, &covered);
        let potential = |bi: usize| -> u64 {
            blocks[bi].frequency() * contexts[bi].potential(Some(&covered[bi]))
        };
        let viable: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&bi| potential(bi) > 0)
            .collect();

        // Walk the ranking; search in speculative waves where memoised
        // cuts are missing; accept the first profitable cut — the
        // sequential driver's exact choice.
        let mut found: Option<(usize, Cut)> = None;
        for (idx, &bi) in viable.iter().enumerate() {
            if cut_cache[bi].is_none() {
                let wave: Vec<usize> = viable[idx..]
                    .iter()
                    .copied()
                    .filter(|&bj| cut_cache[bj].is_none())
                    .take(threads.max(1))
                    .collect();
                for (bj, cut) in
                    search_blocks(finder, contexts, &covered, config.io, &wave, threads)
                {
                    cut_cache[bj] = Some(cut);
                }
            }
            let cut = cut_cache[bi].as_ref().expect("searched above");
            if !cut.is_empty() && cut.saved_cycles() > 0 {
                found = Some((bi, cut.clone()));
                break;
            }
        }
        let Some((bi, cut)) = found else { break };

        let touched = deploy_cut(
            blocks,
            contexts,
            config,
            &mut covered,
            &mut ises,
            &mut saved_cycles,
            bi,
            cut,
        );
        for bj in touched {
            cut_cache[bj] = None;
        }
    }

    IseSelection {
        ises,
        total_sw_cycles,
        saved_cycles,
    }
}

/// See [`Generator`] — this shim runs
/// `Generator::new(*config).search(search.clone()).threads(threads).run(app, model)`.
#[deprecated(note = "use `Generator::new(config).search(search).threads(threads).run(app, model)`")]
pub fn generate_batched(
    app: &Application,
    model: &LatencyModel,
    config: &IseConfig,
    search: &SearchConfig,
    threads: usize,
) -> IseSelection {
    let finder = IsegenFinder::new(search.clone());
    let contexts: Vec<BlockContext<'_>> = app
        .blocks()
        .iter()
        .map(|b| BlockContext::new(b, model))
        .collect();
    run_batched_in_contexts(&finder, &contexts, config, threads)
}

/// Total dynamic software latency `Σ_b frequency(b) · software_latency(b)`
/// derived from the contexts' cached per-node cycle tables (equals
/// [`Application::total_software_latency`] without needing the model).
fn total_sw_cycles(blocks: &[&isegen_ir::BasicBlock], contexts: &[BlockContext<'_>]) -> u64 {
    blocks
        .iter()
        .zip(contexts)
        .map(|(b, c)| b.frequency() * c.block_sw_latency())
        .sum()
}

/// Block indices sorted by descending remaining speedup potential
/// (stable: ties keep index order, as in the paper's ranking).
fn rank_blocks(
    blocks: &[&isegen_ir::BasicBlock],
    contexts: &[BlockContext<'_>],
    covered: &[NodeSet],
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..blocks.len()).collect();
    order.sort_by_key(|&bi| {
        std::cmp::Reverse(blocks[bi].frequency() * contexts[bi].potential(Some(&covered[bi])))
    });
    order
}

/// Searches `pending` blocks concurrently on up to `threads` scoped
/// threads (an atomic cursor deals work; results merge by block index,
/// so the outcome is independent of scheduling). The finder is cloned
/// once per worker, so per-worker search arenas stay warm across the
/// blocks of a wave.
///
/// The thread budget is split between the two parallelism levels: a
/// wave of `k` blocks runs on `min(threads, k)` workers, and each
/// worker hands its block search `⌊threads / workers⌋` portfolio
/// threads ([`CutFinder::find_cut_budget`]). Full waves therefore run
/// searches inline, while a short wave — typically one big block —
/// spends the spare budget *inside* the block. Both levels are
/// byte-identical to sequential at any count, so the split never
/// changes results, only wall time.
/// Deals `items` to one scoped worker thread per element of `states`
/// via an atomic cursor, applying `f` to each item with the worker's
/// mutable state, and returns the results **in item order** — the
/// shared scaffolding of the batched driver's block waves and the K-L
/// portfolio fan-out. With a single state (or a single item) it runs
/// inline on `states[0]`. Which worker processes which item is
/// scheduling-dependent; the output order is not, so callers stay
/// deterministic as long as `f` itself is.
pub(crate) fn deal_indexed<I, S, T>(
    items: &[I],
    states: &mut [S],
    f: impl Fn(&I, &mut S) -> T + Send + Sync,
) -> Vec<T>
where
    I: Sync,
    S: Send,
    T: Send,
{
    assert!(!states.is_empty(), "deal_indexed needs at least one state");
    if states.len() == 1 || items.len() <= 1 {
        let state = &mut states[0];
        return items.iter().map(|item| f(item, state)).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for state in states.iter_mut() {
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = f(item, state);
                slots.lock().expect("pool worker panicked").push((i, out));
            });
        }
    });
    let mut out = slots.into_inner().expect("pool worker panicked");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

fn search_blocks<F>(
    finder: &F,
    contexts: &[BlockContext<'_>],
    covered: &[NodeSet],
    io: IoConstraints,
    pending: &[usize],
    threads: usize,
) -> Vec<(usize, Cut)>
where
    F: CutFinder + Clone + Send + Sync,
{
    let threads = threads.max(1);
    let workers = threads.min(pending.len()).max(1);
    let per_search = (threads / workers).max(1);
    // One finder clone per worker: warm search arenas are reused across
    // the blocks a worker draws from the wave.
    let mut finders: Vec<F> = (0..workers).map(|_| finder.clone()).collect();
    deal_indexed(pending, &mut finders, |&bi, f| {
        (
            bi,
            f.find_cut_budget(&contexts[bi], io, Some(&covered[bi]), per_search),
        )
    })
}

/// Accepts `cut` in block `bi`: locks its nodes, deploys reuse instances
/// when configured, accumulates savings and appends the [`Ise`]. Returns
/// the indices of every block whose covered set changed (for cut-cache
/// invalidation in the batched driver).
#[allow(clippy::too_many_arguments)]
fn deploy_cut(
    blocks: &[&isegen_ir::BasicBlock],
    contexts: &[BlockContext<'_>],
    config: &IseConfig,
    covered: &mut [NodeSet],
    ises: &mut Vec<Ise>,
    saved_cycles: &mut u64,
    bi: usize,
    cut: Cut,
) -> Vec<usize> {
    let saved_per_execution = cut.saved_cycles();
    covered[bi].union_with(cut.nodes());
    let mut touched = vec![bi];
    let mut instances = vec![IseInstance {
        block_index: bi,
        nodes: cut.nodes().clone(),
    }];

    if config.reuse_matching {
        let pattern = Pattern::extract(blocks[bi], cut.nodes());
        for (bj, &block) in blocks.iter().enumerate() {
            for candidate in find_disjoint_instances(block, &pattern, Some(&covered[bj])) {
                // An instance is only usable where it is itself a legal
                // ISE occurrence: convex and within the port budget in
                // its own context.
                let instance_cut = Cut::evaluate(&contexts[bj], candidate.clone());
                if contexts[bj].is_convex(&candidate) && instance_cut.satisfies_io(config.io) {
                    covered[bj].union_with(&candidate);
                    if touched.last() != Some(&bj) {
                        touched.push(bj);
                    }
                    instances.push(IseInstance {
                        block_index: bj,
                        nodes: candidate,
                    });
                }
            }
        }
    }

    for inst in &instances {
        *saved_cycles += blocks[inst.block_index].frequency() * saved_per_execution;
    }
    ises.push(Ise {
        block_index: bi,
        cut,
        instances,
        saved_per_execution,
    });
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, Opcode};

    /// A block with two identical dot-product clusters.
    fn twin_block(freq: u64) -> BasicBlock {
        let mut b = BlockBuilder::new("twin").frequency(freq);
        for k in 0..2 {
            let (a, b_, c, d) = (
                b.input(format!("a{k}")),
                b.input(format!("b{k}")),
                b.input(format!("c{k}")),
                b.input(format!("d{k}")),
            );
            let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
            let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
            b.op(Opcode::Add, &[m1, m2]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn reuse_matching_accelerates_both_twins() {
        let mut app = Application::new("twins");
        app.push_block(twin_block(100));
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 1,
            reuse_matching: true,
        };
        let sel = Generator::new(config).run(&app, &model);
        assert_eq!(sel.ises.len(), 1);
        assert_eq!(
            sel.ises[0].instances.len(),
            2,
            "one AFU must cover both clusters"
        );
        assert!(sel.speedup() > 1.0);
    }

    #[test]
    fn without_reuse_needs_two_ises() {
        let mut app = Application::new("twins");
        app.push_block(twin_block(100));
        let model = LatencyModel::paper_default();
        let base = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 1,
            reuse_matching: false,
        };
        let one = Generator::new(base).run(&app, &model);
        let two = Generator::new(IseConfig {
            max_ises: 2,
            ..base
        })
        .run(&app, &model);
        assert_eq!(one.instance_count(), 1);
        assert_eq!(two.instance_count(), 2);
        assert!(two.speedup() > one.speedup());
        // reuse with 1 AFU matches no-reuse with 2 AFUs on this workload
        let reuse = Generator::new(IseConfig {
            reuse_matching: true,
            ..base
        })
        .run(&app, &model);
        assert!((reuse.speedup() - two.speedup()).abs() < 1e-12);
    }

    #[test]
    fn ise_budget_respected_and_cuts_disjoint() {
        let mut app = Application::new("twins");
        app.push_block(twin_block(10));
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 8,
            reuse_matching: false,
        };
        let sel = Generator::new(config).run(&app, &model);
        assert!(sel.ises.len() <= 8);
        // all instance node sets within a block must be pairwise disjoint
        for i in 0..sel.ises.len() {
            for j in (i + 1)..sel.ises.len() {
                let (a, b) = (&sel.ises[i], &sel.ises[j]);
                for ia in &a.instances {
                    for ib in &b.instances {
                        if ia.block_index == ib.block_index {
                            assert!(ia.nodes.is_disjoint(&ib.nodes));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_application() {
        let app = Application::new("empty");
        let model = LatencyModel::paper_default();
        let sel = Generator::new(IseConfig::paper_default()).run(&app, &model);
        assert!(sel.ises.is_empty());
        assert_eq!(sel.speedup(), 1.0);
    }

    #[test]
    fn batched_driver_matches_sequential() {
        let mut app = Application::new("many");
        for f in [7u64, 100, 3, 1_000, 55, 21] {
            app.push_block(twin_block(f));
        }
        let model = LatencyModel::paper_default();
        for reuse in [false, true] {
            let config = IseConfig {
                io: IoConstraints::new(4, 2),
                max_ises: 5,
                reuse_matching: reuse,
            };
            let sequential = Generator::new(config).run(&app, &model);
            for threads in [1usize, 2, 4, 8] {
                let batched = Generator::new(config).threads(threads).run(&app, &model);
                assert_eq!(
                    batched, sequential,
                    "batched ({threads} threads, reuse={reuse}) diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn batched_driver_single_block() {
        let mut app = Application::new("one");
        app.push_block(twin_block(10));
        let model = LatencyModel::paper_default();
        let config = IseConfig::paper_default();
        let sequential = Generator::new(config).run(&app, &model);
        let batched = Generator::new(config).threads(4).run(&app, &model);
        assert_eq!(batched, sequential);
    }

    #[test]
    fn hot_block_preferred() {
        let mut app = Application::new("two_blocks");
        app.push_block(twin_block(1)); // cold
        app.push_block(twin_block(1_000)); // hot
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 1,
            reuse_matching: false,
        };
        let sel = Generator::new(config).run(&app, &model);
        assert_eq!(sel.ises[0].block_index, 1, "hot block first");
    }
}
