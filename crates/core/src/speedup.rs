/// Whole-application speedup from total software cycles and cycles saved
/// by ISEs (paper §5):
///
/// ```text
/// S = Λ_sw / (Λ_sw − saved)
/// ```
///
/// Degenerate inputs are handled gracefully: an application with zero
/// latency, or savings that meet/exceed the total (impossible for real
/// cuts but reachable through misconfigured models), yield `1.0` and
/// `f64::INFINITY`-free results by clamping `saved` to `Λ_sw − 1`.
///
/// ```
/// use isegen_core::application_speedup;
///
/// assert_eq!(application_speedup(1000, 0), 1.0);
/// assert_eq!(application_speedup(1000, 500), 2.0);
/// ```
pub fn application_speedup(total_sw_cycles: u64, saved_cycles: u64) -> f64 {
    if total_sw_cycles == 0 {
        return 1.0;
    }
    let saved = saved_cycles.min(total_sw_cycles - 1);
    total_sw_cycles as f64 / (total_sw_cycles - saved) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_values() {
        assert_eq!(application_speedup(100, 0), 1.0);
        assert_eq!(application_speedup(100, 50), 2.0);
        assert_eq!(application_speedup(100, 75), 4.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(application_speedup(0, 0), 1.0);
        assert_eq!(application_speedup(0, 10), 1.0);
        // clamped: saving everything leaves at least one cycle
        assert_eq!(application_speedup(10, 10), 10.0);
        assert_eq!(application_speedup(10, 999), 10.0);
    }

    #[test]
    fn monotone_in_savings() {
        let mut last = 0.0;
        for saved in 0..100 {
            let s = application_speedup(100, saved);
            assert!(s >= last);
            last = s;
        }
    }
}
