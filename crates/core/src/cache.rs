//! Gain/probe cache with dirty-set invalidation — the piece that turns
//! the K-L inner loop from "re-probe every free node after every commit"
//! into "re-probe only the nodes whose probe inputs actually changed".
//!
//! A [`crate::ToggleEngine::probe`] result mixes *local* terms (ΔI/ΔO,
//! neighbours in the cut, the longest path through the candidate) with
//! *global* terms (the cut's current operand counts, software latency,
//! critical path, component table). The cache stores the local terms per
//! node and recombines them with the engine's current global terms in
//! O(1); after a committed toggle only the nodes named by
//! [`crate::ToggleEngine::toggle_and_mark`] — the toggled node's
//! reachability cones and consumers sharing a producer — are re-probed
//! for real. Even the convexity term is split along that line: the
//! cone-local hull conditions are cached while the violator gate and
//! the cut's own convexity are O(1) reads at recombination time, so no
//! commit ever flushes the cache. `tests/gain_cache_prop.rs` proves the
//! recombined probes identical to fresh ones after arbitrary toggle
//! sequences.

use crate::engine::{Probe, ToggleEngine};
use crate::{GainWeights, IoConstraints};
use isegen_graph::{NodeId, NodeSet};

/// Per-node cached probe pieces. Only terms that are invariant under
/// *other* nodes' toggles (outside the dirty set) are stored; everything
/// global — operand counts, latencies, the violator gate, the cut's own
/// convexity and size — is re-read from the engine at materialisation
/// time, which is what lets a commit invalidate nothing but cones.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Would the node enter the cut (it is currently software)?
    entering: bool,
    /// ΔI: input count after the toggle minus the current input count.
    di: i32,
    /// ΔO: likewise for outputs.
    dout: i32,
    /// Distinct neighbours currently in the cut (`N(v, C)`).
    neighbors_in_cut: u32,
    /// The *cone-local* half of the convexity test:
    /// [`ToggleEngine::entering_hull_ok`] for entering candidates,
    /// [`ToggleEngine::leaving_local_ok`] for leaving ones. Combined
    /// with the engine's O(1) global gate at materialisation time.
    local_convex: bool,
    /// Entering only: longest hardware path through the candidate
    /// (`max up(preds∩C) + delay + max down(succs∩C)`).
    through: f64,
}

const CLEAN_SLATE: Entry = Entry {
    entering: true,
    di: 0,
    dout: 0,
    neighbors_in_cut: 0,
    local_convex: false,
    through: 0.0,
};

/// Probe-count statistics of a [`GainCache`] (and, summed, of a whole
/// K-L search): how many probes hit the cache vs. ran fresh.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered by recombining cached local terms (O(1)).
    pub cached_probes: u64,
    /// Probes that ran the full O(deg + n/64) engine evaluation.
    pub fresh_probes: u64,
    /// Committed toggles routed through the cache.
    pub commits: u64,
    /// Explicit whole-cache flushes ([`GainCache::invalidate_all`]).
    /// The commit path never flushes — global probe terms are re-read
    /// from the engine at recombination time instead — so in a normal
    /// search this stays `0`.
    pub full_invalidations: u64,
    /// K-L portfolio trajectories merged into this result.
    pub trajectories: u64,
    /// Trajectory setups served from a warm [`crate::SearchScratch`]
    /// arena: engine and cache buffers were reused, not allocated.
    pub arena_reuses: u64,
    /// Trajectory setups that had to build their arena buffers fresh
    /// (at most one per portfolio worker per process in steady state).
    pub arena_allocs: u64,
    /// Lazy-queue entries popped during max-gain selection (including
    /// superseded and already-marked entries discarded unexamined).
    pub queue_pops: u64,
    /// Live popped entries re-validated against the exact cached gain —
    /// the only gain evaluations the queue's entering side performs per
    /// step. The queue's win condition is this staying ≪
    /// candidates-per-commit.
    pub queue_stale_revalidations: u64,
    /// Entries pushed after the initial heap build: dirty-set reinserts
    /// after commits and pop-loop loser restores.
    pub queue_reinsertions: u64,
    /// Invariant audits executed (zero unless audit mode is on — the
    /// `perf_report` spot-check pins this to prove the disabled path
    /// does no audit work).
    pub audit_checks: u64,
}

/// The cached per-node gain terms of an entering candidate, as returned
/// by [`GainCache::entering_terms`] — the raw material of the lazy
/// selection queue's frame-free heap keys.
#[derive(Debug, Clone, Copy)]
pub struct EnteringTerms {
    /// ΔI: input count after the toggle minus the current input count.
    pub di: i32,
    /// ΔO: likewise for outputs.
    pub dout: i32,
    /// Distinct neighbours currently in the cut (`N(v, C)`).
    pub neighbors_in_cut: u32,
    /// Cone-local half of the entering-convexity test.
    pub local_convex: bool,
    /// Longest hardware path through the candidate.
    pub through: f64,
}

impl CacheStats {
    /// Fraction of probes avoided (answered from cache), in `[0, 1]`.
    pub fn avoided_fraction(&self) -> f64 {
        let total = self.cached_probes + self.fresh_probes;
        if total == 0 {
            0.0
        } else {
            self.cached_probes as f64 / total as f64
        }
    }

    /// Accumulates another stats block into this one.
    pub fn absorb(&mut self, other: CacheStats) {
        self.cached_probes += other.cached_probes;
        self.fresh_probes += other.fresh_probes;
        self.commits += other.commits;
        self.full_invalidations += other.full_invalidations;
        self.trajectories += other.trajectories;
        self.arena_reuses += other.arena_reuses;
        self.arena_allocs += other.arena_allocs;
        self.queue_pops += other.queue_pops;
        self.queue_stale_revalidations += other.queue_stale_revalidations;
        self.queue_reinsertions += other.queue_reinsertions;
        self.audit_checks += other.audit_checks;
    }
}

/// The dirty-set gain cache. One instance serves one [`ToggleEngine`]
/// trajectory; route every committed toggle through
/// [`GainCache::commit`] so invalidation stays in sync.
#[derive(Debug)]
pub struct GainCache {
    entries: Vec<Entry>,
    dirty: NodeSet,
    stats: CacheStats,
}

impl Default for GainCache {
    /// An empty cache for a zero-node block — the placeholder state of a
    /// pooled arena before [`GainCache::reset`] sizes it to a block.
    fn default() -> Self {
        GainCache::new(0)
    }
}

impl GainCache {
    /// Creates a cache for blocks of `n` nodes, with every node dirty.
    pub fn new(n: usize) -> Self {
        GainCache {
            entries: vec![CLEAN_SLATE; n],
            dirty: NodeSet::full(n),
            stats: CacheStats::default(),
        }
    }

    /// Marks every node dirty (e.g. when the engine was toggled behind
    /// the cache's back).
    pub fn invalidate_all(&mut self) {
        self.stats.full_invalidations += 1;
        self.dirty.insert_all();
    }

    /// Re-initialises the cache for a block of `n` nodes, reusing the
    /// entry and dirty-set allocations — the arena path of
    /// [`crate::SearchScratch`]. Clears the statistics; absorb
    /// [`GainCache::stats`] first if they matter.
    pub fn reset(&mut self, n: usize) {
        self.entries.clear();
        self.entries.resize(n, CLEAN_SLATE);
        self.dirty.reset(n);
        self.dirty.insert_all();
        self.stats = CacheStats::default();
    }

    /// Commits a toggle through the engine and invalidates exactly the
    /// cached probes the commit may have changed (the toggled node's
    /// cones and shared-producer consumers — never the whole cache).
    /// Returns `true` when the node entered the cut.
    pub fn commit(&mut self, engine: &mut ToggleEngine<'_, '_>, v: NodeId) -> bool {
        self.stats.commits += 1;
        engine.toggle_and_mark(v, &mut self.dirty);
        engine.cut().contains(v)
    }

    /// [`GainCache::commit`], additionally leaving this commit's dirty
    /// delta in `touched` (reset to the cache's capacity first). The lazy
    /// selection queue uses the delta for targeted reinsertion; the
    /// cache's own accumulated dirty set absorbs it as usual.
    pub fn commit_tracked(
        &mut self,
        engine: &mut ToggleEngine<'_, '_>,
        v: NodeId,
        touched: &mut NodeSet,
    ) -> bool {
        self.stats.commits += 1;
        touched.reset(self.entries.len());
        engine.toggle_and_mark(v, touched);
        self.dirty.union_with(touched);
        engine.cut().contains(v)
    }

    /// The probe of `v` against the engine's current cut: recombined
    /// from cached local terms when clean, freshly evaluated (and
    /// re-cached) when dirty. Always equal to `engine.probe(v)`.
    pub fn probe(&mut self, engine: &ToggleEngine<'_, '_>, v: NodeId) -> Probe {
        let vi = v.index();
        if self.dirty.contains(v) {
            let probe = engine.probe(v);
            self.entries[vi] = Entry {
                entering: probe.entering,
                di: probe.inputs as i32 - engine.input_count() as i32,
                dout: probe.outputs as i32 - engine.output_count() as i32,
                neighbors_in_cut: probe.neighbors_in_cut,
                local_convex: if probe.entering {
                    engine.entering_hull_ok(v)
                } else {
                    engine.leaving_local_ok(v)
                },
                through: if probe.entering {
                    engine.entering_through(v)
                } else {
                    0.0
                },
            };
            self.dirty.remove(v);
            self.stats.fresh_probes += 1;
            return probe;
        }
        self.stats.cached_probes += 1;
        let e = self.entries[vi];
        let ctx = engine.ctx();
        let inputs = engine.input_count() as i32 + e.di;
        let outputs = engine.output_count() as i32 + e.dout;
        debug_assert!(inputs >= 0 && outputs >= 0, "cached io went negative");
        let sw = ctx.sw_cycles(v) as u64;
        let (convex, merit, other_components_hw) = if e.entering {
            // Global violator gate fresh, cone-local hull term cached —
            // together exactly `ToggleEngine::convex_after(v, entering)`.
            let convex = engine.entering_gate(v) && e.local_convex;
            let merit = if convex {
                let sw2 = engine.software_latency() + sw;
                let hw2 = engine.hardware_latency().max(e.through);
                sw2 as f64 - hw2
            } else {
                0.0
            };
            (convex, merit, 0.0)
        } else {
            let convex = engine.is_convex() && (engine.cut().len() <= 1 || e.local_convex);
            let merit = if convex {
                let sw2 = engine.software_latency() - sw;
                sw2 as f64 - engine.hardware_latency()
            } else {
                0.0
            };
            (convex, merit, engine.other_components_hw(v))
        };
        Probe {
            entering: e.entering,
            inputs: inputs as u32,
            outputs: outputs as u32,
            convex,
            merit,
            neighbors_in_cut: e.neighbors_in_cut,
            other_components_hw,
        }
    }

    /// The gain of toggling `v`, from the cached-or-fresh probe.
    pub fn gain(
        &mut self,
        engine: &ToggleEngine<'_, '_>,
        weights: &GainWeights,
        io: IoConstraints,
        v: NodeId,
    ) -> f64 {
        let probe = self.probe(engine, v);
        weights.combine(engine.ctx(), io, v, &probe)
    }

    /// The cached per-node terms of an **entering** node's gain —
    /// everything in the recombination that is *not* a global engine
    /// count or latency — refreshed from a live probe first if `v` is
    /// dirty. The lazy selection queue builds its frame-free heap keys
    /// from these: together with the per-step global offsets they bound
    /// the exact [`GainCache::gain`] from above.
    pub fn entering_terms(&mut self, engine: &ToggleEngine<'_, '_>, v: NodeId) -> EnteringTerms {
        if self.dirty.contains(v) {
            let _ = self.probe(engine, v);
        } else {
            self.stats.cached_probes += 1;
        }
        let e = self.entries[v.index()];
        debug_assert!(e.entering, "key terms are entering-only");
        EnteringTerms {
            di: e.di,
            dout: e.dout,
            neighbors_in_cut: e.neighbors_in_cut,
            local_convex: e.local_convex,
            through: e.through,
        }
    }

    /// Probe-count statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Audit-mode cross-check: re-derives every *clean* entry's local
    /// terms from a fresh engine probe and reports each field that
    /// diverges from what the cache would recombine with.
    ///
    /// An empty result means every cached probe the search could read
    /// right now is identical to a from-scratch evaluation. Dirty nodes
    /// are skipped — they are re-probed on next access by construction.
    pub fn audit_divergences(&self, engine: &ToggleEngine<'_, '_>) -> Vec<String> {
        let mut out = Vec::new();
        for (vi, e) in self.entries.iter().enumerate() {
            let v = NodeId::from_index(vi);
            if self.dirty.contains(v) {
                continue;
            }
            let probe = engine.probe(v);
            let di = probe.inputs as i32 - engine.input_count() as i32;
            let dout = probe.outputs as i32 - engine.output_count() as i32;
            let local_convex = if probe.entering {
                engine.entering_hull_ok(v)
            } else {
                engine.leaving_local_ok(v)
            };
            let through = if probe.entering {
                engine.entering_through(v)
            } else {
                0.0
            };
            if e.entering != probe.entering {
                out.push(format!(
                    "cache n{vi}: entering {} != fresh {}",
                    e.entering, probe.entering
                ));
            }
            if e.di != di {
                out.push(format!("cache n{vi}: di {} != fresh {di}", e.di));
            }
            if e.dout != dout {
                out.push(format!("cache n{vi}: dout {} != fresh {dout}", e.dout));
            }
            if e.neighbors_in_cut != probe.neighbors_in_cut {
                out.push(format!(
                    "cache n{vi}: neighbors_in_cut {} != fresh {}",
                    e.neighbors_in_cut, probe.neighbors_in_cut
                ));
            }
            if e.local_convex != local_convex {
                out.push(format!(
                    "cache n{vi}: local_convex {} != fresh {local_convex}",
                    e.local_convex
                ));
            }
            if (e.through - through).abs() > 1e-9 {
                out.push(format!(
                    "cache n{vi}: through {} != fresh {through}",
                    e.through
                ));
            }
        }
        out
    }

    /// Counts one executed audit in the statistics.
    pub(crate) fn note_audit(&mut self) {
        self.stats.audit_checks += 1;
    }

    /// Deliberately perturbs the cached `di` of a *clean* entry, so
    /// tests can prove [`GainCache::audit_divergences`] actually
    /// detects corruption. Returns `false` (and does nothing) when the
    /// node is out of range or dirty. Test scaffolding, not API.
    #[doc(hidden)]
    pub fn corrupt_entry_for_test(&mut self, v: NodeId) -> bool {
        if v.index() >= self.entries.len() || self.dirty.contains(v) {
            return false;
        }
        self.entries[v.index()].di += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockContext;
    use isegen_ir::{BlockBuilder, LatencyModel, Opcode};

    #[test]
    fn cached_probes_match_fresh_on_dotprod() {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        let add = b.op(Opcode::Add, &[m1, m2]).unwrap();
        let block = b.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let n = ctx.node_count();
        let nodes: Vec<_> = block.dag().node_ids().collect();

        let mut engine = ToggleEngine::new(&ctx);
        let mut cache = GainCache::new(n);
        for &v in &[m1, add, m2, m1, m2] {
            // Warm the cache, commit, then require cached ≡ fresh.
            for &u in &nodes {
                let _ = cache.probe(&engine, u);
            }
            cache.commit(&mut engine, v);
            for &u in &nodes {
                let cached = cache.probe(&engine, u);
                let fresh = engine.probe(u);
                assert_eq!(cached, fresh, "probe mismatch at {u} after toggling {v}");
            }
        }
        let stats = cache.stats();
        assert!(stats.cached_probes > 0, "cache never hit: {stats:?}");
        assert_eq!(stats.commits, 5);
    }

    #[test]
    fn stats_absorb_and_fraction() {
        let mut a = CacheStats {
            cached_probes: 3,
            fresh_probes: 1,
            commits: 2,
            full_invalidations: 0,
            trajectories: 1,
            arena_reuses: 0,
            arena_allocs: 1,
            queue_pops: 4,
            queue_stale_revalidations: 1,
            queue_reinsertions: 2,
            audit_checks: 1,
        };
        let b = CacheStats {
            cached_probes: 1,
            fresh_probes: 3,
            commits: 1,
            full_invalidations: 1,
            trajectories: 2,
            arena_reuses: 2,
            arena_allocs: 0,
            queue_pops: 6,
            queue_stale_revalidations: 2,
            queue_reinsertions: 3,
            audit_checks: 1,
        };
        a.absorb(b);
        assert_eq!(a.cached_probes, 4);
        assert_eq!(a.fresh_probes, 4);
        assert_eq!(a.commits, 3);
        assert_eq!(a.full_invalidations, 1);
        assert_eq!(a.trajectories, 3);
        assert_eq!(a.arena_reuses, 2);
        assert_eq!(a.arena_allocs, 1);
        assert_eq!(a.queue_pops, 10);
        assert_eq!(a.queue_stale_revalidations, 3);
        assert_eq!(a.queue_reinsertions, 5);
        assert_eq!(a.audit_checks, 2);
        assert!((a.avoided_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().avoided_fraction(), 0.0);
    }

    #[test]
    fn reset_behaves_like_a_fresh_cache() {
        let mut b = BlockBuilder::new("pair");
        let (x, y) = (b.input("x"), b.input("y"));
        let m = b.op(Opcode::Mul, &[x, y]).unwrap();
        let a = b.op(Opcode::Add, &[m, m]).unwrap();
        let block = b.build().unwrap();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let n = ctx.node_count();
        let nodes: Vec<_> = block.dag().node_ids().collect();

        let mut engine = ToggleEngine::new(&ctx);
        let mut cache = GainCache::new(n);
        for &u in &nodes {
            let _ = cache.probe(&engine, u);
        }
        cache.commit(&mut engine, m);
        cache.commit(&mut engine, a);
        assert!(cache.stats().commits == 2);

        // Reset onto a fresh engine: stats cleared, every probe fresh
        // again, and cached ≡ fresh still holds afterwards.
        let mut engine = ToggleEngine::new(&ctx);
        cache.reset(n);
        assert_eq!(cache.stats(), CacheStats::default());
        for &u in &nodes {
            let _ = cache.probe(&engine, u);
        }
        assert_eq!(cache.stats().fresh_probes, nodes.len() as u64);
        assert_eq!(cache.stats().cached_probes, 0);
        cache.commit(&mut engine, a);
        for &u in &nodes {
            assert_eq!(cache.probe(&engine, u), engine.probe(u));
        }
    }
}
