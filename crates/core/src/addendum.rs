//! The paper's §4.3 per-node addendum table, as an executable artifact.
//!
//! The paper quantifies the impact of toggling through per-node
//! *addendums* `ΔI(v)`, `ΔO(v)`: the change the cut's input/output
//! counts would undergo if `v` toggled right now. Initially (all
//! software) `ΔI(v)`/`ΔO(v)` are the node's own operand/result counts;
//! after each toggle the addendums of **only the toggled node's
//! neighbourhood — parents, children and siblings — change** (Fig. 3's
//! rule table; siblings are nodes sharing a child, whose input-sharing
//! makes their deltas interact).
//!
//! [`AddendumTable`] maintains exactly this invariant: after every
//! toggle it refreshes the addendums of the toggled node and its
//! neighbourhood only. The paper omits the correctness proofs of its
//! rules ("presented in [the technical report]"); here the locality
//! claim *is the tested theorem* — property tests
//! (`neighbourhood_locality_holds`, and `addendum_prop.rs` at crate
//! level) verify every addendum against a from-scratch recount after
//! arbitrary toggle sequences, which fails if any node outside the
//! Fig. 3 neighbourhood had a stale delta.

use crate::BlockContext;
use isegen_graph::{NodeId, NodeSet};

/// Maintained `ΔI`/`ΔO` addendums for every node (paper §4.3, Fig. 3).
#[derive(Debug, Clone)]
pub struct AddendumTable {
    cut: NodeSet,
    /// Edges from each node into cut members.
    fanout_to_cut: Vec<u32>,
    inputs: u32,
    outputs: u32,
    delta_i: Vec<i32>,
    delta_o: Vec<i32>,
}

impl AddendumTable {
    /// Builds the table for the all-software configuration of `ctx`'s
    /// block: `I_ISE = O_ISE = 0` and each node's addendums are its own
    /// operand/result counts, exactly as the paper initialises them.
    pub fn new(ctx: &BlockContext<'_>) -> Self {
        let n = ctx.node_count();
        let mut table = AddendumTable {
            cut: NodeSet::new(n),
            fanout_to_cut: vec![0; n],
            inputs: 0,
            outputs: 0,
            delta_i: vec![0; n],
            delta_o: vec![0; n],
        };
        for v in ctx.block().dag().node_ids() {
            let (di, do_) = table.compute_addendum(ctx, v);
            table.delta_i[v.index()] = di;
            table.delta_o[v.index()] = do_;
        }
        table
    }

    /// Current input operand count `I_ISE`.
    #[inline]
    pub fn inputs(&self) -> u32 {
        self.inputs
    }

    /// Current output operand count `O_ISE`.
    #[inline]
    pub fn outputs(&self) -> u32 {
        self.outputs
    }

    /// The maintained `ΔI(v)`: input-count change if `v` toggled now.
    #[inline]
    pub fn delta_i(&self, v: NodeId) -> i32 {
        self.delta_i[v.index()]
    }

    /// The maintained `ΔO(v)`: output-count change if `v` toggled now.
    #[inline]
    pub fn delta_o(&self, v: NodeId) -> i32 {
        self.delta_o[v.index()]
    }

    /// The current cut.
    #[inline]
    pub fn cut(&self) -> &NodeSet {
        &self.cut
    }

    /// Toggles `v`, applying its addendums to `I_ISE`/`O_ISE` (the
    /// paper's line-10 "impact of toggling") and refreshing the
    /// addendums of the Fig. 3 neighbourhood: `v` itself, its parents,
    /// its children and its siblings (other parents of its children).
    pub fn toggle(&mut self, ctx: &BlockContext<'_>, v: NodeId) {
        // Apply the maintained addendums.
        self.inputs = (self.inputs as i32 + self.delta_i[v.index()]) as u32;
        self.outputs = (self.outputs as i32 + self.delta_o[v.index()]) as u32;
        let dag = ctx.block().dag();
        if self.cut.contains(v) {
            self.cut.remove(v);
            for &p in dag.preds(v) {
                self.fanout_to_cut[p.index()] -= 1;
            }
        } else {
            self.cut.insert(v);
            for &p in dag.preds(v) {
                self.fanout_to_cut[p.index()] += 1;
            }
        }
        // Refresh the neighbourhood's addendums (Fig. 3's affected set):
        // v, its parents, its children, and its siblings — both nodes
        // sharing a parent with v (their input-supplier counters moved)
        // and nodes sharing a child (rules (i)–(l)).
        let mut affected = vec![v];
        for &p in dag.preds(v) {
            affected.push(p);
            affected.extend_from_slice(dag.succs(p)); // co-consumers of p
        }
        for &c in dag.succs(v) {
            affected.push(c);
            affected.extend_from_slice(dag.preds(c)); // co-parents of c
        }
        for u in affected {
            let (di, do_) = self.compute_addendum(ctx, u);
            self.delta_i[u.index()] = di;
            self.delta_o[u.index()] = do_;
        }
    }

    /// Derives `(ΔI(u), ΔO(u))` for the current cut from the maintained
    /// counters, in O(deg(u)).
    fn compute_addendum(&self, ctx: &BlockContext<'_>, u: NodeId) -> (i32, i32) {
        let dag = ctx.block().dag();
        let block = ctx.block();
        let in_cut = self.cut.contains(u);
        let mut di = 0i32;
        let mut do_ = 0i32;
        let outside_u = dag.out_degree(u) as u32 - self.fanout_to_cut[u.index()];
        let escapes = outside_u > 0 || block.is_live_out(u);
        if in_cut {
            // leaving: u may resume supplying; u stops being an output
            if self.fanout_to_cut[u.index()] > 0 {
                di += 1;
            }
            if escapes {
                do_ -= 1;
            }
        } else {
            if self.fanout_to_cut[u.index()] > 0 {
                di -= 1;
            }
            if escapes {
                do_ += 1;
            }
        }
        let preds = dag.preds(u);
        for (i, &p) in preds.iter().enumerate() {
            if preds[..i].contains(&p) {
                continue;
            }
            let mult = preds.iter().filter(|&&q| q == p).count() as u32;
            let pi = p.index();
            if self.cut.contains(p) {
                let outside_p = dag.out_degree(p) as u32 - self.fanout_to_cut[pi];
                if in_cut {
                    if outside_p == 0 && !block.is_live_out(p) {
                        do_ += 1;
                    }
                } else if outside_p == mult && !block.is_live_out(p) {
                    do_ -= 1;
                }
            } else if in_cut {
                if self.fanout_to_cut[pi] == mult {
                    di -= 1;
                }
            } else if self.fanout_to_cut[pi] == 0 {
                di += 1;
            }
        }
        (di, do_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    /// Recounts I/O from scratch (the check the table must match).
    fn scratch_io(ctx: &BlockContext<'_>, cut: &NodeSet) -> (u32, u32) {
        let cut_eval = crate::Cut::evaluate(ctx, cut.clone());
        (cut_eval.input_count(), cut_eval.output_count())
    }

    #[test]
    fn initial_addendums_are_node_io_counts() {
        // "Initially, all nodes are in S and ΔI and ΔO equal the number
        //  of inputs and number of outputs of the corresponding node."
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let table = AddendumTable::new(&ctx);
        assert_eq!(table.inputs(), 0);
        assert_eq!(table.outputs(), 0);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        // mul: 2 distinct inputs, 1 output
        assert_eq!(table.delta_i(ids[4]), 2);
        assert_eq!(table.delta_o(ids[4]), 1);
        // add: 2 inputs, 1 output (live-out)
        assert_eq!(table.delta_i(ids[6]), 2);
        assert_eq!(table.delta_o(ids[6]), 1);
    }

    #[test]
    fn sign_reversal_after_toggle() {
        // "After toggling from S to H, ΔI and ΔO of the node reverse in
        //  sign so that the changes will be undone if it toggles back."
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let mut table = AddendumTable::new(&ctx);
        let before = (table.delta_i(ids[4]), table.delta_o(ids[4]));
        table.toggle(&ctx, ids[4]);
        let after = (table.delta_i(ids[4]), table.delta_o(ids[4]));
        assert_eq!(after, (-before.0, -before.1));
        // toggling back restores the counts
        table.toggle(&ctx, ids[4]);
        assert_eq!(table.inputs(), 0);
        assert_eq!(table.outputs(), 0);
    }

    #[test]
    fn figure5_example() {
        // The paper's Fig. 5: toggling a node into a one-node cut gives
        // I_ISE = its inputs, O_ISE = its outputs; toggling the second
        // mul (independent subgraph) adds its counts.
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let mut table = AddendumTable::new(&ctx);
        table.toggle(&ctx, ids[4]);
        assert_eq!((table.inputs(), table.outputs()), (2, 1));
        table.toggle(&ctx, ids[5]);
        assert_eq!((table.inputs(), table.outputs()), (4, 2));
        // adding the consumer merges the outputs
        table.toggle(&ctx, ids[6]);
        assert_eq!((table.inputs(), table.outputs()), (4, 1));
        assert_eq!(
            (table.inputs(), table.outputs()),
            scratch_io(&ctx, table.cut())
        );
    }

    #[test]
    fn neighbourhood_locality_holds() {
        // Every addendum — including nodes far from the toggles — must
        // equal the from-scratch delta. If Fig. 3's affected set were
        // too small, a distant stale addendum would fail this.
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let mut table = AddendumTable::new(&ctx);
        for &i in &[4usize, 6, 5, 4, 6, 5, 6] {
            table.toggle(&ctx, ids[i]);
            let (bi, bo) = scratch_io(&ctx, table.cut());
            assert_eq!((table.inputs(), table.outputs()), (bi, bo));
            for &v in &ids {
                let mut flipped = table.cut().clone();
                flipped.toggle(v);
                let (fi, fo) = scratch_io(&ctx, &flipped);
                assert_eq!(table.delta_i(v), fi as i32 - bi as i32, "stale ΔI at {v}");
                assert_eq!(table.delta_o(v), fo as i32 - bo as i32, "stale ΔO at {v}");
            }
        }
    }
}
