use std::fmt;

/// Register-file port budget for an ISE: the maximum number of input and
/// output operands a custom instruction may have (paper §2, `N_in`/`N_out`).
///
/// The paper sweeps `(2,1), (3,1), (4,1), (4,2), (6,3), (8,4)` on AES and
/// uses `(4,2)` for the MediaBench/EEMBC comparison.
///
/// ```
/// use isegen_core::IoConstraints;
///
/// let io = IoConstraints::new(4, 2);
/// assert_eq!(io.to_string(), "(4,2)");
/// assert!(io.admits(3, 2));
/// assert!(!io.admits(5, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IoConstraints {
    max_inputs: u32,
    max_outputs: u32,
}

impl IoConstraints {
    /// Creates a port budget of `max_inputs` read ports and `max_outputs`
    /// write ports.
    ///
    /// # Panics
    ///
    /// Panics if either bound is zero — an instruction without inputs or
    /// without outputs is meaningless.
    pub fn new(max_inputs: u32, max_outputs: u32) -> Self {
        assert!(max_inputs > 0, "an ISE needs at least one input port");
        assert!(max_outputs > 0, "an ISE needs at least one output port");
        IoConstraints {
            max_inputs,
            max_outputs,
        }
    }

    /// Maximum number of input operands.
    #[inline]
    pub fn max_inputs(self) -> u32 {
        self.max_inputs
    }

    /// Maximum number of output operands.
    #[inline]
    pub fn max_outputs(self) -> u32 {
        self.max_outputs
    }

    /// Whether a cut with the given I/O counts fits the budget.
    #[inline]
    pub fn admits(self, inputs: u32, outputs: u32) -> bool {
        inputs <= self.max_inputs && outputs <= self.max_outputs
    }

    /// Total number of violated ports: `max(0, in−N_in) + max(0, out−N_out)`.
    ///
    /// This is the magnitude the paper's I/O penalty component scales with.
    #[inline]
    pub fn violation(self, inputs: u32, outputs: u32) -> u32 {
        inputs.saturating_sub(self.max_inputs) + outputs.saturating_sub(self.max_outputs)
    }

    /// The sweep of constraints used in the paper's AES study (Fig. 6/7).
    pub const AES_SWEEP: [(u32, u32); 6] = [(2, 1), (3, 1), (4, 1), (4, 2), (6, 3), (8, 4)];
}

impl fmt::Display for IoConstraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.max_inputs, self.max_outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_and_violation() {
        let io = IoConstraints::new(4, 2);
        assert!(io.admits(4, 2));
        assert!(io.admits(0, 0));
        assert!(!io.admits(5, 2));
        assert!(!io.admits(4, 3));
        assert_eq!(io.violation(4, 2), 0);
        assert_eq!(io.violation(6, 2), 2);
        assert_eq!(io.violation(6, 4), 4);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(IoConstraints::new(8, 4).to_string(), "(8,4)");
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn zero_inputs_rejected() {
        let _ = IoConstraints::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn zero_outputs_rejected() {
        let _ = IoConstraints::new(1, 0);
    }

    #[test]
    fn aes_sweep_is_the_paper_sweep() {
        assert_eq!(IoConstraints::AES_SWEEP.len(), 6);
        assert_eq!(IoConstraints::AES_SWEEP[3], (4, 2));
    }
}
