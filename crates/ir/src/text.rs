//! A line-oriented text serialization of [`Application`]s — the wire
//! format of the `ised` service front-end.
//!
//! The format is deliberately trivial to emit and to parse by hand (the
//! build image has no serde), yet round-trips every structural property
//! of a block: node order (and therefore ids), opcodes, operand order,
//! labels, execution frequencies and live-out sets.
//!
//! ```text
//! app "aes"
//! block "round" freq 1000
//!   n0 = in "x"
//!   n1 = in "k"
//!   n2 = xor n0 n1
//!   n3 = sbox n2
//!   live n2
//! end
//! ```
//!
//! Rules:
//!
//! * Blank lines and lines starting with `#` are ignored.
//! * Strings are double-quoted with `\\`, `\"`, `\n`, `\t`, `\r`
//!   escapes; bare words are accepted where a name is expected.
//! * `freq` is optional, defaults to 1 and is bounded by
//!   [`MAX_FREQUENCY`] (untrusted input must not overflow downstream
//!   cycle arithmetic).
//! * A node line is `<name> = <mnemonic> ["label"] <operand>*`; operands
//!   must name earlier nodes of the same block (the DAG property is
//!   structural). External inputs use the arity-0 mnemonic `in`.
//! * `live <name>` marks an explicit live-out; sinks are live-out
//!   automatically, exactly as in [`BlockBuilder`].
//!
//! Parsing never panics: every malformed input — truncated, misquoted,
//! unknown opcode, wrong arity, dangling operand — is a [`TextError`]
//! with the offending line number (property-tested in
//! `tests/serve_roundtrip.rs`).

use crate::{Application, BasicBlock, BlockBuilder, BuildError, Opcode};
use isegen_graph::NodeId;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Largest block frequency the parser accepts. [`BasicBlock`] carries a
/// `u64`, but text IR arrives from untrusted clients and downstream
/// cycle accounting multiplies frequency by block latency into `u64`s —
/// `u32::MAX` keeps every product a service-sized program can produce
/// comfortably inside `u64` while being far beyond any real execution
/// profile.
pub const MAX_FREQUENCY: u64 = u32::MAX as u64;

/// Errors of text-IR parsing, each tagged with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TextError {
    /// The line does not match the grammar.
    Syntax {
        /// Offending line (1-based; 0 when the input ended prematurely).
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// An unknown opcode mnemonic.
    UnknownOpcode {
        /// Offending line.
        line: usize,
        /// The mnemonic as written.
        mnemonic: String,
    },
    /// An operand or `live` target names no earlier node.
    UnknownNode {
        /// Offending line.
        line: usize,
        /// The name as written.
        name: String,
    },
    /// A node name was defined twice in one block.
    DuplicateNode {
        /// Offending line.
        line: usize,
        /// The redefined name.
        name: String,
    },
    /// Block construction failed (arity mismatch, empty block, …).
    Build {
        /// Line of the node or `end` that triggered the error.
        line: usize,
        /// The underlying builder error.
        source: BuildError,
    },
}

impl TextError {
    /// The 1-based source line the error points at (`0` when the input
    /// ended prematurely). Front-ends surface this as a positioned
    /// diagnostic instead of re-parsing the `Display` text.
    pub fn line(&self) -> usize {
        match self {
            TextError::Syntax { line, .. }
            | TextError::UnknownOpcode { line, .. }
            | TextError::UnknownNode { line, .. }
            | TextError::DuplicateNode { line, .. }
            | TextError::Build { line, .. } => *line,
        }
    }

    /// The offending token, when the error names one (the unknown
    /// mnemonic, the unknown or redefined node name). Callers locate it
    /// in the source line to derive a column.
    pub fn token(&self) -> Option<&str> {
        match self {
            TextError::UnknownOpcode { mnemonic, .. } => Some(mnemonic),
            TextError::UnknownNode { name, .. } | TextError::DuplicateNode { name, .. } => {
                Some(name)
            }
            _ => None,
        }
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            TextError::UnknownOpcode { line, mnemonic } => {
                write!(f, "line {line}: unknown opcode {mnemonic:?}")
            }
            TextError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node {name:?}")
            }
            TextError::DuplicateNode { line, name } => {
                write!(f, "line {line}: node {name:?} defined twice")
            }
            TextError::Build { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl Error for TextError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TextError::Build { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes one block as a `block … end` section.
fn write_block(out: &mut String, block: &BasicBlock) {
    out.push_str("block ");
    write_string(out, block.name());
    let _ = writeln!(out, " freq {}", block.frequency());
    let dag = block.dag();
    for (id, op) in dag.nodes() {
        let _ = write!(out, "  n{} = {}", id.index(), op.opcode());
        if let Some(label) = op.label() {
            if !label.is_empty() {
                out.push(' ');
                write_string(out, label);
            }
        }
        for p in dag.preds(id) {
            let _ = write!(out, " n{}", p.index());
        }
        out.push('\n');
    }
    for id in block.live_outs().iter() {
        let _ = writeln!(out, "  live n{}", id.index());
    }
    out.push_str("end\n");
}

/// Serializes `app` to the canonical text form.
///
/// The output is deterministic and parsing it back yields a structurally
/// identical application ([`parse_application`] ∘ `write_application` is
/// the identity on the serialized bytes), so the text doubles as a
/// canonical content key for caches.
pub fn write_application(app: &Application) -> String {
    let mut out = String::new();
    out.push_str("app ");
    write_string(&mut out, app.name());
    out.push('\n');
    for block in app.blocks() {
        write_block(&mut out, block);
    }
    out
}

/// One token of a line: a bare word or a quoted string.
#[derive(Debug, PartialEq)]
enum Tok {
    Word(String),
    Str(String),
}

impl Tok {
    /// The payload where either form is acceptable (names, labels).
    fn text(&self) -> &str {
        match self {
            Tok::Word(s) | Tok::Str(s) => s,
        }
    }
}

fn syntax(line: usize, message: impl Into<String>) -> TextError {
    TextError::Syntax {
        line,
        message: message.into(),
    }
}

/// Splits one line into tokens, honouring quoting. Never panics.
fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>, TextError> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    None => return Err(syntax(lineno, "unterminated string")),
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('\\') => s.push('\\'),
                        Some('"') => s.push('"'),
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('r') => s.push('\r'),
                        other => {
                            return Err(syntax(
                                lineno,
                                format!("bad escape {:?}", other.map(String::from)),
                            ))
                        }
                    },
                    Some(c) => s.push(c),
                }
            }
            toks.push(Tok::Str(s));
        } else {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() || c == '"' {
                    break;
                }
                s.push(c);
                chars.next();
            }
            toks.push(Tok::Word(s));
        }
    }
    Ok(toks)
}

/// An in-progress block while parsing.
struct BlockParse {
    builder: BlockBuilder,
    names: HashMap<String, NodeId>,
    start_line: usize,
}

/// Parses the canonical text form back into an [`Application`].
///
/// # Errors
///
/// Any deviation from the grammar yields a [`TextError`] naming the
/// offending line; no input panics.
pub fn parse_application(text: &str) -> Result<Application, TextError> {
    let mut app: Option<Application> = None;
    let mut block: Option<BlockParse> = None;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks = tokenize(line, lineno)?;
        let head = toks[0].text();
        match head {
            "app" => {
                if app.is_some() {
                    return Err(syntax(lineno, "duplicate app header"));
                }
                let [_, name] = &toks[..] else {
                    return Err(syntax(lineno, "expected: app \"name\""));
                };
                app = Some(Application::new(name.text()));
            }
            "block" => {
                let Some(_) = app else {
                    return Err(syntax(lineno, "block before app header"));
                };
                if block.is_some() {
                    return Err(syntax(lineno, "block inside block (missing end?)"));
                }
                let (name, freq) = match &toks[..] {
                    [_, name] => (name.text(), 1u64),
                    [_, name, Tok::Word(kw), Tok::Word(freq)] if kw == "freq" => {
                        let freq: u64 = freq
                            .parse()
                            .ok()
                            .filter(|&f| f <= MAX_FREQUENCY)
                            .ok_or_else(|| {
                                syntax(
                                    lineno,
                                    format!("bad frequency {freq:?} (max {MAX_FREQUENCY})"),
                                )
                            })?;
                        (name.text(), freq)
                    }
                    _ => return Err(syntax(lineno, "expected: block \"name\" [freq N]")),
                };
                block = Some(BlockParse {
                    builder: BlockBuilder::new(name).frequency(freq),
                    names: HashMap::new(),
                    start_line: lineno,
                });
            }
            "live" => {
                let Some(b) = block.as_mut() else {
                    return Err(syntax(lineno, "live outside a block"));
                };
                let [_, name] = &toks[..] else {
                    return Err(syntax(lineno, "expected: live <node>"));
                };
                let &id = b
                    .names
                    .get(name.text())
                    .ok_or_else(|| TextError::UnknownNode {
                        line: lineno,
                        name: name.text().to_string(),
                    })?;
                b.builder.live_out(id).map_err(|source| TextError::Build {
                    line: lineno,
                    source,
                })?;
            }
            "end" => {
                let Some(b) = block.take() else {
                    return Err(syntax(lineno, "end outside a block"));
                };
                if toks.len() != 1 {
                    return Err(syntax(lineno, "end takes no arguments"));
                }
                let built = b.builder.build().map_err(|source| TextError::Build {
                    line: lineno,
                    source,
                })?;
                app.as_mut()
                    .expect("checked at block start")
                    .push_block(built);
            }
            _ => {
                let Some(b) = block.as_mut() else {
                    return Err(syntax(
                        lineno,
                        format!("unexpected {head:?} outside a block"),
                    ));
                };
                // <name> = <mnemonic> ["label"] <operand>*
                let (Some(Tok::Word(name)), Some(Tok::Word(eq)), Some(Tok::Word(mnemonic))) =
                    (toks.first(), toks.get(1), toks.get(2))
                else {
                    return Err(syntax(lineno, "expected: <name> = <mnemonic> …"));
                };
                if eq != "=" {
                    return Err(syntax(lineno, "expected '=' after node name"));
                }
                if b.names.contains_key(name) {
                    return Err(TextError::DuplicateNode {
                        line: lineno,
                        name: name.clone(),
                    });
                }
                let opcode =
                    Opcode::from_mnemonic(mnemonic).ok_or_else(|| TextError::UnknownOpcode {
                        line: lineno,
                        mnemonic: mnemonic.clone(),
                    })?;
                let mut rest = &toks[3..];
                let label = match rest.first() {
                    Some(Tok::Str(l)) => {
                        rest = &rest[1..];
                        Some(l.clone())
                    }
                    _ => None,
                };
                let id = if opcode == Opcode::Input {
                    if !rest.is_empty() {
                        return Err(syntax(lineno, "inputs take no operands"));
                    }
                    b.builder.input(label.unwrap_or_default())
                } else {
                    let mut operands = Vec::with_capacity(rest.len());
                    for t in rest {
                        let Tok::Word(opname) = t else {
                            return Err(syntax(lineno, "operands must be node names"));
                        };
                        let &p = b.names.get(opname).ok_or_else(|| TextError::UnknownNode {
                            line: lineno,
                            name: opname.clone(),
                        })?;
                        operands.push(p);
                    }
                    let result = match label {
                        Some(l) => b.builder.op_labelled(opcode, l, &operands),
                        None => b.builder.op(opcode, &operands),
                    };
                    result.map_err(|source| TextError::Build {
                        line: lineno,
                        source,
                    })?
                };
                b.names.insert(name.clone(), id);
            }
        }
    }

    if let Some(b) = block {
        return Err(syntax(b.start_line, "block is never closed (missing end)"));
    }
    app.ok_or_else(|| syntax(0, "missing app header"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;

    fn sample() -> Application {
        let mut b = BlockBuilder::new("mac kernel").frequency(500);
        let x = b.input("x");
        let y = b.input("weird \"label\"\n");
        let m = b.op(Opcode::Mul, &[x, y]).unwrap();
        let s = b.op_labelled(Opcode::Add, "sum", &[m, x]).unwrap();
        b.op(Opcode::Not, &[s]).unwrap();
        b.live_out(m).unwrap();
        let mut app = Application::new("demo/app");
        app.push_block(b.build().unwrap());
        let mut b2 = BlockBuilder::new("tail");
        let z = b2.input("z");
        b2.op(Opcode::Mac, &[z, z, z]).unwrap();
        app.push_block(b2.build().unwrap());
        app
    }

    #[test]
    fn round_trip_is_exact() {
        let app = sample();
        let text = write_application(&app);
        let reparsed = parse_application(&text).unwrap();
        assert_eq!(write_application(&reparsed), text);
        assert_eq!(reparsed.name(), app.name());
        assert_eq!(reparsed.blocks().len(), 2);
        let (a, b) = (&app.blocks()[0], &reparsed.blocks()[0]);
        assert_eq!(a.frequency(), b.frequency());
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.live_outs(), b.live_outs());
        for id in a.dag().node_ids() {
            assert_eq!(a.opcode(id), b.opcode(id));
            assert_eq!(a.dag().preds(id), b.dag().preds(id));
            assert_eq!(a.dag().weight(id).label(), b.dag().weight(id).label());
        }
        let model = LatencyModel::paper_default();
        assert_eq!(a.software_latency(&model), b.software_latency(&model));
    }

    #[test]
    fn hand_written_form_parses() {
        let app = parse_application(
            "# comment\n\napp demo\nblock hot freq 9\n  a = in\n  b = add a a\nend\n",
        )
        .unwrap();
        assert_eq!(app.blocks()[0].frequency(), 9);
        assert_eq!(app.blocks()[0].node_count(), 2);
    }

    #[test]
    fn errors_name_the_line() {
        let cases: &[(&str, &str)] = &[
            ("block b\nend\n", "block before app"),
            ("app a\napp b\n", "duplicate app"),
            ("app a\nblock b\n  x = in\n", "never closed"),
            ("app a\nend\n", "end outside"),
            ("app a\nblock b\n  x = frob\nend\n", "unknown opcode"),
            ("app a\nblock b\n  x = add y y\nend\n", "unknown node"),
            ("app a\nblock b freq zap\nend\n", "bad frequency"),
            (
                // u64-overflow bait: freq × latency must stay in range,
                // so the parser bounds freq itself.
                "app a\nblock b freq 18446744073709551615\n  x = in\n  y = add x x\nend\n",
                "bad frequency",
            ),
            ("app a\nblock b\n  x = in\n  x = in\nend\n", "defined twice"),
            ("app a\nblock b\n  live q\nend\n", "unknown node"),
            ("app a\nblock b\nend\n", "no operations"),
            (
                "app a\nblock b\n  x = in\n  y = add x\nend\n",
                "takes 2 operands",
            ),
            ("app a\nblock \"b\n", "unterminated"),
            ("app a\nblock b\n  x = in \"l\\qm\"\nend\n", "bad escape"),
            ("", "missing app header"),
        ];
        for (text, expect) in cases {
            let err = parse_application(text).unwrap_err().to_string();
            assert!(
                err.contains(expect),
                "input {text:?} gave {err:?}, expected {expect:?}"
            );
        }
    }

    #[test]
    fn truncations_never_panic() {
        let text = write_application(&sample());
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            // Result irrelevant; the property is "no panic".
            let _ = parse_application(&text[..cut]);
        }
    }
}
