//! Instruction-level IR for ISE identification.
//!
//! The ISEGEN paper operates on the data-flow graph (DFG) of a basic
//! block: nodes are RISC-level operations, edges are data dependencies.
//! This crate provides that representation plus the latency model the
//! merit function needs:
//!
//! * [`Opcode`] — the operation vocabulary (arithmetic, logic, shifts,
//!   comparisons, AES helpers, memory, external inputs) with arity and
//!   ISE-eligibility classification. Memory operations and external inputs
//!   are *barriers*: they can never join a cut (paper §4.2).
//! * [`Operation`] — a node payload.
//! * [`BasicBlock`] — a DFG with an execution frequency and live-out set.
//! * [`Application`] — a named collection of basic blocks (Problem 2 of the
//!   paper optimises across blocks).
//! * [`LatencyModel`] — software cycles and normalised hardware delays per
//!   opcode. Hardware delays are expressed as fractions of one 32-bit
//!   multiply-accumulate (MAC) delay, exactly like the paper's
//!   synthesis-calibrated table.
//! * [`BlockBuilder`] — ergonomic DFG construction with arity validation.
//! * [`text`] — a round-trip text serialization of applications, the wire
//!   format of the `ised` service (parse errors, never panics).
//!
//! # Example
//!
//! ```
//! use isegen_ir::{BlockBuilder, Opcode, LatencyModel};
//!
//! # fn main() -> Result<(), isegen_ir::BuildError> {
//! let mut b = BlockBuilder::new("mac_chain");
//! let x = b.input("x");
//! let y = b.input("y");
//! let p = b.op(Opcode::Mul, &[x, y])?;
//! let s = b.op(Opcode::Add, &[p, p])?;
//! let block = b.build()?;
//!
//! let model = LatencyModel::paper_default();
//! assert!(block.software_latency(&model) > 0);
//! # let _ = s;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod block;
mod builder;
mod error;
pub mod interp;
mod latency;
mod opcode;
pub mod text;

pub use app::Application;
pub use block::BasicBlock;
pub use builder::BlockBuilder;
pub use error::BuildError;
pub use latency::LatencyModel;
pub use opcode::{Opcode, Operation};
pub use text::{parse_application, write_application, TextError};
