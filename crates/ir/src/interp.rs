//! Executable semantics for the IR: evaluate a basic block's data flow
//! over 32-bit values.
//!
//! Every [`Opcode`] has a concrete meaning (wrapping two's-complement
//! arithmetic, AES helpers over the low byte, a flat word-addressed
//! memory), so a block is not just a latency-annotated graph but a
//! runnable program. The RTL backend (`isegen-rtl`) uses this as the
//! golden model: an AFU datapath generated from a cut must produce
//! exactly the values this interpreter computes.

use crate::{BasicBlock, Opcode};
use isegen_graph::{NodeId, TopoOrder};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// The AES S-box (FIPS-197, forward direction).
pub const AES_SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// GF(2^8) `xtime` (multiplication by `x` modulo the AES polynomial).
#[inline]
pub fn gf_xtime(b: u8) -> u8 {
    let doubled = b << 1;
    if b & 0x80 != 0 {
        doubled ^ 0x1b
    } else {
        doubled
    }
}

/// GF(2^8) multiplication modulo the AES polynomial.
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = gf_xtime(a);
        b >>= 1;
    }
    acc
}

/// Evaluates one opcode over concrete operand values.
///
/// `Input`, `Load` and `Store` are context-dependent and handled by
/// [`execute`]; calling this function with them returns `None`.
pub fn eval_opcode(op: Opcode, args: &[u32]) -> Option<u32> {
    use Opcode::*;
    Some(match op {
        Input | Load | Store => return None,
        Add => args[0].wrapping_add(args[1]),
        Sub => args[0].wrapping_sub(args[1]),
        Mul => args[0].wrapping_mul(args[1]),
        Mac => args[0].wrapping_mul(args[1]).wrapping_add(args[2]),
        And => args[0] & args[1],
        Or => args[0] | args[1],
        Xor => args[0] ^ args[1],
        Not => !args[0],
        Shl => args[0].wrapping_shl(args[1] & 31),
        Shr => args[0].wrapping_shr(args[1] & 31),
        Sar => ((args[0] as i32).wrapping_shr(args[1] & 31)) as u32,
        RotL => args[0].rotate_left(args[1] & 31),
        Eq => (args[0] == args[1]) as u32,
        Lt => ((args[0] as i32) < (args[1] as i32)) as u32,
        Min => (args[0] as i32).min(args[1] as i32) as u32,
        Max => (args[0] as i32).max(args[1] as i32) as u32,
        Abs => (args[0] as i32).wrapping_abs() as u32,
        Neg => (args[0] as i32).wrapping_neg() as u32,
        Select => {
            if args[0] != 0 {
                args[1]
            } else {
                args[2]
            }
        }
        SBox => AES_SBOX[(args[0] & 0xff) as usize] as u32,
        Xtime => gf_xtime((args[0] & 0xff) as u8) as u32,
        GfMul => gf_mul((args[0] & 0xff) as u8, (args[1] & 0xff) as u8) as u32,
    })
}

/// Error produced by [`execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// An external-input node had no value bound.
    MissingInput {
        /// The input node without a binding.
        node: NodeId,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MissingInput { node } => {
                write!(f, "no value bound for input node {node}")
            }
        }
    }
}

impl Error for ExecError {}

/// Executes one pass of a basic block's data flow.
///
/// `inputs` binds external-input nodes to values; `memory` is the flat
/// word-addressed store used by `Load`/`Store` (unmapped addresses read
/// as 0). Returns the computed value of every node, indexed by node id
/// (`Store` nodes yield the stored value).
///
/// Memory operations execute in topological order: accesses with no
/// data dependence between them may be reordered, exactly as a compiler
/// would be free to schedule them. Programs that need a specific
/// load/store order must express it through data dependencies.
///
/// # Errors
///
/// [`ExecError::MissingInput`] when an `Input` node is not bound.
pub fn execute(
    block: &BasicBlock,
    inputs: &BTreeMap<NodeId, u32>,
    memory: &mut BTreeMap<u32, u32>,
) -> Result<Vec<u32>, ExecError> {
    let dag = block.dag();
    let topo = TopoOrder::new(dag);
    let mut values = vec![0u32; dag.node_count()];
    let mut args: Vec<u32> = Vec::with_capacity(3);
    for &v in topo.order() {
        let op = block.opcode(v);
        args.clear();
        args.extend(dag.preds(v).iter().map(|p| values[p.index()]));
        values[v.index()] = match op {
            Opcode::Input => *inputs.get(&v).ok_or(ExecError::MissingInput { node: v })?,
            Opcode::Load => *memory.get(&args[0]).unwrap_or(&0),
            Opcode::Store => {
                memory.insert(args[0], args[1]);
                args[1]
            }
            _ => eval_opcode(op, &args).expect("non-contextual opcode"),
        };
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockBuilder;

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(eval_opcode(Opcode::Add, &[u32::MAX, 1]), Some(0));
        assert_eq!(eval_opcode(Opcode::Sub, &[0, 1]), Some(u32::MAX));
        assert_eq!(eval_opcode(Opcode::Mac, &[3, 4, 5]), Some(17));
        assert_eq!(
            eval_opcode(Opcode::Sar, &[0xffff_fff0, 2]),
            Some(0xffff_fffc)
        );
        assert_eq!(
            eval_opcode(Opcode::Shr, &[0xffff_fff0, 2]),
            Some(0x3fff_fffc)
        );
        assert_eq!(
            eval_opcode(Opcode::Lt, &[u32::MAX, 0]),
            Some(1),
            "signed compare"
        );
        assert_eq!(eval_opcode(Opcode::Min, &[u32::MAX, 1]), Some(u32::MAX));
        assert_eq!(eval_opcode(Opcode::Select, &[0, 7, 9]), Some(9));
        assert_eq!(eval_opcode(Opcode::Select, &[2, 7, 9]), Some(7));
        assert_eq!(eval_opcode(Opcode::RotL, &[0x8000_0001, 1]), Some(3));
        assert_eq!(eval_opcode(Opcode::Input, &[]), None);
    }

    #[test]
    fn aes_field_semantics() {
        // FIPS-197 test values
        assert_eq!(AES_SBOX[0x00], 0x63);
        assert_eq!(AES_SBOX[0x53], 0xed);
        assert_eq!(gf_xtime(0x57), 0xae);
        assert_eq!(gf_xtime(0xae), 0x47);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe); // the classic FIPS example
        assert_eq!(gf_mul(0x57, 0x02), gf_xtime(0x57));
        assert_eq!(
            eval_opcode(Opcode::SBox, &[0x153]),
            Some(0xed),
            "low byte only"
        );
    }

    #[test]
    fn block_execution() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op(Opcode::Mul, &[x, y]).unwrap();
        let s = b.op(Opcode::Add, &[m, x]).unwrap();
        let block = b.build().unwrap();
        let inputs = BTreeMap::from([(x, 6u32), (y, 7u32)]);
        let mut mem = BTreeMap::new();
        let values = execute(&block, &inputs, &mut mem).unwrap();
        assert_eq!(values[m.index()], 42);
        assert_eq!(values[s.index()], 48);
    }

    #[test]
    fn memory_semantics() {
        let mut b = BlockBuilder::new("t");
        let addr = b.input("addr");
        let val = b.input("val");
        let st = b.op(Opcode::Store, &[addr, val]).unwrap();
        // the load's address depends on the store's value, so it is
        // ordered after it: addr2 = addr + (st ^ st) = addr
        let z = b.op(Opcode::Xor, &[st, st]).unwrap();
        let addr2 = b.op(Opcode::Add, &[addr, z]).unwrap();
        let ld = b.op(Opcode::Load, &[addr2]).unwrap();
        let block = b.build().unwrap();
        let inputs = BTreeMap::from([(addr, 0x100u32), (val, 0xbeefu32)]);
        let mut mem = BTreeMap::new();
        let values = execute(&block, &inputs, &mut mem).unwrap();
        assert_eq!(values[st.index()], 0xbeef);
        assert_eq!(values[ld.index()], 0xbeef, "dependent load sees the store");
        assert_eq!(mem.get(&0x100), Some(&0xbeef));
        // an independent load in a fresh memory reads 0
        let mut fresh = BTreeMap::new();
        let mut b2 = BlockBuilder::new("t2");
        let a2 = b2.input("a");
        let l2 = b2.op(Opcode::Load, &[a2]).unwrap();
        let block2 = b2.build().unwrap();
        let v2 = execute(&block2, &BTreeMap::from([(a2, 4u32)]), &mut fresh).unwrap();
        assert_eq!(v2[l2.index()], 0);
    }

    #[test]
    fn missing_input_is_an_error() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        b.op(Opcode::Not, &[x]).unwrap();
        let block = b.build().unwrap();
        let mut mem = BTreeMap::new();
        let err = execute(&block, &BTreeMap::new(), &mut mem).unwrap_err();
        assert_eq!(err, ExecError::MissingInput { node: x });
        assert!(err.to_string().contains("n0"));
    }

    #[test]
    fn gf_mul_is_commutative_and_distributive() {
        for a in [0u8, 1, 0x53, 0x80, 0xff] {
            for b in [0u8, 1, 0x13, 0xca, 0xff] {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
                // distributivity over xor with a third point
                let c = 0x1b;
                assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
            }
        }
    }
}
