use crate::{LatencyModel, Operation};
use isegen_graph::{Dag, NodeId, NodeSet};

/// A basic block: a data-flow graph of [`Operation`]s, an execution
/// frequency, and the set of live-out values.
///
/// Blocks are built with [`BlockBuilder`](crate::BlockBuilder), which
/// validates arities and marks sinks live-out. The DFG is immutable after
/// construction (ISE identification never mutates the program).
#[derive(Debug, Clone)]
pub struct BasicBlock {
    name: String,
    dag: Dag<Operation>,
    freq: u64,
    live_outs: NodeSet,
}

impl BasicBlock {
    pub(crate) fn from_parts(
        name: String,
        dag: Dag<Operation>,
        freq: u64,
        live_outs: NodeSet,
    ) -> Self {
        BasicBlock {
            name,
            dag,
            freq,
            live_outs,
        }
    }

    /// Assembles a block directly from a prebuilt DAG, execution
    /// frequency and live-out set, bypassing the builder's arity
    /// validation — the escape hatch for *synthetic* blocks whose nodes
    /// do not obey operation arities, e.g. the supernode quotient blocks
    /// of the multilevel coarsening pass (a supernode inherits every
    /// inter-cluster edge of its members). [`BlockBuilder`](crate::BlockBuilder)
    /// remains the validated front door for real program blocks.
    ///
    /// # Panics
    ///
    /// Panics if `live_outs`' capacity differs from the DAG's node count.
    pub fn from_dag(
        name: impl Into<String>,
        dag: Dag<Operation>,
        freq: u64,
        live_outs: NodeSet,
    ) -> Self {
        assert_eq!(
            live_outs.capacity(),
            dag.node_count(),
            "live-out set does not match DAG"
        );
        BasicBlock {
            name: name.into(),
            dag,
            freq,
            live_outs,
        }
    }

    /// The block's name (unique within an application by convention).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data-flow graph.
    #[inline]
    pub fn dag(&self) -> &Dag<Operation> {
        &self.dag
    }

    /// Dynamic execution count of this block.
    #[inline]
    pub fn frequency(&self) -> u64 {
        self.freq
    }

    /// Overrides the execution frequency (e.g. when attaching a profile).
    pub fn set_frequency(&mut self, freq: u64) {
        self.freq = freq;
    }

    /// Nodes whose values are consumed after the block.
    #[inline]
    pub fn live_outs(&self) -> &NodeSet {
        &self.live_outs
    }

    /// Whether `node`'s value escapes the block.
    #[inline]
    pub fn is_live_out(&self, node: NodeId) -> bool {
        self.live_outs.contains(node)
    }

    /// Number of DFG nodes, including external-input markers.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Number of *operation* nodes (external-input markers excluded).
    ///
    /// This is the count the paper reports per benchmark ("maximum number
    /// of nodes in its critical basic block").
    pub fn operation_count(&self) -> usize {
        self.dag
            .nodes()
            .filter(|(_, op)| !op.opcode().is_input())
            .count()
    }

    /// Total software latency of one execution of the block, in cycles.
    pub fn software_latency(&self, model: &LatencyModel) -> u64 {
        self.dag
            .nodes()
            .map(|(_, op)| model.sw_cycles(op.opcode()) as u64)
            .sum()
    }

    /// The opcode of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn opcode(&self, node: NodeId) -> crate::Opcode {
        self.dag.weight(node).opcode()
    }

    /// Set of nodes eligible for inclusion in a cut (non-input, non-memory).
    pub fn eligible_nodes(&self) -> NodeSet {
        let mut set = NodeSet::new(self.dag.node_count());
        for (id, op) in self.dag.nodes() {
            if op.opcode().is_ise_eligible() {
                set.insert(id);
            }
        }
        set
    }

    /// Renders the block to Graphviz DOT, highlighting `cut` if given.
    pub fn to_dot(&self, cut: Option<&NodeSet>) -> String {
        isegen_graph::dot::to_dot(&self.dag, |id, op| format!("{id} {op}"), cut)
    }
}

#[cfg(test)]
mod tests {
    use crate::{BlockBuilder, LatencyModel, Opcode};

    #[test]
    fn latency_and_counts() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op(Opcode::Mul, &[x, y]).unwrap();
        let a = b.op(Opcode::Add, &[m, x]).unwrap();
        let blk = b.build().unwrap();
        let model = LatencyModel::paper_default();
        // inputs cost 0; mul 3 + add 1
        assert_eq!(blk.software_latency(&model), 4);
        assert_eq!(blk.node_count(), 4);
        assert_eq!(blk.operation_count(), 2);
        assert!(blk.is_live_out(a));
        assert!(!blk.is_live_out(m));
        let elig = blk.eligible_nodes();
        assert!(elig.contains(m) && elig.contains(a));
        assert!(!elig.contains(x));
    }

    #[test]
    fn dot_render_mentions_ops() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let _ = b.op(Opcode::Not, &[x]).unwrap();
        let blk = b.build().unwrap();
        let dot = blk.to_dot(None);
        assert!(dot.contains("not"));
        assert!(dot.contains("in:x"));
    }

    #[test]
    fn frequency_override() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let _ = b.op(Opcode::Not, &[x]).unwrap();
        let mut blk = b.build().unwrap();
        assert_eq!(blk.frequency(), 1);
        blk.set_frequency(500);
        assert_eq!(blk.frequency(), 500);
    }
}
