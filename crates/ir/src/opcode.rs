use std::fmt;

/// RISC-level operation vocabulary.
///
/// The set covers what the paper's benchmark kernels need (EEMBC DSP
/// kernels, ADPCM, FFT, AES). AES helpers ([`Opcode::SBox`],
/// [`Opcode::Xtime`], [`Opcode::GfMul`]) are modelled as combinational
/// operators — the paper excludes memory accesses from AFUs, so table
/// lookups are represented by their combinational equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// External input value (live-in). Arity 0. Never part of a cut.
    Input,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Multiply-accumulate `a*b + c`. The hardware-delay unit of the paper.
    Mac,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive-or.
    Xor,
    /// Bitwise complement. Arity 1.
    Not,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Rotate left.
    RotL,
    /// Equality comparison.
    Eq,
    /// Signed less-than comparison.
    Lt,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
    /// Absolute value. Arity 1.
    Abs,
    /// Arithmetic negation. Arity 1.
    Neg,
    /// Ternary select `cond ? a : b`. Arity 3.
    Select,
    /// AES S-box substitution (combinational). Arity 1.
    SBox,
    /// GF(2^8) multiplication by `x` (AES `xtime`). Arity 1.
    Xtime,
    /// General GF(2^8) multiplication.
    GfMul,
    /// Memory load. Arity 1 (address). Barrier: never part of a cut.
    Load,
    /// Memory store. Arity 2 (address, value). Barrier: never part of a cut.
    Store,
}

impl Opcode {
    /// Every opcode, in discriminant order. Useful for building tables.
    pub const ALL: [Opcode; 25] = [
        Opcode::Input,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Mac,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Not,
        Opcode::Shl,
        Opcode::Shr,
        Opcode::Sar,
        Opcode::RotL,
        Opcode::Eq,
        Opcode::Lt,
        Opcode::Min,
        Opcode::Max,
        Opcode::Abs,
        Opcode::Neg,
        Opcode::Select,
        Opcode::SBox,
        Opcode::Xtime,
        Opcode::GfMul,
        Opcode::Load,
        Opcode::Store,
    ];

    /// Dense index of this opcode (for table lookups).
    #[inline]
    pub fn as_index(self) -> usize {
        self as usize
    }

    /// Number of operands this opcode consumes.
    pub fn arity(self) -> usize {
        use Opcode::*;
        match self {
            Input => 0,
            Not | Abs | Neg | SBox | Xtime | Load => 1,
            Select | Mac => 3,
            Store => 2,
            _ => 2,
        }
    }

    /// Memory operations cannot be mapped onto an AFU (paper §4.2: "we do
    /// not allow memory access from AFUs").
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// External-input marker nodes.
    #[inline]
    pub fn is_input(self) -> bool {
        matches!(self, Opcode::Input)
    }

    /// Whether this operation may be included in an ISE cut.
    ///
    /// Inputs and memory operations are excluded; everything else is fair
    /// game.
    #[inline]
    pub fn is_ise_eligible(self) -> bool {
        !self.is_memory() && !self.is_input()
    }

    /// Whether this node acts as a *barrier* for cut growth: external
    /// inputs and memory operations bound the region a cut can cover.
    #[inline]
    pub fn is_barrier(self) -> bool {
        self.is_memory() || self.is_input()
    }

    /// Parses a mnemonic produced by [`Opcode::mnemonic`].
    ///
    /// Returns `None` for anything that is not exactly a known mnemonic —
    /// the text-IR parser turns that into a structured error rather than
    /// a panic.
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::ALL.into_iter().find(|op| op.mnemonic() == s)
    }

    /// Short lowercase mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Input => "in",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Mac => "mac",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Shl => "shl",
            Shr => "shr",
            Sar => "sar",
            RotL => "rotl",
            Eq => "eq",
            Lt => "lt",
            Min => "min",
            Max => "max",
            Abs => "abs",
            Neg => "neg",
            Select => "sel",
            SBox => "sbox",
            Xtime => "xtime",
            GfMul => "gfmul",
            Load => "ld",
            Store => "st",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Payload of a DFG node: the operation it performs plus an optional
/// debug label (variable name for inputs, etc.).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Operation {
    opcode: Opcode,
    label: Option<Box<str>>,
}

impl Operation {
    /// Creates an unlabelled operation.
    pub fn new(opcode: Opcode) -> Self {
        Operation {
            opcode,
            label: None,
        }
    }

    /// Creates a labelled operation (labels show up in DOT dumps and error
    /// messages; they carry no semantics).
    pub fn with_label(opcode: Opcode, label: impl Into<String>) -> Self {
        Operation {
            opcode,
            label: Some(label.into().into_boxed_str()),
        }
    }

    /// The operation's opcode.
    #[inline]
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The optional debug label.
    #[inline]
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => write!(f, "{}:{}", self.opcode, l),
            None => write!(f, "{}", self.opcode),
        }
    }
}

impl From<Opcode> for Operation {
    fn from(opcode: Opcode) -> Self {
        Operation::new(opcode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_dense_and_complete() {
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.as_index(), i, "ALL must be in discriminant order");
        }
    }

    #[test]
    fn classification() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::Store.is_memory());
        assert!(!Opcode::Add.is_memory());
        assert!(Opcode::Input.is_input());
        assert!(Opcode::Add.is_ise_eligible());
        assert!(!Opcode::Load.is_ise_eligible());
        assert!(!Opcode::Input.is_ise_eligible());
        assert!(Opcode::Input.is_barrier());
        assert!(Opcode::Store.is_barrier());
        assert!(!Opcode::Xor.is_barrier());
    }

    #[test]
    fn arities() {
        assert_eq!(Opcode::Input.arity(), 0);
        assert_eq!(Opcode::Not.arity(), 1);
        assert_eq!(Opcode::Add.arity(), 2);
        assert_eq!(Opcode::Mac.arity(), 3);
        assert_eq!(Opcode::Select.arity(), 3);
        assert_eq!(Opcode::Store.arity(), 2);
        assert_eq!(Opcode::Load.arity(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(Opcode::Xor.to_string(), "xor");
        let op = Operation::with_label(Opcode::Input, "x0");
        assert_eq!(op.to_string(), "in:x0");
        assert_eq!(Operation::new(Opcode::Add).to_string(), "add");
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
        assert_eq!(Opcode::from_mnemonic(""), None);
        assert_eq!(
            Opcode::from_mnemonic("ADD"),
            None,
            "mnemonics are lowercase"
        );
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(
                seen.insert(op.mnemonic()),
                "duplicate mnemonic {}",
                op.mnemonic()
            );
        }
    }
}
