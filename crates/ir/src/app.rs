use crate::{BasicBlock, LatencyModel};

/// An application: a named collection of basic blocks with execution
/// frequencies.
///
/// Problem 2 of the paper selects up to `N_ISE` cuts across all blocks of
/// an application, ranking blocks by speedup potential.
///
/// ```
/// use isegen_ir::{Application, BlockBuilder, Opcode, LatencyModel};
///
/// # fn main() -> Result<(), isegen_ir::BuildError> {
/// let mut b = BlockBuilder::new("hot").frequency(1_000);
/// let x = b.input("x");
/// b.op(Opcode::Not, &[x])?;
/// let mut app = Application::new("demo");
/// app.push_block(b.build()?);
/// let model = LatencyModel::paper_default();
/// assert_eq!(app.total_software_latency(&model), 1_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Application {
    name: String,
    blocks: Vec<BasicBlock>,
}

impl Application {
    /// Creates an empty application.
    pub fn new(name: impl Into<String>) -> Self {
        Application {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    /// The application's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a basic block.
    pub fn push_block(&mut self, block: BasicBlock) {
        self.blocks.push(block);
    }

    /// The blocks, in insertion order.
    #[inline]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Looks a block up by name.
    pub fn block_by_name(&self, name: &str) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.name() == name)
    }

    /// The block with the most operation nodes (the paper's
    /// "critical basic block"), if any.
    pub fn critical_block(&self) -> Option<&BasicBlock> {
        self.blocks.iter().max_by_key(|b| b.operation_count())
    }

    /// Total dynamic software latency:
    /// `Σ_b frequency(b) · software_latency(b)`.
    pub fn total_software_latency(&self, model: &LatencyModel) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.frequency() * b.software_latency(model))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockBuilder, Opcode};

    fn block(name: &str, ops: usize, freq: u64) -> BasicBlock {
        let mut b = BlockBuilder::new(name).frequency(freq);
        let mut v = b.input("x");
        for _ in 0..ops {
            v = b.op(Opcode::Add, &[v, v]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn lookup_and_critical() {
        let mut app = Application::new("a");
        app.push_block(block("small", 2, 10));
        app.push_block(block("big", 5, 1));
        assert_eq!(app.blocks().len(), 2);
        assert_eq!(app.block_by_name("big").unwrap().name(), "big");
        assert!(app.block_by_name("missing").is_none());
        assert_eq!(app.critical_block().unwrap().name(), "big");
    }

    #[test]
    fn total_latency_weights_by_frequency() {
        let mut app = Application::new("a");
        app.push_block(block("b1", 3, 10)); // 3 adds * 1 cycle * 10
        app.push_block(block("b2", 1, 5)); // 1 add * 1 cycle * 5
        let model = LatencyModel::paper_default();
        assert_eq!(app.total_software_latency(&model), 35);
    }

    #[test]
    fn empty_application() {
        let app = Application::new("empty");
        assert!(app.critical_block().is_none());
        assert_eq!(
            app.total_software_latency(&LatencyModel::paper_default()),
            0
        );
    }
}
