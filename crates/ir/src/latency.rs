use crate::Opcode;

/// Software and hardware latency model.
///
/// * **Software latency** is the cycle count of the operation on the
///   baseline single-issue RISC core.
/// * **Hardware delay** is the propagation delay of the operator when
///   synthesised into an AFU datapath, normalised to the delay of one
///   32-bit multiply-accumulate (MAC) — the unit used by the paper, which
///   synthesised operators on a 130 nm CMOS library and normalised the
///   results. We cannot rerun that synthesis offline, so
///   [`LatencyModel::paper_default`] ships a table with the standard
///   relative magnitudes (logic ≪ add ≪ compare < mul < MAC); the shapes
///   of the paper's results depend only on these relative values.
///
/// ```
/// use isegen_ir::{LatencyModel, Opcode};
///
/// let m = LatencyModel::paper_default();
/// assert!(m.hw_delay(Opcode::Xor) < m.hw_delay(Opcode::Add));
/// assert_eq!(m.hw_delay(Opcode::Mac), 1.0);
/// assert!(m.sw_cycles(Opcode::Mul) > m.sw_cycles(Opcode::Add));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    sw: [u32; Opcode::ALL.len()],
    hw: [f64; Opcode::ALL.len()],
}

impl LatencyModel {
    /// The default model calibrated to reproduce the paper's regime.
    ///
    /// Hardware delays are fractions of one MAC delay; software latencies
    /// are single-issue RISC cycle counts.
    pub fn paper_default() -> Self {
        use Opcode::*;
        let mut sw = [1u32; Opcode::ALL.len()];
        let mut hw = [0.0f64; Opcode::ALL.len()];
        let table: &[(Opcode, u32, f64)] = &[
            (Input, 0, 0.0),
            (Add, 1, 0.30),
            (Sub, 1, 0.30),
            (Mul, 3, 0.85),
            (Mac, 4, 1.00),
            (And, 1, 0.05),
            (Or, 1, 0.05),
            (Xor, 1, 0.05),
            (Not, 1, 0.03),
            (Shl, 1, 0.10),
            (Shr, 1, 0.10),
            (Sar, 1, 0.10),
            (RotL, 1, 0.10),
            (Eq, 1, 0.18),
            (Lt, 1, 0.25),
            (Min, 2, 0.32),
            (Max, 2, 0.32),
            (Abs, 2, 0.30),
            (Neg, 1, 0.15),
            (Select, 1, 0.10),
            (SBox, 2, 0.40),
            (Xtime, 2, 0.08),
            (GfMul, 4, 0.50),
            (Load, 2, 0.0),
            (Store, 1, 0.0),
        ];
        for &(op, s, h) in table {
            sw[op.as_index()] = s;
            hw[op.as_index()] = h;
        }
        LatencyModel { sw, hw }
    }

    /// Software cycle count of `op` on the baseline core.
    #[inline]
    pub fn sw_cycles(&self, op: Opcode) -> u32 {
        self.sw[op.as_index()]
    }

    /// Hardware propagation delay of `op`, in MAC units.
    #[inline]
    pub fn hw_delay(&self, op: Opcode) -> f64 {
        self.hw[op.as_index()]
    }

    /// Returns a copy with the software latency of `op` overridden.
    ///
    /// Useful for sensitivity studies.
    pub fn with_sw_cycles(mut self, op: Opcode, cycles: u32) -> Self {
        self.sw[op.as_index()] = cycles;
        self
    }

    /// Returns a copy with the hardware delay of `op` overridden.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or not finite.
    pub fn with_hw_delay(mut self, op: Opcode, delay: f64) -> Self {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "invalid hw delay {delay}"
        );
        self.hw[op.as_index()] = delay;
        self
    }

    /// Like [`LatencyModel::with_hw_delay`], but without the validity
    /// assertion — so tests of *defensive* consumers (the `A008` lint,
    /// NaN-hardened comparisons) can construct the invalid models those
    /// code paths exist to catch. Test scaffolding, not API.
    #[doc(hidden)]
    pub fn with_raw_hw_delay_for_test(mut self, op: Opcode, delay: f64) -> Self {
        self.hw[op.as_index()] = delay;
        self
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_is_the_unit() {
        let m = LatencyModel::paper_default();
        assert_eq!(m.hw_delay(Opcode::Mac), 1.0);
        for op in Opcode::ALL {
            assert!(m.hw_delay(op) <= 1.0, "{op} slower than a MAC");
            assert!(m.hw_delay(op) >= 0.0);
        }
    }

    #[test]
    fn hardware_beats_software_for_eligible_ops() {
        // The premise of ISE generation: a hardware operator is faster than
        // the software instruction(s) it replaces.
        let m = LatencyModel::paper_default();
        for op in Opcode::ALL {
            if op.is_ise_eligible() {
                assert!(
                    m.hw_delay(op) < m.sw_cycles(op) as f64,
                    "{op}: hw {} !< sw {}",
                    m.hw_delay(op),
                    m.sw_cycles(op)
                );
            }
        }
    }

    #[test]
    fn overrides() {
        let m = LatencyModel::paper_default()
            .with_sw_cycles(Opcode::Mul, 5)
            .with_hw_delay(Opcode::Mul, 0.9);
        assert_eq!(m.sw_cycles(Opcode::Mul), 5);
        assert_eq!(m.hw_delay(Opcode::Mul), 0.9);
    }

    #[test]
    #[should_panic(expected = "invalid hw delay")]
    fn negative_delay_rejected() {
        let _ = LatencyModel::paper_default().with_hw_delay(Opcode::Add, -1.0);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(LatencyModel::default(), LatencyModel::paper_default());
    }
}
