use crate::Opcode;
use isegen_graph::{GraphError, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced while constructing a [`BasicBlock`](crate::BasicBlock).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// An operation received the wrong number of operands.
    Arity {
        /// The opcode whose arity was violated.
        opcode: Opcode,
        /// Number of operands the opcode requires.
        expected: usize,
        /// Number of operands supplied.
        got: usize,
    },
    /// The underlying graph rejected an edge.
    Graph(GraphError),
    /// A live-out id does not name a node of the block.
    LiveOutOfBounds {
        /// The offending node id.
        node: NodeId,
    },
    /// The block contains no operations.
    EmptyBlock,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Arity {
                opcode,
                expected,
                got,
            } => {
                write!(f, "opcode {opcode} takes {expected} operands, got {got}")
            }
            BuildError::Graph(e) => write!(f, "graph error: {e}"),
            BuildError::LiveOutOfBounds { node } => {
                write!(f, "live-out node {node} does not exist in the block")
            }
            BuildError::EmptyBlock => write!(f, "basic block contains no operations"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for BuildError {
    fn from(e: GraphError) -> Self {
        BuildError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BuildError::Arity {
            opcode: Opcode::Add,
            expected: 2,
            got: 3,
        };
        assert_eq!(e.to_string(), "opcode add takes 2 operands, got 3");
        assert_eq!(
            BuildError::EmptyBlock.to_string(),
            "basic block contains no operations"
        );
    }

    #[test]
    fn graph_error_chains() {
        let inner = GraphError::SelfLoop {
            node: NodeId::from_index(0),
        };
        let e = BuildError::from(inner);
        assert!(Error::source(&e).is_some());
    }
}
