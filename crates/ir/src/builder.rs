use crate::{BasicBlock, BuildError, Opcode, Operation};
use isegen_graph::{Dag, NodeId, NodeSet};

/// Incremental construction of a [`BasicBlock`] with arity validation.
///
/// The builder is non-consuming for `op`-style methods and consumed by
/// [`BlockBuilder::build`]. On `build`, every sink that is not a
/// [`Opcode::Store`] is automatically marked live-out (a value nothing in
/// the block consumes must escape it, otherwise the operation would be
/// dead code); additional live-outs can be declared explicitly with
/// [`BlockBuilder::live_out`] for values that are consumed inside the
/// block *and* escape.
///
/// ```
/// use isegen_ir::{BlockBuilder, Opcode};
///
/// # fn main() -> Result<(), isegen_ir::BuildError> {
/// let mut b = BlockBuilder::new("example").frequency(1000);
/// let x = b.input("x");
/// let y = b.input("y");
/// let s = b.op(Opcode::Add, &[x, y])?;
/// let t = b.op(Opcode::Shl, &[s, x])?;
/// b.live_out(s)?; // s escapes even though t consumes it
/// let block = b.build()?;
/// assert!(block.is_live_out(s));
/// assert!(block.is_live_out(t)); // sink, auto live-out
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BlockBuilder {
    name: String,
    dag: Dag<Operation>,
    freq: u64,
    explicit_live_outs: Vec<NodeId>,
}

impl BlockBuilder {
    /// Starts a block named `name` with frequency 1.
    pub fn new(name: impl Into<String>) -> Self {
        BlockBuilder {
            name: name.into(),
            dag: Dag::new(),
            freq: 1,
            explicit_live_outs: Vec::new(),
        }
    }

    /// Sets the execution frequency (builder style).
    pub fn frequency(mut self, freq: u64) -> Self {
        self.freq = freq;
        self
    }

    /// Adds an external-input marker node labelled `label`.
    pub fn input(&mut self, label: impl Into<String>) -> NodeId {
        self.dag
            .add_node(Operation::with_label(Opcode::Input, label))
    }

    /// Adds an operation consuming `operands`, in order.
    ///
    /// # Errors
    ///
    /// * [`BuildError::Arity`] if `operands.len() != opcode.arity()`.
    /// * [`BuildError::Graph`] if an operand id is invalid. (Cycles are
    ///   impossible: operands always precede the new node.)
    pub fn op(&mut self, opcode: Opcode, operands: &[NodeId]) -> Result<NodeId, BuildError> {
        if operands.len() != opcode.arity() {
            return Err(BuildError::Arity {
                opcode,
                expected: opcode.arity(),
                got: operands.len(),
            });
        }
        let v = self.dag.add_node(Operation::new(opcode));
        for &p in operands {
            if let Err(e) = self.dag.add_edge(p, v) {
                return Err(BuildError::Graph(e));
            }
        }
        Ok(v)
    }

    /// Adds a labelled operation (see [`Operation::with_label`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BlockBuilder::op`].
    pub fn op_labelled(
        &mut self,
        opcode: Opcode,
        label: impl Into<String>,
        operands: &[NodeId],
    ) -> Result<NodeId, BuildError> {
        let v = self.op(opcode, operands)?;
        *self.dag.weight_mut(v) = Operation::with_label(opcode, label);
        Ok(v)
    }

    /// Declares `node` live-out even if it has consumers inside the block.
    ///
    /// # Errors
    ///
    /// [`BuildError::LiveOutOfBounds`] if `node` was not created by this
    /// builder.
    pub fn live_out(&mut self, node: NodeId) -> Result<(), BuildError> {
        if node.index() >= self.dag.node_count() {
            return Err(BuildError::LiveOutOfBounds { node });
        }
        self.explicit_live_outs.push(node);
        Ok(())
    }

    /// Current number of nodes (inputs + operations).
    pub fn node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Number of operation nodes added so far (inputs excluded).
    pub fn operation_count(&self) -> usize {
        self.dag
            .nodes()
            .filter(|(_, op)| !op.opcode().is_input())
            .count()
    }

    /// Finalises the block.
    ///
    /// # Errors
    ///
    /// [`BuildError::EmptyBlock`] if no operation was added.
    pub fn build(self) -> Result<BasicBlock, BuildError> {
        if self.operation_count() == 0 {
            return Err(BuildError::EmptyBlock);
        }
        let n = self.dag.node_count();
        let mut live = NodeSet::new(n);
        for id in self.explicit_live_outs {
            live.insert(id);
        }
        for (id, op) in self.dag.nodes() {
            let oc = op.opcode();
            if self.dag.out_degree(id) == 0 && !oc.is_input() && oc != Opcode::Store {
                live.insert(id);
            }
        }
        Ok(BasicBlock::from_parts(self.name, self.dag, self.freq, live))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_checked() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        assert!(matches!(
            b.op(Opcode::Add, &[x]),
            Err(BuildError::Arity {
                expected: 2,
                got: 1,
                ..
            })
        ));
        assert!(b.op(Opcode::Not, &[x]).is_ok());
    }

    #[test]
    fn empty_block_rejected() {
        let b = BlockBuilder::new("t");
        assert!(matches!(b.build(), Err(BuildError::EmptyBlock)));
        // inputs alone do not make a block
        let mut b = BlockBuilder::new("t");
        b.input("x");
        assert!(matches!(b.build(), Err(BuildError::EmptyBlock)));
    }

    #[test]
    fn sinks_auto_live_out_but_not_stores() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let a = b.op(Opcode::Not, &[x]).unwrap();
        let addr = b.input("addr");
        let st = b.op(Opcode::Store, &[addr, a]).unwrap();
        let blk = b.build().unwrap();
        assert!(!blk.is_live_out(st), "stores are effects, not values");
        assert!(!blk.is_live_out(a), "a is consumed by the store");
        // x is an input, never live-out
        assert!(!blk.is_live_out(x));
    }

    #[test]
    fn explicit_live_out_validated() {
        let mut b = BlockBuilder::new("t");
        let ghost = NodeId::from_index(33);
        assert!(matches!(
            b.live_out(ghost),
            Err(BuildError::LiveOutOfBounds { .. })
        ));
        let x = b.input("x");
        let a = b.op(Opcode::Not, &[x]).unwrap();
        let c = b.op(Opcode::Not, &[a]).unwrap();
        b.live_out(a).unwrap();
        let blk = b.build().unwrap();
        assert!(blk.is_live_out(a));
        assert!(blk.is_live_out(c));
    }

    #[test]
    fn same_operand_twice() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let sq = b.op(Opcode::Mul, &[x, x]).unwrap();
        let blk = b.build().unwrap();
        assert_eq!(blk.dag().in_degree(sq), 2);
        assert_eq!(blk.dag().preds(sq), &[x, x]);
    }

    #[test]
    fn labelled_op() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let v = b.op_labelled(Opcode::Not, "inv", &[x]).unwrap();
        let blk = b.build().unwrap();
        assert_eq!(blk.dag().weight(v).label(), Some("inv"));
    }
}
